#pragma once
// Alice strategies for Guessing(2m, P) and a driver that plays a
// strategy against the oracle.
//
//  * RandomPerSideStrategy — Lemma 5's oblivious protocol: each round,
//    one uniformly random b for every a ∈ A and one uniformly random a
//    for every b ∈ B (exactly what push-pull induces through the
//    reduction). Needs Θ(log m / p) rounds on Random_p.
//  * SystematicSweepStrategy — enumerate all m² pairs in row-major
//    order, 2m per round; the natural deterministic baseline.
//  * AdaptiveCouponStrategy — remembers revealed hits and never repeats
//    a guess nor aims at an already-eliminated B element; close to the
//    general-protocol optimum of Ω(1/p) rounds on Random_p and Ω(m) on
//    a singleton.

#include <memory>
#include <vector>

#include "game/game.h"
#include "util/rng.h"

namespace latgossip {

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// Produce this round's guesses (at most 2m).
  virtual std::vector<GuessPair> next_guesses(std::size_t round) = 0;
  /// Feedback: which of the previous guesses hit.
  virtual void observe(const std::vector<GuessPair>& guesses,
                       const std::vector<GuessPair>& hits) = 0;
};

class RandomPerSideStrategy final : public Strategy {
 public:
  RandomPerSideStrategy(std::size_t m, Rng rng) : m_(m), rng_(rng) {}
  std::vector<GuessPair> next_guesses(std::size_t round) override;
  void observe(const std::vector<GuessPair>&,
               const std::vector<GuessPair>&) override {}

 private:
  std::size_t m_;
  Rng rng_;
};

class SystematicSweepStrategy final : public Strategy {
 public:
  explicit SystematicSweepStrategy(std::size_t m) : m_(m) {}
  std::vector<GuessPair> next_guesses(std::size_t round) override;
  void observe(const std::vector<GuessPair>&,
               const std::vector<GuessPair>&) override {}

 private:
  std::size_t m_;
  std::size_t cursor_ = 0;
};

class AdaptiveCouponStrategy final : public Strategy {
 public:
  explicit AdaptiveCouponStrategy(std::size_t m);
  std::vector<GuessPair> next_guesses(std::size_t round) override;
  void observe(const std::vector<GuessPair>& guesses,
               const std::vector<GuessPair>& hits) override;

 private:
  std::size_t m_;
  std::vector<bool> eliminated_;      ///< b already hit
  std::vector<std::size_t> next_a_;   ///< per b: next unguessed a
  std::size_t live_count_;
};

struct PlayResult {
  std::size_t rounds = 0;
  std::size_t guesses = 0;
  bool solved = false;
};

/// Drive a strategy until the game is solved or max_rounds elapse.
PlayResult play_game(GuessingGame& game, Strategy& strategy,
                     std::size_t max_rounds);

}  // namespace latgossip
