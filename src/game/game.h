#pragma once
// The combinatorial guessing game Guessing(2m, P) of Section 3.1.
//
// Alice faces an oracle holding a hidden target set T ⊆ A × B (|A| =
// |B| = m, produced by a predicate P, e.g. a uniform singleton or
// Random_p). Each round she submits at most 2m guessed pairs; the oracle
// reveals the guesses that hit the current target, then removes from the
// target every pair whose B-component was hit this round (update rule
// (2)). The game is solved when the target set becomes empty; the lower
// bounds (Lemmas 4 and 5) state how many rounds that takes.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/gadgets.h"  // TargetSet

namespace latgossip {

using GuessPair = std::pair<std::size_t, std::size_t>;

class GuessingGame {
 public:
  /// `target` entries are (a, b) with a, b in [0, m).
  GuessingGame(std::size_t m, const TargetSet& target);

  std::size_t m() const { return m_; }
  std::size_t max_guesses_per_round() const { return 2 * m_; }

  /// Play one round: submit guesses (at most 2m; duplicates allowed and
  /// counted once), receive the hits, and let the oracle apply update
  /// rule (2). Throws if the game is already solved.
  std::vector<GuessPair> submit_round(const std::vector<GuessPair>& guesses);

  bool solved() const { return remaining_ == 0; }
  std::size_t rounds_played() const { return rounds_; }
  std::size_t target_remaining() const { return remaining_; }
  std::size_t initial_target_size() const { return initial_size_; }
  std::size_t total_guesses() const { return total_guesses_; }

 private:
  static std::uint64_t pack(std::size_t a, std::size_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::size_t m_;
  std::unordered_set<std::uint64_t> target_;
  /// b -> a-components of surviving target pairs with that b.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_b_;
  std::size_t remaining_ = 0;
  std::size_t initial_size_ = 0;
  std::size_t rounds_ = 0;
  std::size_t total_guesses_ = 0;
};

}  // namespace latgossip
