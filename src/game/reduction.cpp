#include "game/reduction.h"

#include <stdexcept>
#include <vector>

#include "core/flooding.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "sim/dispatch.h"

namespace latgossip {
namespace {

/// Collects cross-edge activations and plays them as game rounds.
class GameFeeder {
 public:
  GameFeeder(const GuessingGadget& gadget, GuessingGame& game)
      : gadget_(&gadget), game_(&game) {}

  void on_activation(EdgeId e, Round r, ReductionResult& result) {
    if (!gadget_->is_cross_edge(e)) return;
    flush_if_new_round(r, result);
    pending_.push_back(gadget_->cross_pair(e));
    ++result.cross_activations;
  }

  void finish(Round final_round, ReductionResult& result) {
    flush_if_new_round(final_round + 1, result);
  }

 private:
  void flush_if_new_round(Round r, ReductionResult& result) {
    if (r == current_round_) return;
    if (!pending_.empty() && !game_->solved()) {
      game_->submit_round(pending_);
      if (game_->solved() && !result.game_solved_round)
        result.game_solved_round = current_round_;
    }
    pending_.clear();
    current_round_ = r;
  }

  const GuessingGadget* gadget_;
  GuessingGame* game_;
  std::vector<GuessPair> pending_;
  Round current_round_ = 0;
};

template <typename Proto>
ReductionResult drive(const GuessingGadget& gadget, Proto& proto,
                      Round max_rounds) {
  GuessingGame game(gadget.m, gadget.target);
  ReductionResult result;
  GameFeeder feeder(gadget, game);
  SimOptions opts;
  opts.max_rounds = max_rounds;
  opts.on_activation = [&](NodeId, NodeId, EdgeId e, Round r) {
    feeder.on_activation(e, r, result);
  };
  result.sim = dispatch_gossip(gadget.graph, proto, opts);
  feeder.finish(result.sim.rounds, result);
  result.broadcast_completed = result.sim.completed;
  return result;
}

}  // namespace

ReductionResult run_gadget_reduction(const GuessingGadget& gadget,
                                     ReductionProtocol protocol, Rng rng,
                                     Round max_rounds) {
  const std::size_t n = gadget.graph.num_nodes();
  NetworkView view(gadget.graph, /*latencies_known=*/false);
  switch (protocol) {
    case ReductionProtocol::kPushPull: {
      PushPullGossip proto(view, GossipGoal::kLocalBroadcast, 0,
                           PushPullGossip::own_id_rumors(n), rng);
      return drive(gadget, proto, max_rounds);
    }
    case ReductionProtocol::kFlooding: {
      RoundRobinFlooding proto(view, GossipGoal::kLocalBroadcast, 0,
                               own_id_rumors(n));
      return drive(gadget, proto, max_rounds);
    }
  }
  throw std::invalid_argument("unknown reduction protocol");
}

}  // namespace latgossip
