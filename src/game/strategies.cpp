#include "game/strategies.h"

namespace latgossip {

std::vector<GuessPair> RandomPerSideStrategy::next_guesses(std::size_t) {
  std::vector<GuessPair> guesses;
  guesses.reserve(2 * m_);
  for (std::size_t a = 0; a < m_; ++a)
    guesses.emplace_back(a, rng_.uniform(m_));
  for (std::size_t b = 0; b < m_; ++b)
    guesses.emplace_back(rng_.uniform(m_), b);
  return guesses;
}

std::vector<GuessPair> SystematicSweepStrategy::next_guesses(std::size_t) {
  std::vector<GuessPair> guesses;
  const std::size_t total = m_ * m_;
  for (std::size_t i = 0; i < 2 * m_ && cursor_ < total; ++i, ++cursor_)
    guesses.emplace_back(cursor_ / m_, cursor_ % m_);
  if (guesses.empty()) cursor_ = 0;  // wrap (only relevant past one sweep)
  return guesses;
}

AdaptiveCouponStrategy::AdaptiveCouponStrategy(std::size_t m)
    : m_(m), eliminated_(m, false), next_a_(m, 0), live_count_(m) {}

std::vector<GuessPair> AdaptiveCouponStrategy::next_guesses(std::size_t) {
  std::vector<GuessPair> guesses;
  if (live_count_ == 0) return guesses;
  const std::size_t budget = 2 * m_;
  // Spread the budget over the still-live B elements, advancing each
  // one's fresh-a cursor; never re-guess a pair.
  std::size_t made = 0;
  bool progress = true;
  while (made < budget && progress) {
    progress = false;
    for (std::size_t b = 0; b < m_ && made < budget; ++b) {
      if (eliminated_[b] || next_a_[b] >= m_) continue;
      guesses.emplace_back(next_a_[b]++, b);
      ++made;
      progress = true;
    }
  }
  return guesses;
}

void AdaptiveCouponStrategy::observe(const std::vector<GuessPair>&,
                                     const std::vector<GuessPair>& hits) {
  for (const auto& [a, b] : hits) {
    (void)a;
    if (!eliminated_[b]) {
      eliminated_[b] = true;
      --live_count_;
    }
  }
}

PlayResult play_game(GuessingGame& game, Strategy& strategy,
                     std::size_t max_rounds) {
  PlayResult result;
  while (!game.solved() && result.rounds < max_rounds) {
    const auto guesses = strategy.next_guesses(result.rounds);
    const auto hits = game.submit_round(guesses);
    strategy.observe(guesses, hits);
    ++result.rounds;
    result.guesses += guesses.size();
  }
  result.solved = game.solved();
  return result;
}

}  // namespace latgossip
