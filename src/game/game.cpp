#include "game/game.h"

#include <stdexcept>

namespace latgossip {

GuessingGame::GuessingGame(std::size_t m, const TargetSet& target) : m_(m) {
  if (m < 1) throw std::invalid_argument("game: m must be >= 1");
  for (const auto& [a, b] : target) {
    if (a >= m || b >= m)
      throw std::invalid_argument("game: target pair out of range");
    if (target_.insert(pack(a, b)).second) {
      by_b_[b].push_back(a);
      ++remaining_;
    }
  }
  initial_size_ = remaining_;
}

std::vector<GuessPair> GuessingGame::submit_round(
    const std::vector<GuessPair>& guesses) {
  if (solved()) throw std::logic_error("game: already solved");
  if (guesses.size() > max_guesses_per_round())
    throw std::invalid_argument("game: more than 2m guesses in a round");
  ++rounds_;
  total_guesses_ += guesses.size();

  // Reveal hits against the *current* target.
  std::vector<GuessPair> hits;
  std::unordered_set<std::size_t> hit_bs;
  for (const auto& [a, b] : guesses) {
    if (a >= m_ || b >= m_)
      throw std::invalid_argument("game: guess out of range");
    if (target_.count(pack(a, b)) != 0) {
      hits.emplace_back(a, b);
      hit_bs.insert(b);
    }
  }

  // Update rule (2): drop every target pair whose B-component was hit.
  for (std::size_t b : hit_bs) {
    auto it = by_b_.find(b);
    if (it == by_b_.end()) continue;
    for (std::size_t a : it->second) {
      if (target_.erase(pack(a, b)) != 0) --remaining_;
    }
    by_b_.erase(it);
  }
  return hits;
}

}  // namespace latgossip
