#pragma once
// The gossip → guessing-game reduction of Lemma 3.
//
// Running any local-broadcast algorithm on the gadget G(P) / Gsym(P)
// induces a guessing-game protocol: every activation of a cross edge
// (v_i, u_j) in a simulation round is one of Alice's round guesses; the
// oracle's answer reveals whether the edge is fast (in the target set).
// Consequently the algorithm cannot finish local broadcast before the
// game is solved — measured here by driving the real simulator and
// feeding its cross-edge activations into the oracle round by round.

#include <optional>

#include "graph/gadgets.h"
#include "game/game.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace latgossip {

struct ReductionResult {
  SimResult sim;                 ///< the gossip run itself
  bool broadcast_completed = false;
  std::size_t cross_activations = 0;   ///< guesses submitted in total
  /// First simulation round whose guesses emptied the target set, if the
  /// game was solved during the run.
  std::optional<Round> game_solved_round;
};

/// Which protocol to simulate on the gadget.
enum class ReductionProtocol {
  kPushPull,   ///< random phone call (the Lemma 5 "random guessing" shape)
  kFlooding,   ///< deterministic round-robin baseline
};

/// Run local broadcast on the gadget with the given protocol while
/// playing the induced guessing game against the oracle.
ReductionResult run_gadget_reduction(const GuessingGadget& gadget,
                                     ReductionProtocol protocol, Rng rng,
                                     Round max_rounds);

}  // namespace latgossip
