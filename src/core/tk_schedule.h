#pragma once
// The alternative all-to-all dissemination algorithm of Appendix E: the
// recursive schedule
//
//   T(1) = 1-DTG,     T(k) = T(k/2) · k-DTG · T(k/2)
//
// i.e. the ruler pattern 1,2,1,4,1,2,1,8,... of ℓ-DTG invocations. After
// executing T(k), any two nodes at weighted distance <= k have exchanged
// rumors (Lemma 24), and T(D) solves all-to-all dissemination in
// O(D log^2 n log D) time (Lemma 25) — without knowledge of any bound on
// n. Path Discovery (Algorithm 6) wraps T(k) in guess-and-double with
// the Termination Check (Lemma 26).

#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"
#include "util/bitset.h"

namespace latgossip {

struct ObsContext;  // obs/metrics.h

/// The sequence of ℓ parameters of T(k). `k` must be a power of two.
std::vector<Latency> tk_pattern(Latency k);

/// Smallest power of two >= k.
Latency next_power_of_two(Latency k);

struct TkOutcome {
  SimResult sim;
  std::vector<Bitset> rumors;
  bool all_to_all = false;
};

/// Execute the schedule T(k) (k rounded up to a power of two) starting
/// from `initial_rumors`. Requires the known-latency model. `obs`
/// (optional, obs/metrics.h) tags each ℓ-DTG pass as phase
/// "tk/dtg_ell_<ℓ>" — the recursion-level split behind Lemma 25's
/// O(D log^2 n log D) accounting — and wires the recorder into every
/// pass.
TkOutcome run_tk_schedule(const WeightedGraph& g, Latency k,
                          std::vector<Bitset> initial_rumors,
                          ObsContext* obs = nullptr);

struct PathDiscoveryOutcome {
  SimResult sim;
  std::vector<Bitset> rumors;
  Latency final_estimate = 0;
  std::size_t attempts = 0;
  bool success = false;
  bool checks_unanimous = true;
};

/// Path Discovery (Algorithm 6): guess-and-double over T(k) with the
/// Termination Check, broadcast primitive = another T(k) pass. `obs`
/// additionally tags "tk/termination_check".
PathDiscoveryOutcome run_path_discovery(const WeightedGraph& g,
                                        ObsContext* obs = nullptr);

}  // namespace latgossip
