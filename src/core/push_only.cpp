#include "core/push_only.h"

#include <stdexcept>

namespace latgossip {

PushOnlyBroadcast::PushOnlyBroadcast(const NetworkView& view, NodeId source,
                                     Rng rng)
    : view_(view), rng_(rng), informed_(view.num_nodes(), false) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("push-only: bad source");
  informed_[source] = true;
  informed_count_ = 1;
}

std::optional<NodeId> PushOnlyBroadcast::select_contact(NodeId u, Round r) {
  if (!informed_[u]) return std::nullopt;  // nothing to push
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  const NodeId target = neigh[rng_.uniform(neigh.size())].to;
  pending_.insert(pack_initiation(u, r, target));
  return target;
}

bool PushOnlyBroadcast::capture_payload(NodeId u, Round) const {
  return informed_[u];
}

void PushOnlyBroadcast::deliver(NodeId u, NodeId peer, Payload payload,
                                EdgeId, Round start, Round) {
  // Discard the response leg of u's own initiation: push-only nodes
  // never pull.
  if (pending_.erase(pack_initiation(u, start, peer)) != 0) return;
  if (payload && !informed_[u]) {
    informed_[u] = true;
    ++informed_count_;
  }
}

bool PushOnlyBroadcast::done(Round) const {
  return informed_count_ == informed_.size();
}

PullOnlyBroadcast::PullOnlyBroadcast(const NetworkView& view, NodeId source,
                                     Rng rng)
    : view_(view), rng_(rng), informed_(view.num_nodes(), false) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("pull-only: bad source");
  informed_[source] = true;
  informed_count_ = 1;
}

std::optional<NodeId> PullOnlyBroadcast::select_contact(NodeId u, Round r) {
  if (informed_[u]) return std::nullopt;  // nothing left to pull
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  const NodeId target = neigh[rng_.uniform(neigh.size())].to;
  pending_.insert(pack_initiation(u, r, target));
  return target;
}

bool PullOnlyBroadcast::capture_payload(NodeId u, Round) const {
  return informed_[u];
}

void PullOnlyBroadcast::deliver(NodeId u, NodeId peer, Payload payload,
                                EdgeId, Round start, Round) {
  // Accept only the response leg of u's own initiation: pull-only nodes
  // ignore unsolicited pushes.
  if (pending_.erase(pack_initiation(u, start, peer)) == 0) return;
  if (payload && !informed_[u]) {
    informed_[u] = true;
    ++informed_count_;
  }
}

bool PullOnlyBroadcast::done(Round) const {
  return informed_count_ == informed_.size();
}

}  // namespace latgossip
