#pragma once
// Randomized ℓ-local broadcast — the randomized alternative to ℓ-DTG.
//
// The paper (Section 5.1) notes two known local-broadcast subroutines
// for unweighted graphs: the randomized "Superstep" algorithm of
// Censor-Hillel et al. and Haeupler's deterministic DTG; it builds on
// DTG. This class provides the natural randomized counterpart in our
// latency model, used as a design ablation for EID's discovery phase:
// each superround (of ℓ network rounds), every node that has not yet
// heard all of its G_ℓ neighbors exchanges with a uniformly random
// not-yet-heard G_ℓ neighbor. Rumors relay transitively exactly as in
// DTG (payloads carry accumulated data plus this-invocation session
// coverage).
//
// Expected behavior: completion in O(ℓ · Δ_ℓ-ish) superrounds worst
// case but typically far fewer thanks to relaying; contrast with DTG's
// deterministic O(ℓ log² n). The ablation bench measures both.
//
// Like DTG this requires known latencies and must run with
// SimOptions::stop_when_idle = false.

#include <optional>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace latgossip {

class RandomLocalBroadcast {
 public:
  /// Copy-on-write snapshot handles — see DtgLocalBroadcast::Payload.
  struct Payload {
    SnapshotRef data;
    SnapshotRef session;
  };

  static std::size_t payload_bits(const Payload& p) {
    return 32 * (p.data.count() + p.session.count());
  }

  RandomLocalBroadcast(const NetworkView& view, Latency ell,
                       std::vector<Bitset> initial_rumors, Rng rng);

  static std::vector<Bitset> own_id_rumors(std::size_t n);

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r);
  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round r);
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  const std::vector<Bitset>& rumors() const { return master_; }
  std::vector<Bitset> take_rumors() { return std::move(master_); }

 private:
  bool covered(NodeId u) const;

  NetworkView view_;
  Latency ell_;
  Rng rng_;
  std::vector<std::vector<NodeId>> ell_neighbors_;
  std::vector<Bitset> master_;
  std::vector<Bitset> session_;
  std::vector<std::size_t> master_count_;   ///< incremental popcounts
  std::vector<std::size_t> session_count_;  ///< incremental popcounts
  SnapshotCache data_snaps_;
  SnapshotCache session_snaps_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
};

}  // namespace latgossip
