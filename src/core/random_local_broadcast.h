#pragma once
// Randomized ℓ-local broadcast — the randomized alternative to ℓ-DTG.
//
// The paper (Section 5.1) notes two known local-broadcast subroutines
// for unweighted graphs: the randomized "Superstep" algorithm of
// Censor-Hillel et al. and Haeupler's deterministic DTG; it builds on
// DTG. This class provides the natural randomized counterpart in our
// latency model, used as a design ablation for EID's discovery phase:
// each superround (of ℓ network rounds), every node that has not yet
// heard all of its G_ℓ neighbors exchanges with a uniformly random
// not-yet-heard G_ℓ neighbor. Rumors relay transitively exactly as in
// DTG (payloads carry accumulated data plus this-invocation session
// coverage).
//
// Expected behavior: completion in O(ℓ · Δ_ℓ-ish) superrounds worst
// case but typically far fewer thanks to relaying; contrast with DTG's
// deterministic O(ℓ log² n). The ablation bench measures both.
//
// Like DTG this requires known latencies and must run with
// SimOptions::stop_when_idle = false.
//
// Templated over the rumor-set representation (util/rumor_set.h);
// RandomLocalBroadcast aliases the dense Bitset instantiation.

#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {

template <RumorSetRep R>
class BasicRandomLocalBroadcast {
 public:
  /// Copy-on-write snapshot handles — see BasicDtgLocalBroadcast.
  struct Payload {
    BasicSnapshotRef<R> data;
    BasicSnapshotRef<R> session;
  };
  using RumorSet = R;

  static std::size_t payload_bits(const Payload& p) {
    return 32 * (p.data.count() + p.session.count());
  }

  BasicRandomLocalBroadcast(const NetworkView& view, Latency ell,
                            std::vector<R> initial_rumors, Rng rng)
      : view_(view),
        ell_(ell),
        rng_(rng),
        data_snaps_(view.num_nodes(), view.num_nodes()),
        session_snaps_(view.num_nodes(), view.num_nodes()) {
    if (!view.latencies_known())
      throw std::invalid_argument(
          "random local broadcast requires the known-latency model");
    if (ell < 1)
      throw std::invalid_argument("random local broadcast: ell must be >= 1");
    const std::size_t n = view.num_nodes();
    if (initial_rumors.size() != n)
      throw std::invalid_argument(
          "random local broadcast: rumor size mismatch");
    master_ = std::move(initial_rumors);
    master_count_.assign(n, 0);
    session_count_.assign(n, 1);
    ell_neighbors_.resize(n);
    session_.reserve(n);
    active_.assign(n, true);
    for (NodeId u = 0; u < n; ++u) {
      if (master_[u].size() != n)
        throw std::invalid_argument(
            "random local broadcast: rumor bitset size mismatch");
      master_[u].set(u);
      master_count_[u] = master_[u].count();
      for (const HalfEdge& h : view.neighbors(u))
        if (view.latency(h.edge) <= ell) ell_neighbors_[u].push_back(h.to);
      R s(n);
      s.set(u);
      session_.push_back(std::move(s));
    }
    active_count_ = n;
  }

  static std::vector<R> own_id_rumors(std::size_t n) {
    return own_id_rumor_sets<R>(n);
  }

  std::optional<NodeId> select_contact(NodeId u, Round r) {
    if (r % ell_ != 0) return std::nullopt;
    if (!active_[u]) return std::nullopt;
    // Collect the not-yet-heard G_ell neighbors and pick one uniformly.
    std::vector<NodeId> missing;
    for (NodeId w : ell_neighbors_[u])
      if (!session_[u].test(w)) missing.push_back(w);
    if (missing.empty()) {
      active_[u] = false;
      --active_count_;
      return std::nullopt;
    }
    return missing[rng_.uniform(missing.size())];
  }

  Payload capture_payload(NodeId u, Round /*r*/) {
    return Payload{data_snaps_.shared(u, master_[u], master_count_[u]),
                   session_snaps_.shared(u, session_[u], session_count_[u])};
  }

  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round /*r*/) {
    return Payload{data_snaps_.fresh(master_[u], master_count_[u]),
                   session_snaps_.fresh(session_[u], session_count_[u])};
  }

  void deliver(NodeId u, NodeId /*peer*/, Payload payload, EdgeId /*e*/,
               Round /*start*/, Round /*now*/) {
    const typename R::OrDelta dm =
        master_[u].or_assign_changed(payload.data.bits());
    master_count_[u] += dm.added;
    if (dm.changed) data_snaps_.invalidate(u);
    const typename R::OrDelta ds =
        session_[u].or_assign_changed(payload.session.bits());
    session_count_[u] += ds.added;
    if (ds.changed) session_snaps_.invalidate(u);
    if (active_[u] && covered(u)) {
      active_[u] = false;
      --active_count_;
    }
  }

  bool done(Round /*r*/) const { return active_count_ == 0; }

  const std::vector<R>& rumors() const { return master_; }
  std::vector<R> take_rumors() { return std::move(master_); }

 private:
  bool covered(NodeId u) const {
    for (NodeId w : ell_neighbors_[u])
      if (!session_[u].test(w)) return false;
    return true;
  }

  NetworkView view_;
  Latency ell_;
  Rng rng_;
  std::vector<std::vector<NodeId>> ell_neighbors_;
  std::vector<R> master_;
  std::vector<R> session_;
  std::vector<std::size_t> master_count_;   ///< incremental cardinalities
  std::vector<std::size_t> session_count_;  ///< incremental cardinalities
  BasicSnapshotCache<R> data_snaps_;
  BasicSnapshotCache<R> session_snaps_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
};

/// Dense instantiation under the historical name.
using RandomLocalBroadcast = BasicRandomLocalBroadcast<Bitset>;

}  // namespace latgossip
