#include "core/push_pull.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latgossip {

// BasicPushPullGossip is header-only (core/push_pull.h): it is templated
// over the rumor-set representation, and the dense instantiation must
// inline into run_gossip_impl's event loop in every caller TU. Only the
// untemplated boolean-payload broadcast variants live here.

PushPullBroadcast::PushPullBroadcast(const NetworkView& view, NodeId source,
                                     Rng rng)
    : view_(view),
      rng_(rng),
      informed_(view.num_nodes()),
      inform_round_(view.num_nodes(), -1) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("push-pull: bad source");
  informed_.set(source);
  inform_round_[source] = 0;
}

void PushPullBroadcast::reset(const NetworkView& view, NodeId source, Rng rng) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("push-pull: bad source");
  view_ = view;
  rng_ = rng;
  informed_.reinit(view.num_nodes());
  inform_round_.assign(view.num_nodes(), -1);
  informed_.set(source);
  inform_round_[source] = 0;
}

BiasedPushPullBroadcast::BiasedPushPullBroadcast(const NetworkView& view,
                                                 NodeId source, double rho,
                                                 Rng rng)
    : view_(view),
      rng_(rng),
      rho_(rho),
      cumulative_(view.num_nodes()),
      informed_(view.num_nodes(), false) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("biased push-pull: bad source");
  if (rho < 0.0)
    throw std::invalid_argument("biased push-pull: rho must be >= 0");
  if (!view.latencies_known())
    throw std::invalid_argument(
        "biased push-pull needs latency knowledge to bias by latency");
  for (NodeId u = 0; u < view.num_nodes(); ++u) {
    double total = 0.0;
    for (const HalfEdge& h : view.neighbors(u)) {
      total += std::pow(static_cast<double>(view.latency(h.edge)), -rho);
      cumulative_[u].push_back(total);
    }
  }
  informed_[source] = true;
  informed_count_ = 1;
}

void BiasedPushPullBroadcast::reset(const NetworkView& view, NodeId source,
                                    double rho, Rng rng) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("biased push-pull: bad source");
  if (rho < 0.0)
    throw std::invalid_argument("biased push-pull: rho must be >= 0");
  if (!view.latencies_known())
    throw std::invalid_argument(
        "biased push-pull needs latency knowledge to bias by latency");
  const bool same_weights = &view.graph() == &view_.graph() && rho == rho_ &&
                            cumulative_.size() == view.num_nodes();
  view_ = view;
  rng_ = rng;
  rho_ = rho;
  if (!same_weights) {
    cumulative_.assign(view.num_nodes(), {});
    for (NodeId u = 0; u < view.num_nodes(); ++u) {
      double total = 0.0;
      for (const HalfEdge& h : view.neighbors(u)) {
        total += std::pow(static_cast<double>(view.latency(h.edge)), -rho);
        cumulative_[u].push_back(total);
      }
    }
  }
  informed_.assign(view.num_nodes(), false);
  informed_[source] = true;
  informed_count_ = 1;
}

std::optional<Contact> BiasedPushPullBroadcast::select_contact(NodeId u,
                                                               Round) {
  const auto& cum = cumulative_[u];
  if (cum.empty()) return std::nullopt;
  const double x = rng_.uniform_double() * cum.back();
  const auto it = std::lower_bound(cum.begin(), cum.end(), x);
  const auto index = static_cast<std::size_t>(it - cum.begin());
  const HalfEdge& h = view_.neighbors(u)[std::min(index, cum.size() - 1)];
  return Contact{h.to, h.edge};
}

bool BiasedPushPullBroadcast::capture_payload(NodeId u, Round) const {
  return informed_[u];
}

void BiasedPushPullBroadcast::deliver(NodeId u, NodeId, Payload payload,
                                      EdgeId, Round, Round) {
  if (payload && !informed_[u]) {
    informed_[u] = true;
    ++informed_count_;
  }
}

bool BiasedPushPullBroadcast::done(Round) const {
  return informed_count_ == informed_.size();
}

}  // namespace latgossip
