#include "core/push_pull.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latgossip {

PushPullBroadcast::PushPullBroadcast(const NetworkView& view, NodeId source,
                                     Rng rng)
    : view_(view),
      rng_(rng),
      informed_(view.num_nodes()),
      inform_round_(view.num_nodes(), -1) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("push-pull: bad source");
  informed_.set(source);
  inform_round_[source] = 0;
}

void PushPullBroadcast::reset(const NetworkView& view, NodeId source, Rng rng) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("push-pull: bad source");
  view_ = view;
  rng_ = rng;
  informed_.reinit(view.num_nodes());
  inform_round_.assign(view.num_nodes(), -1);
  informed_.set(source);
  inform_round_[source] = 0;
}

BiasedPushPullBroadcast::BiasedPushPullBroadcast(const NetworkView& view,
                                                 NodeId source, double rho,
                                                 Rng rng)
    : view_(view),
      rng_(rng),
      rho_(rho),
      cumulative_(view.num_nodes()),
      informed_(view.num_nodes(), false) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("biased push-pull: bad source");
  if (rho < 0.0)
    throw std::invalid_argument("biased push-pull: rho must be >= 0");
  if (!view.latencies_known())
    throw std::invalid_argument(
        "biased push-pull needs latency knowledge to bias by latency");
  for (NodeId u = 0; u < view.num_nodes(); ++u) {
    double total = 0.0;
    for (const HalfEdge& h : view.neighbors(u)) {
      total += std::pow(static_cast<double>(view.latency(h.edge)), -rho);
      cumulative_[u].push_back(total);
    }
  }
  informed_[source] = true;
  informed_count_ = 1;
}

void BiasedPushPullBroadcast::reset(const NetworkView& view, NodeId source,
                                    double rho, Rng rng) {
  if (source >= view.num_nodes())
    throw std::invalid_argument("biased push-pull: bad source");
  if (rho < 0.0)
    throw std::invalid_argument("biased push-pull: rho must be >= 0");
  if (!view.latencies_known())
    throw std::invalid_argument(
        "biased push-pull needs latency knowledge to bias by latency");
  const bool same_weights = &view.graph() == &view_.graph() && rho == rho_ &&
                            cumulative_.size() == view.num_nodes();
  view_ = view;
  rng_ = rng;
  rho_ = rho;
  if (!same_weights) {
    cumulative_.assign(view.num_nodes(), {});
    for (NodeId u = 0; u < view.num_nodes(); ++u) {
      double total = 0.0;
      for (const HalfEdge& h : view.neighbors(u)) {
        total += std::pow(static_cast<double>(view.latency(h.edge)), -rho);
        cumulative_[u].push_back(total);
      }
    }
  }
  informed_.assign(view.num_nodes(), false);
  informed_[source] = true;
  informed_count_ = 1;
}

std::optional<Contact> BiasedPushPullBroadcast::select_contact(NodeId u,
                                                               Round) {
  const auto& cum = cumulative_[u];
  if (cum.empty()) return std::nullopt;
  const double x = rng_.uniform_double() * cum.back();
  const auto it = std::lower_bound(cum.begin(), cum.end(), x);
  const auto index = static_cast<std::size_t>(it - cum.begin());
  const HalfEdge& h = view_.neighbors(u)[std::min(index, cum.size() - 1)];
  return Contact{h.to, h.edge};
}

bool BiasedPushPullBroadcast::capture_payload(NodeId u, Round) const {
  return informed_[u];
}

void BiasedPushPullBroadcast::deliver(NodeId u, NodeId, Payload payload,
                                      EdgeId, Round, Round) {
  if (payload && !informed_[u]) {
    informed_[u] = true;
    ++informed_count_;
  }
}

bool BiasedPushPullBroadcast::done(Round) const {
  return informed_count_ == informed_.size();
}

PushPullGossip::PushPullGossip(const NetworkView& view, GossipGoal goal,
                               NodeId source,
                               std::vector<Bitset> initial_rumors, Rng rng)
    : view_(view),
      goal_(goal),
      source_(source),
      rng_(rng),
      rumors_(std::move(initial_rumors)),
      rumor_count_(view.num_nodes(), 0),
      snapshots_(view.num_nodes(), view.num_nodes()),
      satisfied_(view.num_nodes(), false) {
  if (rumors_.size() != view.num_nodes())
    throw std::invalid_argument("push-pull: rumor vector size mismatch");
  if (goal == GossipGoal::kSingleSource && source >= view.num_nodes())
    throw std::invalid_argument("push-pull: bad source");
  for (NodeId u = 0; u < view.num_nodes(); ++u) {
    if (rumors_[u].size() != view.num_nodes())
      throw std::invalid_argument("push-pull: rumor bitset size mismatch");
    rumor_count_[u] = rumors_[u].count();
    refresh_satisfied(u);
  }
}

void PushPullGossip::reset_own_id(const NetworkView& view, GossipGoal goal,
                                  NodeId source, Rng rng) {
  const std::size_t n = view.num_nodes();
  if (goal == GossipGoal::kSingleSource && source >= n)
    throw std::invalid_argument("push-pull: bad source");
  view_ = view;
  goal_ = goal;
  source_ = source;
  rng_ = rng;
  // Release the cached snapshot refs first so the arena reset below sees
  // every block back in its pool (its precondition).
  snapshots_.reset(n, n);
  rumors_.resize(n);
  rumor_count_.assign(n, 1);
  for (NodeId u = 0; u < n; ++u) {
    rumors_[u].reinit(n);
    rumors_[u].set(u);
  }
  satisfied_.assign(n, false);
  satisfied_count_ = 0;
  for (NodeId u = 0; u < n; ++u) refresh_satisfied(u);
}

std::vector<Bitset> PushPullGossip::own_id_rumors(std::size_t n) {
  std::vector<Bitset> r(n, Bitset(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

bool PushPullGossip::node_satisfied(NodeId u) const {
  switch (goal_) {
    case GossipGoal::kSingleSource:
      return rumors_[u].test(source_);
    case GossipGoal::kAllToAll:
      return rumor_count_[u] == view_.num_nodes();
    case GossipGoal::kLocalBroadcast:
      for (const HalfEdge& h : view_.neighbors(u))
        if (!rumors_[u].test(h.to)) return false;
      return true;
  }
  return false;
}

void PushPullGossip::refresh_satisfied(NodeId u) {
  if (node_satisfied(u)) {
    satisfied_[u] = true;
    ++satisfied_count_;
  }
}

}  // namespace latgossip
