#pragma once
// ℓ-DTG: Haeupler's Deterministic Tree Gossip local-broadcast protocol
// executed on G_ℓ (the subgraph of edges with latency <= ℓ), with one
// DTG step simulated as ℓ rounds of the latency network (Section 5.1 and
// Appendix C of the paper; pseudocode Algorithm 5).
//
// Each node v runs, in lockstep "superrounds" of ℓ network rounds:
//
//   R = {v}
//   for i = 1 until Γ_ℓ(v) ⊆ R:
//     link a new neighbor u_i
//     R' = {v};  PUSH: exchange with u_i..u_1;  PULL: exchange with u_1..u_i
//     R'' = {v}; PULL: exchange with u_1..u_i;  PUSH: exchange with u_i..u_1
//     R = R ∪ R' ∪ R''
//
// When DTG is invoked repeatedly (EID's discovery phase, the T(k)
// schedule), a node's "rumor" is its accumulated knowledge from earlier
// invocations, while the termination set R counts only rumors received
// during THIS invocation — Algorithm 5 restarts R = {v} each time. The
// implementation therefore carries two bitsets per payload: the data
// (union of accumulated rumor sets) and the session set (nodes whose
// current-invocation rumor is contained in the payload). Termination
// tests the session set; knowledge accumulates in the data set.
//
// When acting as the active party a node transmits its current working
// pair (the pipelined behavior DTG's O(log² n) analysis relies on); a
// node that already finished answers with everything it knows.
//
// ℓ-DTG requires the known-latency model: a node must know which of its
// incident edges belong to G_ℓ. Within O(ℓ log² n) rounds every node has
// exchanged current rumor sets with all of its G_ℓ neighbors.
//
// NOTE: the protocol initiates exchanges only at superround boundaries
// (every ℓ rounds); run it with SimOptions::stop_when_idle = false so
// the engine does not mistake the in-between rounds for quiescence.
// done() terminates the run as soon as every node is covered.

#include <optional>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/snapshot.h"

namespace latgossip {

class DtgLocalBroadcast {
 public:
  /// Both components are copy-on-write snapshot handles
  /// (util/snapshot.h): a node whose working pair is unchanged since
  /// its last capture hands out the same immutable snapshots again.
  struct Payload {
    SnapshotRef data;     ///< union of accumulated rumor sets
    SnapshotRef session;  ///< nodes whose this-invocation rumor is included
  };

  static std::size_t payload_bits(const Payload& p) {
    return 32 * (p.data.count() + p.session.count());
  }

  /// `initial_rumors[u]` seeds node u's accumulated knowledge (u's own
  /// id is added automatically). Requires view.latencies_known().
  DtgLocalBroadcast(const NetworkView& view, Latency ell,
                    std::vector<Bitset> initial_rumors);

  static std::vector<Bitset> own_id_rumors(std::size_t n);

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r);
  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round r);
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  const std::vector<Bitset>& rumors() const { return master_; }
  std::vector<Bitset> take_rumors() { return std::move(master_); }
  Latency ell() const { return ell_; }

  /// Largest iteration index any node reached (DTG predicts O(log n)).
  std::size_t max_iteration() const { return max_iteration_; }

 private:
  enum class Phase : std::uint8_t { kPush1, kPull1, kPull2, kPush2 };

  struct NodeState {
    std::vector<NodeId> linked;  ///< u_1 .. u_i in link order
    Bitset linked_set;           ///< membership mirror of `linked`
    Bitset session;              ///< R: this-invocation rumors received
    Bitset work_data;            ///< R'/R'' data content
    Bitset work_session;         ///< R'/R'' session content
    std::size_t session_count = 0;       ///< popcount of `session`
    std::size_t work_data_count = 0;     ///< popcount of `work_data`
    std::size_t work_session_count = 0;  ///< popcount of `work_session`
    Phase phase = Phase::kPush1;
    std::size_t step = 0;        ///< position within the current phase
    bool active = true;
  };

  /// All G_ℓ neighbor ids of u present in u's session set?
  bool covered(NodeId u) const;
  /// Start the next iteration for u (links a new neighbor); returns
  /// false if every G_ℓ neighbor was already heard this invocation.
  bool start_iteration(NodeId u);
  void reset_work(NodeId u);

  NetworkView view_;
  Latency ell_;
  std::vector<std::vector<NodeId>> ell_neighbors_;  ///< sorted by id
  std::vector<Bitset> master_;
  std::vector<std::size_t> master_count_;  ///< incremental popcounts
  std::vector<NodeState> state_;
  SnapshotCache data_snaps_;
  SnapshotCache session_snaps_;
  std::size_t active_count_ = 0;
  std::size_t max_iteration_ = 0;
};

}  // namespace latgossip
