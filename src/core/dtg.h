#pragma once
// ℓ-DTG: Haeupler's Deterministic Tree Gossip local-broadcast protocol
// executed on G_ℓ (the subgraph of edges with latency <= ℓ), with one
// DTG step simulated as ℓ rounds of the latency network (Section 5.1 and
// Appendix C of the paper; pseudocode Algorithm 5).
//
// Each node v runs, in lockstep "superrounds" of ℓ network rounds:
//
//   R = {v}
//   for i = 1 until Γ_ℓ(v) ⊆ R:
//     link a new neighbor u_i
//     R' = {v};  PUSH: exchange with u_i..u_1;  PULL: exchange with u_1..u_i
//     R'' = {v}; PULL: exchange with u_1..u_i;  PUSH: exchange with u_i..u_1
//     R = R ∪ R' ∪ R''
//
// When DTG is invoked repeatedly (EID's discovery phase, the T(k)
// schedule), a node's "rumor" is its accumulated knowledge from earlier
// invocations, while the termination set R counts only rumors received
// during THIS invocation — Algorithm 5 restarts R = {v} each time. The
// implementation therefore carries two bitsets per payload: the data
// (union of accumulated rumor sets) and the session set (nodes whose
// current-invocation rumor is contained in the payload). Termination
// tests the session set; knowledge accumulates in the data set.
//
// When acting as the active party a node transmits its current working
// pair (the pipelined behavior DTG's O(log² n) analysis relies on); a
// node that already finished answers with everything it knows.
//
// ℓ-DTG requires the known-latency model: a node must know which of its
// incident edges belong to G_ℓ. Within O(ℓ log² n) rounds every node has
// exchanged current rumor sets with all of its G_ℓ neighbors.
//
// NOTE: the protocol initiates exchanges only at superround boundaries
// (every ℓ rounds); run it with SimOptions::stop_when_idle = false so
// the engine does not mistake the in-between rounds for quiescence.
// done() terminates the run as soon as every node is covered.
//
// Templated over the rumor-set representation (util/rumor_set.h);
// DtgLocalBroadcast aliases the dense Bitset instantiation. The
// link-order bookkeeping (linked_set) stays a plain Bitset — it is
// per-node adjacency bookkeeping, not a payload-bearing rumor set.

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {

template <RumorSetRep R>
class BasicDtgLocalBroadcast {
 public:
  /// Both components are copy-on-write snapshot handles
  /// (util/snapshot.h): a node whose working pair is unchanged since
  /// its last capture hands out the same immutable snapshots again.
  struct Payload {
    BasicSnapshotRef<R> data;  ///< union of accumulated rumor sets
    BasicSnapshotRef<R> session;  ///< this-invocation coverage included
  };
  using RumorSet = R;

  static std::size_t payload_bits(const Payload& p) {
    return 32 * (p.data.count() + p.session.count());
  }

  /// `initial_rumors[u]` seeds node u's accumulated knowledge (u's own
  /// id is added automatically). Requires view.latencies_known().
  BasicDtgLocalBroadcast(const NetworkView& view, Latency ell,
                         std::vector<R> initial_rumors)
      : view_(view),
        ell_(ell),
        data_snaps_(view.num_nodes(), view.num_nodes()),
        session_snaps_(view.num_nodes(), view.num_nodes()) {
    if (!view.latencies_known())
      throw std::invalid_argument(
          "DTG requires the known-latency model (a node must know which "
          "incident edges belong to G_ell)");
    if (ell < 1) throw std::invalid_argument("DTG: ell must be >= 1");
    const std::size_t n = view.num_nodes();
    if (initial_rumors.size() != n)
      throw std::invalid_argument("DTG: rumor vector size mismatch");
    master_ = std::move(initial_rumors);
    master_count_.assign(n, 0);
    ell_neighbors_.resize(n);
    state_.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
      if (master_[u].size() != n)
        throw std::invalid_argument("DTG: rumor bitset size mismatch");
      master_[u].set(u);
      master_count_[u] = master_[u].count();
      for (const HalfEdge& h : view.neighbors(u))
        if (view.latency(h.edge) <= ell) ell_neighbors_[u].push_back(h.to);
      std::sort(ell_neighbors_[u].begin(), ell_neighbors_[u].end());
      NodeState st;
      st.linked_set = Bitset(n);
      st.session = R(n);
      st.session.set(u);  // R = {v}
      st.session_count = 1;
      st.work_data = master_[u];
      st.work_data_count = master_count_[u];
      st.work_session = R(n);
      st.work_session.set(u);
      st.work_session_count = 1;
      state_.push_back(std::move(st));
    }
    active_count_ = n;
  }

  static std::vector<R> own_id_rumors(std::size_t n) {
    return own_id_rumor_sets<R>(n);
  }

  std::optional<NodeId> select_contact(NodeId u, Round r) {
    if (r % ell_ != 0) return std::nullopt;  // superround boundaries only
    NodeState& st = state_[u];
    if (!st.active) return std::nullopt;

    // At an iteration boundary: decide whether to stop or link anew. The
    // boundary is encoded by an exhausted script (step == linked.size()
    // in kPush2), including the initial state (no links yet).
    const bool at_boundary =
        st.linked.empty() ||
        (st.phase == Phase::kPush2 && st.step >= st.linked.size());
    if (at_boundary) {
      if (covered(u) || !start_iteration(u)) {
        st.active = false;
        --active_count_;
        // The capture source switches from the working pair to
        // (master, session); drop any cached working-pair snapshots.
        data_snaps_.invalidate(u);
        session_snaps_.invalidate(u);
        return std::nullopt;
      }
    }

    const std::size_t i = st.linked.size();
    std::size_t partner_index = 0;
    switch (st.phase) {
      case Phase::kPush1:
      case Phase::kPush2:
        partner_index = i - 1 - st.step;  // j = i down to 1
        break;
      case Phase::kPull1:
      case Phase::kPull2:
        partner_index = st.step;  // j = 1 up to i
        break;
    }
    const NodeId partner = st.linked[partner_index];

    // Advance the script position past this exchange.
    if (++st.step >= i) {
      st.step = 0;
      switch (st.phase) {
        case Phase::kPush1:
          st.phase = Phase::kPull1;
          break;
        case Phase::kPull1:
          st.phase = Phase::kPull2;
          reset_work(u);  // R'' = {v}
          break;
        case Phase::kPull2:
          st.phase = Phase::kPush2;
          break;
        case Phase::kPush2:
          st.step = i;  // sentinel: boundary reached
          break;
      }
    }
    return partner;
  }

  Payload capture_payload(NodeId u, Round /*r*/) {
    // Active nodes transmit their pipelined working pair (the behavior
    // the O(log^2 n) analysis relies on); finished nodes answer with all
    // they know.
    const NodeState& st = state_[u];
    if (st.active)
      return Payload{data_snaps_.shared(u, st.work_data, st.work_data_count),
                     session_snaps_.shared(u, st.work_session,
                                           st.work_session_count)};
    return Payload{data_snaps_.shared(u, master_[u], master_count_[u]),
                   session_snaps_.shared(u, st.session, st.session_count)};
  }

  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round /*r*/) {
    const NodeState& st = state_[u];
    if (st.active)
      return Payload{data_snaps_.fresh(st.work_data, st.work_data_count),
                     session_snaps_.fresh(st.work_session,
                                          st.work_session_count)};
    return Payload{data_snaps_.fresh(master_[u], master_count_[u]),
                   session_snaps_.fresh(st.session, st.session_count)};
  }

  void deliver(NodeId u, NodeId /*peer*/, Payload payload, EdgeId /*e*/,
               Round /*start*/, Round /*now*/) {
    NodeState& st = state_[u];
    const typename R::OrDelta dm =
        master_[u].or_assign_changed(payload.data.bits());
    master_count_[u] += dm.added;
    const typename R::OrDelta ds =
        st.session.or_assign_changed(payload.session.bits());
    st.session_count += ds.added;
    if (st.active) {
      const typename R::OrDelta dw =
          st.work_data.or_assign_changed(payload.data.bits());
      st.work_data_count += dw.added;
      const typename R::OrDelta dws =
          st.work_session.or_assign_changed(payload.session.bits());
      st.work_session_count += dws.added;
      // Active captures read the working pair.
      if (dw.changed) data_snaps_.invalidate(u);
      if (dws.changed) session_snaps_.invalidate(u);
    } else {
      // Finished captures read (master, session).
      if (dm.changed) data_snaps_.invalidate(u);
      if (ds.changed) session_snaps_.invalidate(u);
    }
  }

  bool done(Round /*r*/) const { return active_count_ == 0; }

  const std::vector<R>& rumors() const { return master_; }
  std::vector<R> take_rumors() { return std::move(master_); }
  Latency ell() const { return ell_; }

  /// Largest iteration index any node reached (DTG predicts O(log n)).
  std::size_t max_iteration() const { return max_iteration_; }

 private:
  enum class Phase : std::uint8_t { kPush1, kPull1, kPull2, kPush2 };

  struct NodeState {
    std::vector<NodeId> linked;  ///< u_1 .. u_i in link order
    Bitset linked_set;           ///< membership mirror of `linked`
    R session;                   ///< R: this-invocation rumors received
    R work_data;                 ///< R'/R'' data content
    R work_session;              ///< R'/R'' session content
    std::size_t session_count = 0;       ///< cardinality of `session`
    std::size_t work_data_count = 0;     ///< cardinality of `work_data`
    std::size_t work_session_count = 0;  ///< cardinality of `work_session`
    Phase phase = Phase::kPush1;
    std::size_t step = 0;        ///< position within the current phase
    bool active = true;
  };

  /// All G_ℓ neighbor ids of u present in u's session set?
  bool covered(NodeId u) const {
    for (NodeId w : ell_neighbors_[u])
      if (!state_[u].session.test(w)) return false;
    return true;
  }

  /// Start the next iteration for u (links a new neighbor); returns
  /// false if every G_ℓ neighbor was already heard this invocation.
  bool start_iteration(NodeId u) {
    // Link the lowest-id G_ell neighbor not yet heard this invocation;
    // such a neighbor is necessarily unlinked (a direct exchange with a
    // linked neighbor has already delivered its session rumor).
    NodeState& st = state_[u];
    for (NodeId w : ell_neighbors_[u]) {
      if (st.session.test(w)) continue;
      if (st.linked_set.test(w))
        throw std::logic_error("DTG invariant: linked neighbor missing rumor");
      st.linked.push_back(w);
      st.linked_set.set(w);
      st.phase = Phase::kPush1;
      st.step = 0;
      reset_work(u);
      max_iteration_ = std::max(max_iteration_, st.linked.size());
      return true;
    }
    return false;
  }

  void reset_work(NodeId u) {
    NodeState& st = state_[u];
    st.work_data = master_[u];  // R' = {v}: v's (compound) rumor
    st.work_data_count = master_count_[u];
    st.work_session.clear();
    st.work_session.set(u);
    st.work_session_count = 1;
    data_snaps_.invalidate(u);
    session_snaps_.invalidate(u);
  }

  NetworkView view_;
  Latency ell_;
  std::vector<std::vector<NodeId>> ell_neighbors_;  ///< sorted by id
  std::vector<R> master_;
  std::vector<std::size_t> master_count_;  ///< incremental cardinalities
  std::vector<NodeState> state_;
  BasicSnapshotCache<R> data_snaps_;
  BasicSnapshotCache<R> session_snaps_;
  std::size_t active_count_ = 0;
  std::size_t max_iteration_ = 0;
};

/// Dense instantiation under the historical name.
using DtgLocalBroadcast = BasicDtgLocalBroadcast<Bitset>;

}  // namespace latgossip
