#include "core/random_local_broadcast.h"

#include <algorithm>
#include <stdexcept>

namespace latgossip {

RandomLocalBroadcast::RandomLocalBroadcast(const NetworkView& view,
                                           Latency ell,
                                           std::vector<Bitset> initial_rumors,
                                           Rng rng)
    : view_(view),
      ell_(ell),
      rng_(rng),
      data_snaps_(view.num_nodes(), view.num_nodes()),
      session_snaps_(view.num_nodes(), view.num_nodes()) {
  if (!view.latencies_known())
    throw std::invalid_argument(
        "random local broadcast requires the known-latency model");
  if (ell < 1)
    throw std::invalid_argument("random local broadcast: ell must be >= 1");
  const std::size_t n = view.num_nodes();
  if (initial_rumors.size() != n)
    throw std::invalid_argument("random local broadcast: rumor size mismatch");
  master_ = std::move(initial_rumors);
  master_count_.assign(n, 0);
  session_count_.assign(n, 1);
  ell_neighbors_.resize(n);
  session_.reserve(n);
  active_.assign(n, true);
  for (NodeId u = 0; u < n; ++u) {
    if (master_[u].size() != n)
      throw std::invalid_argument(
          "random local broadcast: rumor bitset size mismatch");
    master_[u].set(u);
    master_count_[u] = master_[u].count();
    for (const HalfEdge& h : view.neighbors(u))
      if (view.latency(h.edge) <= ell) ell_neighbors_[u].push_back(h.to);
    Bitset s(n);
    s.set(u);
    session_.push_back(std::move(s));
  }
  active_count_ = n;
}

std::vector<Bitset> RandomLocalBroadcast::own_id_rumors(std::size_t n) {
  std::vector<Bitset> r(n, Bitset(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

bool RandomLocalBroadcast::covered(NodeId u) const {
  for (NodeId w : ell_neighbors_[u])
    if (!session_[u].test(w)) return false;
  return true;
}

std::optional<NodeId> RandomLocalBroadcast::select_contact(NodeId u,
                                                           Round r) {
  if (r % ell_ != 0) return std::nullopt;
  if (!active_[u]) return std::nullopt;
  // Collect the not-yet-heard G_ell neighbors and pick one uniformly.
  std::vector<NodeId> missing;
  for (NodeId w : ell_neighbors_[u])
    if (!session_[u].test(w)) missing.push_back(w);
  if (missing.empty()) {
    active_[u] = false;
    --active_count_;
    return std::nullopt;
  }
  return missing[rng_.uniform(missing.size())];
}

RandomLocalBroadcast::Payload RandomLocalBroadcast::capture_payload(NodeId u,
                                                                    Round) {
  return Payload{data_snaps_.shared(u, master_[u], master_count_[u]),
                 session_snaps_.shared(u, session_[u], session_count_[u])};
}

RandomLocalBroadcast::Payload RandomLocalBroadcast::capture_payload_copy(
    NodeId u, Round) {
  return Payload{data_snaps_.fresh(master_[u], master_count_[u]),
                 session_snaps_.fresh(session_[u], session_count_[u])};
}

void RandomLocalBroadcast::deliver(NodeId u, NodeId, Payload payload, EdgeId,
                                   Round, Round) {
  const Bitset::OrDelta dm = master_[u].or_assign_changed(payload.data.bits());
  master_count_[u] += dm.added;
  if (dm.changed) data_snaps_.invalidate(u);
  const Bitset::OrDelta ds =
      session_[u].or_assign_changed(payload.session.bits());
  session_count_[u] += ds.added;
  if (ds.changed) session_snaps_.invalidate(u);
  if (active_[u] && covered(u)) {
    active_[u] = false;
    --active_count_;
  }
}

bool RandomLocalBroadcast::done(Round) const { return active_count_ == 0; }

}  // namespace latgossip
