#include "core/tk_schedule.h"

#include <stdexcept>

#include <string>

#include "core/dtg.h"
#include "core/rr_broadcast.h"
#include "core/termination.h"
#include "obs/metrics.h"
#include "sim/dispatch.h"

namespace latgossip {

Latency next_power_of_two(Latency k) {
  if (k < 1) throw std::invalid_argument("next_power_of_two: k must be >= 1");
  Latency p = 1;
  while (p < k) p *= 2;
  return p;
}

std::vector<Latency> tk_pattern(Latency k) {
  if (k < 1) throw std::invalid_argument("tk_pattern: k must be >= 1");
  if ((k & (k - 1)) != 0)
    throw std::invalid_argument("tk_pattern: k must be a power of two");
  if (k == 1) return {1};
  std::vector<Latency> half = tk_pattern(k / 2);
  std::vector<Latency> out = half;
  out.push_back(k);
  out.insert(out.end(), half.begin(), half.end());
  return out;
}

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  std::size_t pow = 1;
  while (pow < x) {
    pow *= 2;
    ++k;
  }
  return k < 1 ? 1 : k;
}

/// Run one ℓ-DTG pass over persistent rumor sets, tagged as phase
/// "tk/dtg_ell_<ℓ>" (one phase per recursion level; repeated passes at
/// the same ℓ accumulate into the same phase entry).
SimResult dtg_pass(const WeightedGraph& g, Latency ell,
                   std::vector<Bitset>& rumors, ObsContext* obs) {
  PhaseScope phase(obs, "tk/dtg_ell_" + std::to_string(ell));
  NetworkView view(g, /*latencies_known=*/true);
  DtgLocalBroadcast dtg(view, ell, std::move(rumors));
  SimOptions opts;
  // DTG acts only on superround boundaries; disable idle-stop.
  opts.stop_when_idle = false;
  const auto logn = static_cast<Round>(ceil_log2(g.num_nodes()) + 2);
  opts.max_rounds = static_cast<Round>(ell) * 64 * logn * logn;
  if (obs) opts.recorder = obs->recorder;
  const SimResult sim = dispatch_gossip(g, dtg, opts);
  phase.add(sim);
  rumors = dtg.take_rumors();
  return sim;
}

}  // namespace

TkOutcome run_tk_schedule(const WeightedGraph& g, Latency k,
                          std::vector<Bitset> initial_rumors,
                          ObsContext* obs) {
  const std::size_t n = g.num_nodes();
  if (initial_rumors.size() != n)
    throw std::invalid_argument("T(k): rumor vector size mismatch");
  TkOutcome out;
  out.rumors = std::move(initial_rumors);
  for (Latency ell : tk_pattern(next_power_of_two(k)))
    out.sim.accumulate(dtg_pass(g, ell, out.rumors, obs));
  out.all_to_all = all_sets_full(out.rumors);
  return out;
}

PathDiscoveryOutcome run_path_discovery(const WeightedGraph& g,
                                        ObsContext* obs) {
  const std::size_t n = g.num_nodes();
  PathDiscoveryOutcome out;
  out.rumors = own_id_rumors(n);
  if (n <= 1) {
    out.success = true;
    out.final_estimate = 1;
    return out;
  }
  const Latency k_limit =
      2 * static_cast<Latency>(n) * std::max<Latency>(g.max_latency(), 1);

  for (Latency k = 1; k <= k_limit; k *= 2) {
    ++out.attempts;
    TkOutcome attempt = run_tk_schedule(g, k, std::move(out.rumors), obs);
    out.sim.accumulate(attempt.sim);
    out.rumors = std::move(attempt.rumors);

    // Termination Check with T(k) as the broadcast primitive. The check
    // phase brackets the whole broadcast pass; the pass's own dtg_ell
    // phases still account the rounds (the scope is a trace marker).
    PhaseScope check_phase(obs, "tk/termination_check");
    auto broadcast = [&]() {
      TkOutcome pass = run_tk_schedule(g, k, own_id_rumors(n), obs);
      return std::make_pair(std::move(pass.rumors), pass.sim);
    };
    const CheckOutcome check = run_termination_check(g, out.rumors, broadcast);
    out.sim.accumulate(check.sim);
    if (!check.unanimous) out.checks_unanimous = false;
    if (!check.failed) {
      out.success = true;
      out.final_estimate = k;
      return out;
    }
  }
  out.success = false;
  out.final_estimate = k_limit;
  return out;
}

}  // namespace latgossip
