#pragma once
// Latency discovery (Section 4.2): in the unknown-latency model, each
// node probes its incident edges sequentially (one exchange per round,
// Δ rounds of initiations) and waits up to a budget of rounds for the
// replies. Every probe that completes within the window reveals the
// exact latency of its edge (completion round minus initiation round);
// edges that do not answer are known to be slower than the budget —
// which is fine, since an algorithm with diameter estimate k never wants
// edges of latency > k.
//
// With the budget set to (an estimate of) D this takes Δ + D rounds,
// after which the known-latency machinery (EID) applies — giving the
// Õ(D + Δ) branch of Theorem 20.

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace latgossip {

class ProbeProtocol {
 public:
  using Payload = bool;  // probes carry no information

  ProbeProtocol(const NetworkView& view, Latency wait_budget);

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId, Round) const { return true; }
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  /// Discovered latency of edge e, if it replied within the window.
  const std::vector<std::optional<Latency>>& edge_latencies() const {
    return discovered_;
  }

 private:
  NetworkView view_;
  Latency wait_budget_;
  Round deadline_;
  std::vector<std::optional<Latency>> discovered_;
};

struct DiscoveryOutcome {
  SimResult sim;
  std::vector<std::optional<Latency>> edge_latencies;
  std::size_t edges_discovered = 0;
};

/// Run the probe phase with the given wait budget.
DiscoveryOutcome discover_latencies(const WeightedGraph& g,
                                    Latency wait_budget);

struct UnknownLatencyEidOutcome {
  SimResult sim;  ///< probes + EID attempts + checks, all attempts
  std::vector<Bitset> rumors;
  Latency final_estimate = 0;
  std::size_t attempts = 0;
  bool success = false;
};

/// The (D+Δ)-branch of Theorem 20: guess-and-double k; per attempt, probe
/// with budget k (Δ + k rounds), then EID(k) — valid because the probes
/// revealed every latency <= k and EID(k) touches no slower edge — then
/// the Termination Check.
UnknownLatencyEidOutcome run_unknown_latency_eid(const WeightedGraph& g,
                                                 std::size_t n_hat, Rng& rng);

}  // namespace latgossip
