#include "core/latency_discovery.h"

#include "sim/dispatch.h"

#include <stdexcept>

#include "core/eid.h"
#include "core/rr_broadcast.h"
#include "core/termination.h"

namespace latgossip {

ProbeProtocol::ProbeProtocol(const NetworkView& view, Latency wait_budget)
    : view_(view),
      wait_budget_(wait_budget),
      discovered_(view.graph().num_edges()) {
  if (wait_budget < 1)
    throw std::invalid_argument("probe: wait budget must be >= 1");
  Round max_degree = 0;
  for (NodeId u = 0; u < view.num_nodes(); ++u)
    max_degree = std::max<Round>(max_degree,
                                 static_cast<Round>(view.degree(u)));
  deadline_ = max_degree + wait_budget;
}

std::optional<NodeId> ProbeProtocol::select_contact(NodeId u, Round r) {
  const auto neigh = view_.neighbors(u);
  if (static_cast<std::size_t>(r) >= neigh.size()) return std::nullopt;
  return neigh[static_cast<std::size_t>(r)].to;
}

void ProbeProtocol::deliver(NodeId, NodeId, Payload, EdgeId e, Round start,
                            Round now) {
  if (now <= deadline_) discovered_[e] = now - start;
}

bool ProbeProtocol::done(Round r) const { return r >= deadline_; }

DiscoveryOutcome discover_latencies(const WeightedGraph& g,
                                    Latency wait_budget) {
  NetworkView view(g, /*latencies_known=*/false);
  ProbeProtocol probe(view, wait_budget);
  SimOptions opts;
  opts.max_rounds = static_cast<Round>(g.max_degree()) + wait_budget + 1;
  opts.stop_when_idle = false;  // run the full window
  DiscoveryOutcome out;
  out.sim = dispatch_gossip(g, probe, opts);
  out.edge_latencies = probe.edge_latencies();
  for (const auto& lat : out.edge_latencies)
    if (lat.has_value()) ++out.edges_discovered;
  return out;
}

UnknownLatencyEidOutcome run_unknown_latency_eid(const WeightedGraph& g,
                                                 std::size_t n_hat,
                                                 Rng& rng) {
  const std::size_t n = g.num_nodes();
  UnknownLatencyEidOutcome out;
  out.rumors = own_id_rumors(n);
  if (n <= 1) {
    out.success = true;
    out.final_estimate = 1;
    return out;
  }
  const Latency k_limit =
      2 * static_cast<Latency>(n) * std::max<Latency>(g.max_latency(), 1);
  NetworkView known(g, /*latencies_known=*/true);

  for (Latency k = 1; k <= k_limit; k *= 2) {
    ++out.attempts;
    // Probe phase with budget k: Δ + k rounds; afterwards every latency
    // <= k is known, which is all EID(k) ever reads.
    DiscoveryOutcome probes = discover_latencies(g, k);
    out.sim.accumulate(probes.sim);

    EidOptions options;
    options.diameter_estimate = k;
    options.n_hat = n_hat;
    EidOutcome attempt = run_eid(g, options, std::move(out.rumors), rng);
    out.sim.accumulate(attempt.sim);
    out.rumors = std::move(attempt.rumors);

    const DirectedGraph& spanner = attempt.spanner;
    auto broadcast = [&]() {
      RRBroadcast rr(known, spanner, k, own_id_rumors(n));
      SimOptions opts;
      opts.max_rounds = rr.budget() + k + 2;
      SimResult sim = dispatch_gossip(g, rr, opts);
      return std::make_pair(rr.take_rumors(), sim);
    };
    const CheckOutcome check = run_termination_check(g, out.rumors, broadcast);
    out.sim.accumulate(check.sim);
    if (!check.failed) {
      out.success = true;
      out.final_estimate = k;
      return out;
    }
  }
  out.success = false;
  out.final_estimate = k_limit;
  return out;
}

}  // namespace latgossip
