#include "core/rr_broadcast.h"

#include <algorithm>
#include <stdexcept>

namespace latgossip {

RRBroadcast::RRBroadcast(const NetworkView& view,
                         const DirectedGraph& overlay, Latency k,
                         std::vector<Bitset> initial_rumors,
                         Round budget_override)
    : k_(k),
      rumors_(std::move(initial_rumors)),
      rumor_count_(view.num_nodes(), 0),
      snapshots_(view.num_nodes(), view.num_nodes()) {
  if (k < 1) throw std::invalid_argument("RR broadcast: k must be >= 1");
  const std::size_t n = view.num_nodes();
  if (overlay.num_nodes() != n)
    throw std::invalid_argument("RR broadcast: overlay size mismatch");
  if (rumors_.size() != n)
    throw std::invalid_argument("RR broadcast: rumor vector size mismatch");
  out_targets_.resize(n);
  std::size_t max_out = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (rumors_[u].size() != n)
      throw std::invalid_argument("RR broadcast: rumor bitset size mismatch");
    rumors_[u].set(u);
    rumor_count_[u] = rumors_[u].count();
    for (const Arc& a : overlay.out_arcs(u))
      if (a.latency <= k) out_targets_[u].push_back(a.to);
    max_out = std::max(max_out, out_targets_[u].size());
  }
  budget_ = budget_override != 0
                ? budget_override
                : k * static_cast<Round>(max_out) + k;  // Lemma 15
}

std::optional<NodeId> RRBroadcast::select_contact(NodeId u, Round r) {
  if (r >= budget_) return std::nullopt;
  const auto& targets = out_targets_[u];
  if (targets.empty()) return std::nullopt;
  return targets[static_cast<std::size_t>(r) % targets.size()];
}

RRBroadcast::Payload RRBroadcast::capture_payload(NodeId u, Round) {
  return snapshots_.shared(u, rumors_[u], rumor_count_[u]);
}

RRBroadcast::Payload RRBroadcast::capture_payload_copy(NodeId u, Round) {
  return snapshots_.fresh(rumors_[u], rumor_count_[u]);
}

void RRBroadcast::deliver(NodeId u, NodeId, Payload payload, EdgeId, Round,
                          Round) {
  const Bitset::OrDelta delta = rumors_[u].or_assign_changed(payload.bits());
  if (!delta.changed) return;
  rumor_count_[u] += delta.added;
  snapshots_.invalidate(u);
}

bool RRBroadcast::done(Round r) const {
  // Allow the final initiations (round budget_-1) to drain: their
  // deliveries land no later than budget_ - 1 + k.
  return r >= budget_ + k_;
}

std::vector<Bitset> own_id_rumors(std::size_t n) {
  std::vector<Bitset> r(n, Bitset(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

bool all_sets_full(const std::vector<Bitset>& rumors) {
  for (const Bitset& r : rumors)
    if (!r.all()) return false;
  return true;
}

bool local_broadcast_complete(const WeightedGraph& g,
                              const std::vector<Bitset>& rumors) {
  if (rumors.size() != g.num_nodes())
    throw std::invalid_argument("rumor vector size mismatch");
  for (const Edge& e : g.edges())
    if (!rumors[e.u].test(e.v) || !rumors[e.v].test(e.u)) return false;
  return true;
}

}  // namespace latgossip
