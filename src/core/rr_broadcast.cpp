#include "core/rr_broadcast.h"

#include <stdexcept>

namespace latgossip {

// BasicRRBroadcast is header-only (templated over the rumor-set
// representation); only the dense-Bitset helper functions shared by the
// composite algorithms live here.

std::vector<Bitset> own_id_rumors(std::size_t n) {
  std::vector<Bitset> r(n, Bitset(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

bool all_sets_full(const std::vector<Bitset>& rumors) {
  for (const Bitset& r : rumors)
    if (!r.all()) return false;
  return true;
}

bool local_broadcast_complete(const WeightedGraph& g,
                              const std::vector<Bitset>& rumors) {
  if (rumors.size() != g.num_nodes())
    throw std::invalid_argument("rumor vector size mismatch");
  for (const Edge& e : g.edges())
    if (!rumors[e.u].test(e.v) || !rumors[e.v].test(e.u)) return false;
  return true;
}

}  // namespace latgossip
