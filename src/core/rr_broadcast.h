#pragma once
// RR Broadcast (Algorithm 2, Lemma 15): every node propagates its rumor
// set along its overlay out-edges of latency <= k, one per round in
// round-robin order, for k*Δout + k iterations. After that, any two
// nodes at weighted distance <= k in G have exchanged rumors.
//
// The overlay is normally the oriented Baswana–Sen spanner (Theorem 14);
// every overlay arc must be an edge of the underlying graph.

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "sim/engine.h"
#include "util/bitset.h"
#include "util/snapshot.h"

namespace latgossip {

class RRBroadcast {
 public:
  /// Copy-on-write snapshot handle — see PushPullGossip::Payload.
  using Payload = SnapshotRef;

  /// `k` caps both which arcs are used (latency <= k) and the iteration
  /// budget. `budget_override`, if nonzero, replaces the default
  /// k*Δout + k iteration count.
  RRBroadcast(const NetworkView& view, const DirectedGraph& overlay,
              Latency k, std::vector<Bitset> initial_rumors,
              Round budget_override = 0);

  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r);
  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round r);
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  Round budget() const { return budget_; }
  const std::vector<Bitset>& rumors() const { return rumors_; }
  std::vector<Bitset> take_rumors() { return std::move(rumors_); }

 private:
  Latency k_;
  Round budget_ = 0;
  std::vector<std::vector<NodeId>> out_targets_;  ///< filtered, per node
  std::vector<Bitset> rumors_;
  std::vector<std::size_t> rumor_count_;  ///< incremental popcounts
  SnapshotCache snapshots_;
};

/// Fresh rumor sets where each node knows only its own id.
std::vector<Bitset> own_id_rumors(std::size_t n);

/// True iff every rumor set contains every node id.
bool all_sets_full(const std::vector<Bitset>& rumors);

/// True iff for every edge (u, v) of g both endpoints hold each other's
/// rumor (the local broadcast goal).
bool local_broadcast_complete(const WeightedGraph& g,
                              const std::vector<Bitset>& rumors);

}  // namespace latgossip
