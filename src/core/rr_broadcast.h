#pragma once
// RR Broadcast (Algorithm 2, Lemma 15): every node propagates its rumor
// set along its overlay out-edges of latency <= k, one per round in
// round-robin order, for k*Δout + k iterations. After that, any two
// nodes at weighted distance <= k in G have exchanged rumors.
//
// The overlay is normally the oriented Baswana–Sen spanner (Theorem 14);
// every overlay arc must be an edge of the underlying graph.
//
// Templated over the rumor-set representation (util/rumor_set.h);
// RRBroadcast aliases the dense Bitset instantiation.

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "graph/digraph.h"
#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {

template <RumorSetRep R>
class BasicRRBroadcast {
 public:
  /// Copy-on-write snapshot handle — see BasicPushPullGossip::Payload.
  using Payload = BasicSnapshotRef<R>;
  using RumorSet = R;

  /// `k` caps both which arcs are used (latency <= k) and the iteration
  /// budget. `budget_override`, if nonzero, replaces the default
  /// k*Δout + k iteration count.
  BasicRRBroadcast(const NetworkView& view, const DirectedGraph& overlay,
                   Latency k, std::vector<R> initial_rumors,
                   Round budget_override = 0)
      : k_(k),
        rumors_(std::move(initial_rumors)),
        rumor_count_(view.num_nodes(), 0),
        snapshots_(view.num_nodes(), view.num_nodes()) {
    if (k < 1) throw std::invalid_argument("RR broadcast: k must be >= 1");
    const std::size_t n = view.num_nodes();
    if (overlay.num_nodes() != n)
      throw std::invalid_argument("RR broadcast: overlay size mismatch");
    if (rumors_.size() != n)
      throw std::invalid_argument("RR broadcast: rumor vector size mismatch");
    out_targets_.resize(n);
    std::size_t max_out = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (rumors_[u].size() != n)
        throw std::invalid_argument(
            "RR broadcast: rumor bitset size mismatch");
      rumors_[u].set(u);
      rumor_count_[u] = rumors_[u].count();
      for (const Arc& a : overlay.out_arcs(u))
        if (a.latency <= k) out_targets_[u].push_back(a.to);
      max_out = std::max(max_out, out_targets_[u].size());
    }
    budget_ = budget_override != 0
                  ? budget_override
                  : k * static_cast<Round>(max_out) + k;  // Lemma 15
  }

  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<NodeId> select_contact(NodeId u, Round r) {
    if (r >= budget_) return std::nullopt;
    const auto& targets = out_targets_[u];
    if (targets.empty()) return std::nullopt;
    return targets[static_cast<std::size_t>(r) % targets.size()];
  }

  Payload capture_payload(NodeId u, Round /*r*/) {
    return snapshots_.shared(u, rumors_[u], rumor_count_[u]);
  }

  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round /*r*/) {
    return snapshots_.fresh(rumors_[u], rumor_count_[u]);
  }

  void deliver(NodeId u, NodeId /*peer*/, Payload payload, EdgeId /*e*/,
               Round /*start*/, Round /*now*/) {
    const typename R::OrDelta delta =
        rumors_[u].or_assign_changed(payload.bits());
    if (!delta.changed) return;
    rumor_count_[u] += delta.added;
    snapshots_.invalidate(u);
  }

  bool done(Round r) const {
    // Allow the final initiations (round budget_-1) to drain: their
    // deliveries land no later than budget_ - 1 + k.
    return r >= budget_ + k_;
  }

  Round budget() const { return budget_; }
  const std::vector<R>& rumors() const { return rumors_; }
  std::vector<R> take_rumors() { return std::move(rumors_); }

 private:
  Latency k_;
  Round budget_ = 0;
  std::vector<std::vector<NodeId>> out_targets_;  ///< filtered, per node
  std::vector<R> rumors_;
  std::vector<std::size_t> rumor_count_;  ///< incremental cardinalities
  BasicSnapshotCache<R> snapshots_;
};

/// Dense instantiation under the historical name.
using RRBroadcast = BasicRRBroadcast<Bitset>;

/// Fresh rumor sets where each node knows only its own id.
std::vector<Bitset> own_id_rumors(std::size_t n);

/// True iff every rumor set contains every node id.
bool all_sets_full(const std::vector<Bitset>& rumors);

/// True iff for every edge (u, v) of g both endpoints hold each other's
/// rumor (the local broadcast goal).
bool local_broadcast_complete(const WeightedGraph& g,
                              const std::vector<Bitset>& rumors);

}  // namespace latgossip
