#pragma once
// Round-robin flooding baseline: every node cycles deterministically
// through its neighbors, initiating one exchange per round. This is the
// natural deterministic comparator for push–pull; on a star it exhibits
// the Ω(nD) behavior the paper's footnote 2 warns about for push-only
// protocols, while with bidirectional exchanges it is a strong simple
// baseline.

#include <optional>
#include <vector>

#include "core/push_pull.h"
#include "sim/engine.h"
#include "util/bitset.h"
#include "util/snapshot.h"

namespace latgossip {

class RoundRobinFlooding {
 public:
  /// Copy-on-write snapshot handle — see PushPullGossip::Payload.
  using Payload = SnapshotRef;

  RoundRobinFlooding(const NetworkView& view, GossipGoal goal, NodeId source,
                     std::vector<Bitset> initial_rumors);

  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r);
  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round r);
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  const std::vector<Bitset>& rumors() const { return rumors_; }

 private:
  bool node_satisfied(NodeId u) const;
  void refresh_satisfied(NodeId u);

  NetworkView view_;
  GossipGoal goal_;
  NodeId source_;
  std::vector<Bitset> rumors_;
  std::vector<std::size_t> rumor_count_;  ///< incremental popcounts
  SnapshotCache snapshots_;
  std::vector<std::size_t> next_neighbor_;
  std::vector<bool> satisfied_;
  std::size_t satisfied_count_ = 0;
};

}  // namespace latgossip
