#pragma once
// Round-robin flooding baseline: every node cycles deterministically
// through its neighbors, initiating one exchange per round. This is the
// natural deterministic comparator for push–pull; on a star it exhibits
// the Ω(nD) behavior the paper's footnote 2 warns about for push-only
// protocols, while with bidirectional exchanges it is a strong simple
// baseline.
//
// Templated over the rumor-set representation (util/rumor_set.h);
// RoundRobinFlooding aliases the dense Bitset instantiation.

#include <optional>
#include <stdexcept>
#include <vector>

#include "core/push_pull.h"
#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {

template <RumorSetRep R>
class BasicRoundRobinFlooding {
 public:
  /// Copy-on-write snapshot handle — see BasicPushPullGossip::Payload.
  using Payload = BasicSnapshotRef<R>;
  using RumorSet = R;

  BasicRoundRobinFlooding(const NetworkView& view, GossipGoal goal,
                          NodeId source, std::vector<R> initial_rumors)
      : view_(view),
        goal_(goal),
        source_(source),
        rumors_(std::move(initial_rumors)),
        rumor_count_(view.num_nodes(), 0),
        snapshots_(view.num_nodes(), view.num_nodes()),
        next_neighbor_(view.num_nodes(), 0),
        satisfied_(view.num_nodes(), false),
        last_gain_(view.num_nodes(), 0) {
    if (rumors_.size() != view.num_nodes())
      throw std::invalid_argument("flooding: rumor vector size mismatch");
    if (goal == GossipGoal::kSingleSource && source >= view.num_nodes())
      throw std::invalid_argument("flooding: bad source");
    for (NodeId u = 0; u < view.num_nodes(); ++u) {
      if (rumors_[u].size() != view.num_nodes())
        throw std::invalid_argument("flooding: rumor bitset size mismatch");
      rumor_count_[u] = rumors_[u].count();
      refresh_satisfied(u);
    }
  }

  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<NodeId> select_contact(NodeId u, Round /*r*/) {
    const auto neigh = view_.neighbors(u);
    if (neigh.empty()) return std::nullopt;
    const NodeId target = neigh[next_neighbor_[u] % neigh.size()].to;
    ++next_neighbor_[u];
    return target;
  }

  Payload capture_payload(NodeId u, Round /*r*/) {
    return snapshots_.shared(u, rumors_[u], rumor_count_[u]);
  }

  /// Naive deep-copy capture for the reference oracle (sim/oracle.h).
  Payload capture_payload_copy(NodeId u, Round /*r*/) {
    return snapshots_.fresh(rumors_[u], rumor_count_[u]);
  }

  void deliver(NodeId u, NodeId /*peer*/, Payload payload, EdgeId /*e*/,
               Round /*start*/, Round now) {
    const typename R::OrDelta delta =
        rumors_[u].or_assign_changed(payload.bits());
    if (!delta.changed) return;
    rumor_count_[u] += delta.added;
    snapshots_.invalidate(u);
    last_gain_[u] = now;
    if (!satisfied_[u]) refresh_satisfied(u);
  }

  /// Churn rejoin-with-reset — see BasicPushPullGossip::reset_node; a
  /// rejoining flooder additionally restarts its round-robin cursor,
  /// like a freshly constructed node.
  void reset_node(NodeId u, Round r) {
    const std::size_t n = rumors_.size();
    rumors_[u].reinit(n);
    rumors_[u].set(u);
    rumor_count_[u] = 1;
    snapshots_.invalidate(u);
    next_neighbor_[u] = 0;
    const bool now_sat = node_satisfied(u);
    if (satisfied_[u] && !now_sat) {
      satisfied_[u] = false;
      --satisfied_count_;
    } else if (!satisfied_[u] && now_sat) {
      satisfied_[u] = true;
      ++satisfied_count_;
    }
    last_gain_[u] = r;
  }

  /// Freshness hook (sim/freshness.h): round of u's last rumor gain.
  Round last_gain_round(NodeId u) const { return last_gain_[u]; }

  bool done(Round /*r*/) const {
    return satisfied_count_ == satisfied_.size();
  }

  const std::vector<R>& rumors() const { return rumors_; }

 private:
  bool node_satisfied(NodeId u) const {
    switch (goal_) {
      case GossipGoal::kSingleSource:
        return rumors_[u].test(source_);
      case GossipGoal::kAllToAll:
        return rumor_count_[u] == view_.num_nodes();
      case GossipGoal::kLocalBroadcast:
        for (const HalfEdge& h : view_.neighbors(u))
          if (!rumors_[u].test(h.to)) return false;
        return true;
    }
    return false;
  }

  void refresh_satisfied(NodeId u) {
    if (node_satisfied(u)) {
      satisfied_[u] = true;
      ++satisfied_count_;
    }
  }

  NetworkView view_;
  GossipGoal goal_;
  NodeId source_;
  std::vector<R> rumors_;
  std::vector<std::size_t> rumor_count_;  ///< incremental cardinalities
  BasicSnapshotCache<R> snapshots_;
  std::vector<std::size_t> next_neighbor_;
  std::vector<bool> satisfied_;
  std::size_t satisfied_count_ = 0;
  std::vector<Round> last_gain_;  ///< freshness raw input
};

/// Dense instantiation under the historical name.
using RoundRobinFlooding = BasicRoundRobinFlooding<Bitset>;

}  // namespace latgossip
