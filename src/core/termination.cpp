#include "core/termination.h"

#include <stdexcept>

namespace latgossip {

CheckOutcome run_termination_check(const WeightedGraph& g,
                                   const std::vector<Bitset>& rumors,
                                   const HeardSetsFn& broadcast) {
  const std::size_t n = g.num_nodes();
  if (rumors.size() != n)
    throw std::invalid_argument("termination check: rumor size mismatch");

  // Freeze fingerprints and flags (Algorithm 1 lines 1-3).
  std::vector<std::uint64_t> fingerprint(n);
  std::vector<bool> flag(n, false);
  for (NodeId v = 0; v < n; ++v) {
    fingerprint[v] = rumors[v].hash();
    for (const HalfEdge& h : g.neighbors(v))
      if (!rumors[v].test(h.to)) {
        flag[v] = true;
        break;
      }
  }

  CheckOutcome out;

  // Pass 1: broadcast and gather; a node fails if any reachable node has
  // a different rumor set or a raised flag (lines 4-6), or if the set of
  // nodes the broadcast collected from differs from its own rumor set.
  // The self-consistency comparison is what makes passing safe: a node v
  // with bad[v] == false heard exactly the nodes in its rumor set R, all
  // with fingerprint(R) and no flag, so N(u) is contained in R for every
  // u in R. A nonempty neighbor-closed set in a connected graph is the
  // whole vertex set, hence R = V and v's exchange really is complete.
  auto [heard1, sim1] = broadcast();
  out.sim.accumulate(sim1);
  std::vector<bool> bad(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (heard1[v].size() != n)
      throw std::invalid_argument("termination check: heard-set mismatch");
    if (!(heard1[v] == rumors[v])) bad[v] = true;
    for (std::size_t u = heard1[v].find_first(); u < n && !bad[v];
         u = heard1[v].find_next(u + 1))
      if (fingerprint[u] != fingerprint[v] || flag[u]) bad[v] = true;
  }

  // Pass 2: propagate the "failed" verdict (lines 7-9).
  auto [heard2, sim2] = broadcast();
  out.sim.accumulate(sim2);
  std::vector<bool> failed(n, false);
  for (NodeId v = 0; v < n; ++v) {
    failed[v] = bad[v];
    for (std::size_t u = heard2[v].find_first(); u < n && !failed[v];
         u = heard2[v].find_next(u + 1))
      if (bad[u]) failed[v] = true;
  }

  out.failed = false;
  out.unanimous = true;
  for (NodeId v = 0; v < n; ++v) {
    if (failed[v]) out.failed = true;
    if (failed[v] != failed[0]) out.unanimous = false;
  }
  return out;
}

}  // namespace latgossip
