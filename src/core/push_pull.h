#pragma once
// Classical push–pull random phone call gossip (Karp et al.) in the
// latency model. Theorem 12: push–pull completes broadcast w.h.p. in
// O((ℓ*/φ*) · log n) rounds, where φ* is the weighted conductance and
// ℓ* the critical latency. Push–pull never reads latencies, so it works
// in the unknown-latency model.
//
// Two variants:
//  * PushPullBroadcast — single-source rumor, boolean payloads (fast;
//    used by the large-scale Theorem 12 experiments).
//  * PushPullGossip — full rumor sets with a configurable completion
//    goal (single-source / all-to-all / local broadcast), used by the
//    lower-bound experiments and the unified algorithm.

#include <optional>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace latgossip {

/// What "done" means for a dissemination run.
enum class GossipGoal {
  kSingleSource,   ///< every node holds the source's rumor
  kAllToAll,       ///< every node holds every rumor
  kLocalBroadcast, ///< every node holds all of its neighbors' rumors
};

class PushPullBroadcast {
 public:
  using Payload = bool;

  PushPullBroadcast(const NetworkView& view, NodeId source, Rng rng);

  /// Single-rumor push-pull is the paper's "small messages" protocol
  /// (Conclusion): one bit of payload per direction.
  static std::size_t payload_bits(const Payload&) { return 1; }

  /// Uniform neighbor pick, returned as a Contact so the engine resolves
  /// the edge straight from the adjacency slot (no hash lookup).
  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_.test(u); }
  /// Round at which u became informed (-1 if never).
  Round inform_round(NodeId u) const { return inform_round_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  Bitset informed_;
  std::vector<Round> inform_round_;
};

/// Latency-biased push-pull: a known-latency variant in which a node
/// picks neighbor v with probability proportional to 1/latency(u,v)^ρ
/// (the spatial-gossip idea of Kempe, Kleinberg and Demers, cited by the
/// paper, transplanted to latencies). ρ = 0 recovers uniform push-pull;
/// larger ρ avoids slow edges — a concrete answer to the paper's
/// question whether "a more careful choice of neighbors" helps, at the
/// price of needing latency knowledge.
class BiasedPushPullBroadcast {
 public:
  using Payload = bool;

  BiasedPushPullBroadcast(const NetworkView& view, NodeId source, double rho,
                          Rng rng);

  static std::size_t payload_bits(const Payload&) { return 1; }

  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  double rho_;
  /// Per node: cumulative selection weights over its adjacency list.
  std::vector<std::vector<double>> cumulative_;
  std::vector<bool> informed_;
  std::size_t informed_count_ = 0;
};

class PushPullGossip {
 public:
  using Payload = Bitset;

  /// `initial_rumors[u]` is u's starting rumor set; for the usual case
  /// use own_id_rumors(). `source` is only meaningful for
  /// GossipGoal::kSingleSource.
  PushPullGossip(const NetworkView& view, GossipGoal goal, NodeId source,
                 std::vector<Bitset> initial_rumors, Rng rng);

  static std::vector<Bitset> own_id_rumors(std::size_t n);

  /// Rumor sets cost ~32 bits per carried rumor id.
  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  const std::vector<Bitset>& rumors() const { return rumors_; }
  std::vector<Bitset> take_rumors() { return std::move(rumors_); }

 private:
  bool node_satisfied(NodeId u) const;
  void refresh_satisfied(NodeId u);

  NetworkView view_;
  GossipGoal goal_;
  NodeId source_;
  Rng rng_;
  std::vector<Bitset> rumors_;
  std::vector<bool> satisfied_;
  std::size_t satisfied_count_ = 0;
};

}  // namespace latgossip
