#pragma once
// Classical push–pull random phone call gossip (Karp et al.) in the
// latency model. Theorem 12: push–pull completes broadcast w.h.p. in
// O((ℓ*/φ*) · log n) rounds, where φ* is the weighted conductance and
// ℓ* the critical latency. Push–pull never reads latencies, so it works
// in the unknown-latency model.
//
// Two variants:
//  * PushPullBroadcast — single-source rumor, boolean payloads (fast;
//    used by the large-scale Theorem 12 experiments).
//  * BasicPushPullGossip<R> — full rumor sets with a configurable
//    completion goal (single-source / all-to-all / local broadcast),
//    used by the lower-bound experiments and the unified algorithm.
//    Templated over the rumor-set representation (util/rumor_set.h);
//    PushPullGossip aliases the dense Bitset instantiation, so the
//    historical fast path compiles to exactly the same code.

#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/rumor_set.h"
#include "util/snapshot.h"

namespace latgossip {

/// What "done" means for a dissemination run.
enum class GossipGoal {
  kSingleSource,   ///< every node holds the source's rumor
  kAllToAll,       ///< every node holds every rumor
  kLocalBroadcast, ///< every node holds all of its neighbors' rumors
};

class PushPullBroadcast {
 public:
  using Payload = bool;

  PushPullBroadcast(const NetworkView& view, NodeId source, Rng rng);

  /// Re-arm for a new trial, as if freshly constructed with these
  /// arguments. Allocation-free when the node count is unchanged —
  /// trial sweeps keep one instance per worker in a TrialWorkspace slot
  /// and reset it per trial (DESIGN.md §5h).
  void reset(const NetworkView& view, NodeId source, Rng rng);

  /// Single-rumor push-pull is the paper's "small messages" protocol
  /// (Conclusion): one bit of payload per direction.
  static std::size_t payload_bits(const Payload&) { return 1; }

  /// Uniform neighbor pick, returned as a Contact so the engine resolves
  /// the edge straight from the adjacency slot (no hash lookup).
  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_.test(u); }
  /// Round at which u became informed (-1 if never).
  Round inform_round(NodeId u) const { return inform_round_[u]; }

  /// Churn rejoin-with-reset (sim/engine.h reset_protocol_node): a
  /// returning node forgets the rumor unconditionally — the protocol
  /// stores no source id, so scenarios must spare the source
  /// (DynamicSpec::churn_spare) to keep the broadcast satisfiable.
  void reset_node(NodeId u, Round /*r*/) {
    informed_.reset(u);
    inform_round_[u] = -1;
  }

  /// Freshness hook (sim/freshness.h): the round of u's last
  /// information gain, -1 while uninformed.
  Round last_gain_round(NodeId u) const { return inform_round_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  Bitset informed_;
  std::vector<Round> inform_round_;
};

/// Latency-biased push-pull: a known-latency variant in which a node
/// picks neighbor v with probability proportional to 1/latency(u,v)^ρ
/// (the spatial-gossip idea of Kempe, Kleinberg and Demers, cited by the
/// paper, transplanted to latencies). ρ = 0 recovers uniform push-pull;
/// larger ρ avoids slow edges — a concrete answer to the paper's
/// question whether "a more careful choice of neighbors" helps, at the
/// price of needing latency knowledge.
class BiasedPushPullBroadcast {
 public:
  using Payload = bool;

  BiasedPushPullBroadcast(const NetworkView& view, NodeId source, double rho,
                          Rng rng);

  /// Re-arm for a new trial. The cumulative selection-weight tables are
  /// rebuilt only when the graph or ρ changed; same-workload sweeps
  /// reuse them (and every other allocation) untouched.
  void reset(const NetworkView& view, NodeId source, double rho, Rng rng);

  static std::size_t payload_bits(const Payload&) { return 1; }

  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  double rho_;
  /// Per node: cumulative selection weights over its adjacency list.
  std::vector<std::vector<double>> cumulative_;
  std::vector<bool> informed_;
  std::size_t informed_count_ = 0;
};

template <RumorSetRep R>
class BasicPushPullGossip {
 public:
  /// Copy-on-write snapshot handle (util/snapshot.h): capture re-copies
  /// a node's rumor set only after it changed, and scheduling/delivery
  /// move refcounted pointers instead of heap-copying n-bit sets.
  using Payload = BasicSnapshotRef<R>;
  using RumorSet = R;

  /// `initial_rumors[u]` is u's starting rumor set; for the usual case
  /// use own_id_rumors(). `source` is only meaningful for
  /// GossipGoal::kSingleSource.
  BasicPushPullGossip(const NetworkView& view, GossipGoal goal, NodeId source,
                      std::vector<R> initial_rumors, Rng rng)
      : view_(view),
        goal_(goal),
        source_(source),
        rng_(rng),
        rumors_(std::move(initial_rumors)),
        rumor_count_(view.num_nodes(), 0),
        snapshots_(view.num_nodes(), view.num_nodes()),
        satisfied_(view.num_nodes(), false),
        last_gain_(view.num_nodes(), 0) {
    if (rumors_.size() != view.num_nodes())
      throw std::invalid_argument("push-pull: rumor vector size mismatch");
    if (goal == GossipGoal::kSingleSource && source >= view.num_nodes())
      throw std::invalid_argument("push-pull: bad source");
    for (NodeId u = 0; u < view.num_nodes(); ++u) {
      if (rumors_[u].size() != view.num_nodes())
        throw std::invalid_argument("push-pull: rumor bitset size mismatch");
      rumor_count_[u] = rumors_[u].count();
      refresh_satisfied(u);
    }
  }

  /// Re-arm for a new trial with own_id_rumors(n) starting sets, rebuilt
  /// in place (no fresh rumor-set vector, no new snapshot arena; see
  /// DESIGN.md §5h). Allocation-free when the node count is unchanged.
  /// Precondition: no payload ref from the previous run is still alive
  /// outside this protocol — true at trial boundaries because the
  /// engine releases pending deliveries before run_gossip returns.
  void reset_own_id(const NetworkView& view, GossipGoal goal, NodeId source,
                    Rng rng) {
    const std::size_t n = view.num_nodes();
    if (goal == GossipGoal::kSingleSource && source >= n)
      throw std::invalid_argument("push-pull: bad source");
    view_ = view;
    goal_ = goal;
    source_ = source;
    rng_ = rng;
    // Release the cached snapshot refs first so the arena reset below
    // sees every block back in its pool (its precondition).
    snapshots_.reset(n, n);
    rumors_.resize(n);
    rumor_count_.assign(n, 1);
    for (NodeId u = 0; u < n; ++u) {
      rumors_[u].reinit(n);
      rumors_[u].set(u);
    }
    satisfied_.assign(n, false);
    satisfied_count_ = 0;
    for (NodeId u = 0; u < n; ++u) refresh_satisfied(u);
    last_gain_.assign(n, 0);
  }

  static std::vector<R> own_id_rumors(std::size_t n) {
    return own_id_rumor_sets<R>(n);
  }

  /// Rumor sets cost ~32 bits per carried rumor id. The count is cached
  /// on the snapshot — no per-payload re-scan.
  static std::size_t payload_bits(const Payload& p) { return 32 * p.count(); }

  std::optional<Contact> select_contact(NodeId u, Round /*r*/) {
    const auto neigh = view_.neighbors(u);
    if (neigh.empty()) return std::nullopt;
    const HalfEdge& h = neigh[rng_.uniform(neigh.size())];
    return Contact{h.to, h.edge};
  }

  Payload capture_payload(NodeId u, Round /*r*/) {
    return snapshots_.shared(u, rumors_[u], rumor_count_[u]);
  }

  /// Naive always-deep-copy capture; the reference oracle uses this so
  /// differential sweeps prove snapshot sharing ≡ copy-at-capture.
  Payload capture_payload_copy(NodeId u, Round /*r*/) {
    return snapshots_.fresh(rumors_[u], rumor_count_[u]);
  }

  void deliver(NodeId u, NodeId /*peer*/, Payload payload, EdgeId /*e*/,
               Round /*start*/, Round now) {
    // A receiver that already holds every rumor cannot gain from any
    // payload; returning before the union avoids touching the payload's
    // (usually cold) snapshot words in the late all-to-all rounds, where
    // most deliveries are no-ops.
    if (rumor_count_[u] == rumors_.size()) return;
    const typename R::OrDelta delta =
        rumors_[u].or_assign_changed(payload.bits());
    if (!delta.changed) return;
    rumor_count_[u] += delta.added;
    snapshots_.invalidate(u);
    last_gain_[u] = now;
    if (!satisfied_[u]) refresh_satisfied(u);
  }

  /// Churn rejoin-with-reset: u restarts with only its own rumor, as a
  /// freshly constructed node would. Cached snapshots are invalidated
  /// (in-flight payload refs keep their blocks alive via the arena
  /// refcounts) and the satisfied bookkeeping is re-derived both ways —
  /// a previously satisfied node can become unsatisfied here, which the
  /// grow-only refresh_satisfied() never handles.
  void reset_node(NodeId u, Round r) {
    const std::size_t n = rumors_.size();
    rumors_[u].reinit(n);
    rumors_[u].set(u);
    rumor_count_[u] = 1;
    snapshots_.invalidate(u);
    const bool now_sat = node_satisfied(u);
    if (satisfied_[u] && !now_sat) {
      satisfied_[u] = false;
      --satisfied_count_;
    } else if (!satisfied_[u] && now_sat) {
      satisfied_[u] = true;
      ++satisfied_count_;
    }
    last_gain_[u] = r;
  }

  /// Freshness hook (sim/freshness.h): round of u's last rumor gain.
  Round last_gain_round(NodeId u) const { return last_gain_[u]; }

  /// Warm u's rumor storage + count ahead of deliver(u, ...) — called by
  /// the engine one delivery ahead (sim/engine.h).
  void prefetch_deliver(NodeId u) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&rumor_count_[u], 0, 1);
#endif
    prefetch_rumor_set(rumors_[u]);
  }

  bool done(Round /*r*/) const {
    return satisfied_count_ == satisfied_.size();
  }

  const std::vector<R>& rumors() const { return rumors_; }
  std::vector<R> take_rumors() { return std::move(rumors_); }

  /// Arena statistics (allocated/pooled blocks, copies performed) —
  /// instrumentation for tests and perf probes.
  const BasicSnapshotArena<R>& snapshot_arena() const {
    return snapshots_.arena();
  }

 private:
  bool node_satisfied(NodeId u) const {
    switch (goal_) {
      case GossipGoal::kSingleSource:
        return rumors_[u].test(source_);
      case GossipGoal::kAllToAll:
        return rumor_count_[u] == view_.num_nodes();
      case GossipGoal::kLocalBroadcast:
        for (const HalfEdge& h : view_.neighbors(u))
          if (!rumors_[u].test(h.to)) return false;
        return true;
    }
    return false;
  }

  void refresh_satisfied(NodeId u) {
    if (node_satisfied(u)) {
      satisfied_[u] = true;
      ++satisfied_count_;
    }
  }

  NetworkView view_;
  GossipGoal goal_;
  NodeId source_;
  Rng rng_;
  std::vector<R> rumors_;
  /// rumors_[u].count(), maintained incrementally from deliver()'s
  /// OrDelta — the all-to-all done() check never re-popcounts.
  std::vector<std::size_t> rumor_count_;
  BasicSnapshotCache<R> snapshots_;
  std::vector<bool> satisfied_;
  std::size_t satisfied_count_ = 0;
  /// Round of each node's last rumor gain (0 for the initial set) —
  /// the freshness metric's raw input.
  std::vector<Round> last_gain_;
};

/// The dense fast path under its historical name: every pre-existing
/// call site (unified, EID, CLI, benches, tests) compiles against this
/// alias unchanged, and the Bitset instantiation inlines into
/// run_gossip_impl exactly as the untemplated class did.
using PushPullGossip = BasicPushPullGossip<Bitset>;

// ---------------------------------------------------------------------------
// Hot-path definitions. select/capture/deliver run tens of thousands of
// times per simulated second; defining them here (instead of the .cpp)
// lets them inline into run_gossip_impl's event loop — without LTO a
// cross-TU call would block that.

inline std::optional<Contact> PushPullBroadcast::select_contact(NodeId u,
                                                               Round) {
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  const HalfEdge& h = neigh[rng_.uniform(neigh.size())];
  return Contact{h.to, h.edge};
}

inline bool PushPullBroadcast::capture_payload(NodeId u, Round) const {
  return informed_.test(u);
}

inline void PushPullBroadcast::deliver(NodeId u, NodeId, Payload payload,
                                       EdgeId, Round, Round now) {
  if (payload && !informed_.test(u)) {
    informed_.set(u);
    inform_round_[u] = now;
  }
}

inline bool PushPullBroadcast::done(Round) const { return informed_.all_set(); }

}  // namespace latgossip
