#pragma once
// Baswana–Sen (2k-1)-spanner with edge orientation (Lemma 13, Theorem 14
// and Appendix D of the paper).
//
// The randomized clustering algorithm runs k iterations. In iterations
// 1..k-1 every surviving cluster is re-sampled with probability
// n̂^{-1/k}; unsampled vertices either join the cheapest adjacent sampled
// cluster (adding that edge plus one cheaper edge per cheaper adjacent
// cluster — Rule 2) or, if no sampled cluster is adjacent, add one least
// edge per adjacent cluster and retire (Rule 1). Iteration k adds the
// least edge to every adjacent surviving cluster. Every added edge is
// oriented out of the vertex that added it, which bounds the out-degree
// by O(n̂^{1/k} log n) w.h.p. even when only the estimate n̂ (n <= n̂ <=
// n^c) is known. Ties between equal latencies are broken by endpoint
// ids, making all weights distinct as the algorithm requires.
//
// The paper runs this in the gossip model by first discovering the
// k-hop neighborhood via ℓ-DTG (Theorem 14); the clustering itself is
// then a deterministic local computation given shared randomness, which
// is what this function performs.

#include <cstddef>

#include "graph/digraph.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

struct SpannerOptions {
  std::size_t k = 0;      ///< stretch parameter: (2k-1)-spanner; 0 = log2(n_hat)
  std::size_t n_hat = 0;  ///< size estimate; 0 = exact n
};

/// Build the oriented Baswana–Sen spanner of `g`.
DirectedGraph build_baswana_sen_spanner(const WeightedGraph& g,
                                        const SpannerOptions& options,
                                        Rng& rng);

/// Spanner of G_ell (only edges with latency <= ell participate). Used
/// by EID with the current diameter estimate.
DirectedGraph build_baswana_sen_spanner_capped(const WeightedGraph& g,
                                               Latency ell,
                                               const SpannerOptions& options,
                                               Rng& rng);

/// Ablation baseline: the classical greedy (2k-1)-spanner (Althöfer et
/// al.) — scan edges by increasing (tie-broken) weight and keep an edge
/// iff the spanner's current distance between its endpoints exceeds
/// (2k-1) times its weight. Produces the sparsest-known guaranteed
/// (2k-1)-spanner but is inherently sequential/centralized — the paper
/// needs Baswana-Sen because it localizes to k-hop neighborhoods.
/// Arcs are oriented from the lower to the higher endpoint id.
DirectedGraph build_greedy_spanner(const WeightedGraph& g, std::size_t k);

}  // namespace latgossip
