#include "core/unified.h"

#include "core/eid.h"
#include "core/latency_discovery.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "obs/metrics.h"
#include "sim/dispatch.h"

namespace latgossip {

UnifiedOutcome run_unified(const WeightedGraph& g,
                           const UnifiedOptions& options, Rng& rng) {
  UnifiedOutcome out;
  const std::size_t n = g.num_nodes();
  const std::size_t n_hat = options.n_hat == 0 ? n : options.n_hat;

  // Branch 1: push-pull all-to-all (works in either latency model).
  {
    PhaseScope phase(options.obs, "unified/push_pull");
    NetworkView view(g, /*latencies_known=*/false);
    PushPullGossip pp(view, GossipGoal::kAllToAll, 0,
                      PushPullGossip::own_id_rumors(n), rng.fork(1));
    SimOptions opts;
    opts.max_rounds = options.push_pull_cap;
    if (options.obs) opts.recorder = options.obs->recorder;
    const SimResult sim = dispatch_gossip(g, pp, opts);
    phase.add(sim);
    out.push_pull_rounds = sim.rounds;
    out.push_pull_completed = sim.completed;
  }

  // Branch 2: the spanner route. The outer scope is a grouping bracket
  // in the trace; the known-latency branch attributes rounds through
  // EID's own nested phases, while the unknown-latency branch (no
  // internal tagging) is absorbed whole.
  {
    PhaseScope phase(options.obs, "unified/spanner");
    if (options.latencies_known) {
      Rng branch = rng.fork(2);
      const GeneralEidOutcome eid =
          run_general_eid(g, n_hat, branch, 1, options.obs);
      out.spanner_rounds = eid.sim.rounds;
      out.spanner_completed = eid.success && all_sets_full(eid.rumors);
    } else {
      Rng branch = rng.fork(3);
      const UnknownLatencyEidOutcome eid =
          run_unknown_latency_eid(g, n_hat, branch);
      phase.add(eid.sim);
      out.spanner_rounds = eid.sim.rounds;
      out.spanner_completed = eid.success && all_sets_full(eid.rumors);
    }
  }

  out.completed = out.push_pull_completed || out.spanner_completed;
  if (out.push_pull_completed &&
      (!out.spanner_completed || out.push_pull_rounds <= out.spanner_rounds)) {
    out.winner = UnifiedWinner::kPushPull;
    out.unified_rounds = out.push_pull_rounds;
  } else {
    out.winner = UnifiedWinner::kSpanner;
    out.unified_rounds = out.spanner_rounds;
  }
  return out;
}

}  // namespace latgossip
