#include "core/spanner.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace latgossip {
namespace {

/// Strict-weak-order weight key making all edge weights distinct, as the
/// algorithm requires ("we use the unique node IDs to break ties").
struct WeightKey {
  Latency latency;
  NodeId lo;
  NodeId hi;

  friend bool operator<(const WeightKey& a, const WeightKey& b) {
    if (a.latency != b.latency) return a.latency < b.latency;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  }
};

WeightKey key_of(const WeightedGraph& g, EdgeId e) {
  const Edge& ed = g.edge(e);
  return WeightKey{ed.latency, std::min(ed.u, ed.v), std::max(ed.u, ed.v)};
}

struct ClusterEdge {
  WeightKey key;
  EdgeId edge;
  NodeId other;
};

}  // namespace

DirectedGraph build_baswana_sen_spanner_capped(const WeightedGraph& g,
                                               Latency ell,
                                               const SpannerOptions& options,
                                               Rng& rng) {
  const std::size_t n = g.num_nodes();
  DirectedGraph spanner(n);
  if (n == 0) return spanner;

  std::size_t n_hat = options.n_hat == 0 ? n : options.n_hat;
  if (n_hat < n)
    throw std::invalid_argument("spanner: n_hat must be >= n");
  std::size_t k = options.k;
  if (k == 0)
    k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(
                   n_hat, 2))))));

  const double sample_p =
      std::pow(static_cast<double>(n_hat), -1.0 / static_cast<double>(k));

  // center[v]: id of v's cluster center, or kInvalidNode once retired.
  std::vector<NodeId> center(n);
  for (NodeId v = 0; v < n; ++v) center[v] = v;
  std::vector<bool> alive(g.num_edges(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    alive[e] = g.latency(e) <= ell;

  // Per-vertex view of alive incident edges grouped by adjacent cluster,
  // each cluster represented by its least (tie-broken) edge.
  auto adjacent_clusters = [&](NodeId v) {
    std::unordered_map<NodeId, ClusterEdge> by_cluster;
    for (const HalfEdge& h : g.neighbors(v)) {
      if (!alive[h.edge]) continue;
      const NodeId c = center[h.to];
      if (c == kInvalidNode)
        throw std::logic_error("spanner invariant: alive edge to retired node");
      const ClusterEdge ce{key_of(g, h.edge), h.edge, h.to};
      auto [it, inserted] = by_cluster.emplace(c, ce);
      if (!inserted && ce.key < it->second.key) it->second = ce;
    }
    return by_cluster;
  };

  for (std::size_t iter = 1; iter < k; ++iter) {
    // Re-sample surviving cluster centers.
    std::unordered_set<NodeId> centers;
    for (NodeId v = 0; v < n; ++v)
      if (center[v] != kInvalidNode) centers.insert(center[v]);
    std::unordered_set<NodeId> sampled;
    for (NodeId c : centers)
      if (rng.bernoulli(sample_p)) sampled.insert(c);

    // Decide all vertices against the iteration-start snapshot, then
    // apply (the LOCAL-model algorithm acts simultaneously).
    std::vector<NodeId> new_center = center;
    std::vector<EdgeId> kills;
    std::vector<std::pair<NodeId, ClusterEdge>> additions;
    std::vector<NodeId> kill_all_of;

    for (NodeId v = 0; v < n; ++v) {
      if (center[v] == kInvalidNode) continue;      // retired: no edges
      if (sampled.count(center[v]) != 0) continue;  // stays put
      auto by_cluster = adjacent_clusters(v);
      if (by_cluster.empty()) {
        new_center[v] = kInvalidNode;  // isolated in E': retire quietly
        continue;
      }
      // Cheapest sampled adjacent cluster, if any.
      const ClusterEdge* best_sampled = nullptr;
      for (const auto& [c, ce] : by_cluster) {
        if (sampled.count(c) == 0) continue;
        if (best_sampled == nullptr || ce.key < best_sampled->key)
          best_sampled = &ce;
      }
      if (best_sampled == nullptr) {
        // Rule 1: one least edge per adjacent cluster; retire v.
        for (const auto& [c, ce] : by_cluster) {
          (void)c;
          additions.emplace_back(v, ce);
        }
        kill_all_of.push_back(v);
        new_center[v] = kInvalidNode;
      } else {
        // Rule 2: join the cheapest sampled cluster via e_v; also add the
        // least edge to every strictly cheaper adjacent cluster.
        additions.emplace_back(v, *best_sampled);
        new_center[v] = center[best_sampled->other];
        for (const auto& [c, ce] : by_cluster) {
          const bool is_joined_cluster = (c == center[best_sampled->other]);
          if (is_joined_cluster) {
            // All edges between v and the joined cluster are discarded.
            for (const HalfEdge& h : g.neighbors(v))
              if (alive[h.edge] && center[h.to] == c) kills.push_back(h.edge);
            continue;
          }
          if (ce.key < best_sampled->key) {
            additions.emplace_back(v, ce);
            for (const HalfEdge& h : g.neighbors(v))
              if (alive[h.edge] && center[h.to] == c) kills.push_back(h.edge);
          }
        }
      }
    }

    for (const auto& [v, ce] : additions)
      spanner.add_arc(v, ce.other, g.latency(ce.edge));
    for (EdgeId e : kills) alive[e] = false;
    for (NodeId v : kill_all_of)
      for (const HalfEdge& h : g.neighbors(v)) alive[h.edge] = false;
    center = std::move(new_center);

    // Drop intra-cluster edges under the new clustering.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!alive[e]) continue;
      const Edge& ed = g.edge(e);
      if (center[ed.u] != kInvalidNode && center[ed.u] == center[ed.v])
        alive[e] = false;
    }
  }

  // Phase 2 (iteration k): least edge to every adjacent surviving cluster.
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [c, ce] : adjacent_clusters(v)) {
      (void)c;
      spanner.add_arc(v, ce.other, g.latency(ce.edge));
    }
  }
  return spanner;
}

DirectedGraph build_baswana_sen_spanner(const WeightedGraph& g,
                                        const SpannerOptions& options,
                                        Rng& rng) {
  const Latency cap = std::max<Latency>(g.max_latency(), 1);
  return build_baswana_sen_spanner_capped(g, cap, options, rng);
}

DirectedGraph build_greedy_spanner(const WeightedGraph& g, std::size_t k) {
  if (k < 1) throw std::invalid_argument("greedy spanner: k must be >= 1");
  const std::size_t n = g.num_nodes();
  const Latency stretch = static_cast<Latency>(2 * k - 1);

  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return key_of(g, a) < key_of(g, b);
  });

  // Spanner adjacency kept incrementally; distances queried by a
  // budget-capped Dijkstra whose dist array is reset lazily via the
  // touched list (O(visited) per query).
  constexpr Latency kFar = static_cast<Latency>(1) << 60;
  std::vector<std::vector<Arc>> adj(n);
  DirectedGraph spanner(n);
  std::vector<Latency> dist(n, kFar);
  std::vector<NodeId> touched;
  using QItem = std::pair<Latency, NodeId>;

  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    const Latency budget = stretch * ed.latency;
    touched.clear();
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    dist[ed.u] = 0;
    touched.push_back(ed.u);
    pq.emplace(0, ed.u);
    bool within = false;
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      if (v == ed.v) {
        within = true;
        break;
      }
      for (const Arc& a : adj[v]) {
        const Latency nd = d + a.latency;
        if (nd > budget || nd >= dist[a.to]) continue;
        if (dist[a.to] == kFar) touched.push_back(a.to);
        dist[a.to] = nd;
        pq.emplace(nd, a.to);
      }
    }
    for (NodeId v : touched) dist[v] = kFar;
    if (!within) {
      adj[ed.u].push_back(Arc{ed.v, ed.latency});
      adj[ed.v].push_back(Arc{ed.u, ed.latency});
      spanner.add_arc(std::min(ed.u, ed.v), std::max(ed.u, ed.v),
                      ed.latency);
    }
  }
  return spanner;
}

}  // namespace latgossip
