#pragma once
// Unified dissemination (Theorem 20): run push–pull and the spanner
// branch "in parallel" and finish with whichever completes first —
// O(min((D+Δ) log³ n, (ℓ*/φ*) log n)) with unknown latencies and
// O(min(D log³ n, (ℓ*/φ*) log n)) with known latencies.
//
// The simulation runs both branches and reports the minimum: running two
// protocols side by side costs each node at most two initiations per
// round, a constant-factor model change the paper's statement absorbs.

#include "graph/graph.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace latgossip {

struct ObsContext;  // obs/metrics.h

enum class UnifiedWinner { kPushPull, kSpanner };

struct UnifiedOutcome {
  Round push_pull_rounds = 0;
  bool push_pull_completed = false;
  Round spanner_rounds = 0;
  bool spanner_completed = false;
  Round unified_rounds = 0;  ///< min over completed branches
  UnifiedWinner winner = UnifiedWinner::kPushPull;
  bool completed = false;
};

struct UnifiedOptions {
  bool latencies_known = false;
  std::size_t n_hat = 0;          ///< 0 = exact n
  Round push_pull_cap = 2'000'000; ///< give-up bound for the push-pull run
  /// Optional observability sinks (obs/metrics.h): the push-pull and
  /// spanner branches are tagged as phases "unified/push_pull" and
  /// "unified/spanner", with EID's internal phases nested under them.
  ObsContext* obs = nullptr;
};

/// All-to-all information dissemination via both branches.
UnifiedOutcome run_unified(const WeightedGraph& g,
                           const UnifiedOptions& options, Rng& rng);

}  // namespace latgossip
