#include "core/dtg.h"

#include <algorithm>
#include <stdexcept>

namespace latgossip {

DtgLocalBroadcast::DtgLocalBroadcast(const NetworkView& view, Latency ell,
                                     std::vector<Bitset> initial_rumors)
    : view_(view),
      ell_(ell),
      data_snaps_(view.num_nodes(), view.num_nodes()),
      session_snaps_(view.num_nodes(), view.num_nodes()) {
  if (!view.latencies_known())
    throw std::invalid_argument(
        "DTG requires the known-latency model (a node must know which "
        "incident edges belong to G_ell)");
  if (ell < 1) throw std::invalid_argument("DTG: ell must be >= 1");
  const std::size_t n = view.num_nodes();
  if (initial_rumors.size() != n)
    throw std::invalid_argument("DTG: rumor vector size mismatch");
  master_ = std::move(initial_rumors);
  master_count_.assign(n, 0);
  ell_neighbors_.resize(n);
  state_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (master_[u].size() != n)
      throw std::invalid_argument("DTG: rumor bitset size mismatch");
    master_[u].set(u);
    master_count_[u] = master_[u].count();
    for (const HalfEdge& h : view.neighbors(u))
      if (view.latency(h.edge) <= ell) ell_neighbors_[u].push_back(h.to);
    std::sort(ell_neighbors_[u].begin(), ell_neighbors_[u].end());
    NodeState st;
    st.linked_set = Bitset(n);
    st.session = Bitset(n);
    st.session.set(u);  // R = {v}
    st.session_count = 1;
    st.work_data = master_[u];
    st.work_data_count = master_count_[u];
    st.work_session = Bitset(n);
    st.work_session.set(u);
    st.work_session_count = 1;
    state_.push_back(std::move(st));
  }
  active_count_ = n;
}

std::vector<Bitset> DtgLocalBroadcast::own_id_rumors(std::size_t n) {
  std::vector<Bitset> r(n, Bitset(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

bool DtgLocalBroadcast::covered(NodeId u) const {
  for (NodeId w : ell_neighbors_[u])
    if (!state_[u].session.test(w)) return false;
  return true;
}

void DtgLocalBroadcast::reset_work(NodeId u) {
  NodeState& st = state_[u];
  st.work_data = master_[u];  // R' = {v}: v's (compound) rumor
  st.work_data_count = master_count_[u];
  st.work_session.clear();
  st.work_session.set(u);
  st.work_session_count = 1;
  data_snaps_.invalidate(u);
  session_snaps_.invalidate(u);
}

bool DtgLocalBroadcast::start_iteration(NodeId u) {
  // Link the lowest-id G_ell neighbor not yet heard this invocation;
  // such a neighbor is necessarily unlinked (a direct exchange with a
  // linked neighbor has already delivered its session rumor).
  NodeState& st = state_[u];
  for (NodeId w : ell_neighbors_[u]) {
    if (st.session.test(w)) continue;
    if (st.linked_set.test(w))
      throw std::logic_error("DTG invariant: linked neighbor missing rumor");
    st.linked.push_back(w);
    st.linked_set.set(w);
    st.phase = Phase::kPush1;
    st.step = 0;
    reset_work(u);
    max_iteration_ = std::max(max_iteration_, st.linked.size());
    return true;
  }
  return false;
}

std::optional<NodeId> DtgLocalBroadcast::select_contact(NodeId u, Round r) {
  if (r % ell_ != 0) return std::nullopt;  // superround boundaries only
  NodeState& st = state_[u];
  if (!st.active) return std::nullopt;

  // At an iteration boundary: decide whether to stop or link anew. The
  // boundary is encoded by an exhausted script (step == linked.size()
  // in kPush2), including the initial state (no links yet).
  const bool at_boundary =
      st.linked.empty() ||
      (st.phase == Phase::kPush2 && st.step >= st.linked.size());
  if (at_boundary) {
    if (covered(u) || !start_iteration(u)) {
      st.active = false;
      --active_count_;
      // The capture source switches from the working pair to
      // (master, session); drop any cached working-pair snapshots.
      data_snaps_.invalidate(u);
      session_snaps_.invalidate(u);
      return std::nullopt;
    }
  }

  const std::size_t i = st.linked.size();
  std::size_t partner_index = 0;
  switch (st.phase) {
    case Phase::kPush1:
    case Phase::kPush2:
      partner_index = i - 1 - st.step;  // j = i down to 1
      break;
    case Phase::kPull1:
    case Phase::kPull2:
      partner_index = st.step;  // j = 1 up to i
      break;
  }
  const NodeId partner = st.linked[partner_index];

  // Advance the script position past this exchange.
  if (++st.step >= i) {
    st.step = 0;
    switch (st.phase) {
      case Phase::kPush1:
        st.phase = Phase::kPull1;
        break;
      case Phase::kPull1:
        st.phase = Phase::kPull2;
        reset_work(u);  // R'' = {v}
        break;
      case Phase::kPull2:
        st.phase = Phase::kPush2;
        break;
      case Phase::kPush2:
        st.step = i;  // sentinel: boundary reached
        break;
    }
  }
  return partner;
}

DtgLocalBroadcast::Payload DtgLocalBroadcast::capture_payload(NodeId u,
                                                              Round) {
  // Active nodes transmit their pipelined working pair (the behavior
  // the O(log^2 n) analysis relies on); finished nodes answer with all
  // they know.
  const NodeState& st = state_[u];
  if (st.active)
    return Payload{data_snaps_.shared(u, st.work_data, st.work_data_count),
                   session_snaps_.shared(u, st.work_session,
                                         st.work_session_count)};
  return Payload{data_snaps_.shared(u, master_[u], master_count_[u]),
                 session_snaps_.shared(u, st.session, st.session_count)};
}

DtgLocalBroadcast::Payload DtgLocalBroadcast::capture_payload_copy(NodeId u,
                                                                   Round) {
  const NodeState& st = state_[u];
  if (st.active)
    return Payload{data_snaps_.fresh(st.work_data, st.work_data_count),
                   session_snaps_.fresh(st.work_session,
                                        st.work_session_count)};
  return Payload{data_snaps_.fresh(master_[u], master_count_[u]),
                 session_snaps_.fresh(st.session, st.session_count)};
}

void DtgLocalBroadcast::deliver(NodeId u, NodeId, Payload payload, EdgeId,
                                Round, Round) {
  NodeState& st = state_[u];
  const Bitset::OrDelta dm = master_[u].or_assign_changed(payload.data.bits());
  master_count_[u] += dm.added;
  const Bitset::OrDelta ds =
      st.session.or_assign_changed(payload.session.bits());
  st.session_count += ds.added;
  if (st.active) {
    const Bitset::OrDelta dw =
        st.work_data.or_assign_changed(payload.data.bits());
    st.work_data_count += dw.added;
    const Bitset::OrDelta dws =
        st.work_session.or_assign_changed(payload.session.bits());
    st.work_session_count += dws.added;
    // Active captures read the working pair.
    if (dw.changed) data_snaps_.invalidate(u);
    if (dws.changed) session_snaps_.invalidate(u);
  } else {
    // Finished captures read (master, session).
    if (dm.changed) data_snaps_.invalidate(u);
    if (ds.changed) session_snaps_.invalidate(u);
  }
}

bool DtgLocalBroadcast::done(Round) const { return active_count_ == 0; }

}  // namespace latgossip
