#include "core/eid.h"

#include <cmath>
#include <stdexcept>

#include "core/dtg.h"
#include "core/random_local_broadcast.h"
#include "core/rr_broadcast.h"
#include "core/termination.h"
#include "obs/metrics.h"
#include "sim/dispatch.h"
#include "sim/workspace.h"

namespace latgossip {
namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  std::size_t pow = 1;
  while (pow < x) {
    pow *= 2;
    ++k;
  }
  return std::max<std::size_t>(k, 1);
}

}  // namespace

EidOutcome run_eid(const WeightedGraph& g, const EidOptions& options,
                   std::vector<Bitset> initial_rumors, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (options.diameter_estimate < 1)
    throw std::invalid_argument("EID: diameter estimate must be >= 1");
  if (initial_rumors.size() != n)
    throw std::invalid_argument("EID: rumor vector size mismatch");
  const Latency d = options.diameter_estimate;
  const std::size_t n_hat = options.n_hat == 0 ? n : options.n_hat;
  const std::size_t reps = options.dtg_repetitions == 0
                               ? ceil_log2(n)
                               : options.dtg_repetitions;
  const std::size_t spanner_k =
      options.spanner_k == 0 ? ceil_log2(n_hat) : options.spanner_k;

  NetworkView view(g, /*latencies_known=*/true);
  EidOutcome out;
  out.rumors = std::move(initial_rumors);

  EventRecorder* recorder = options.obs ? options.obs->recorder : nullptr;

  // Phase 1: O(log n) executions of D-local-broadcast (neighborhood
  // discovery) — deterministic DTG by default, the randomized
  // subroutine under the ablation flag.
  {
    PhaseScope phase(options.obs, "eid/local_broadcast");
    for (std::size_t i = 0; i < reps; ++i) {
      SimOptions opts;
      // Both subroutines act only on superround boundaries (every d
      // rounds), so the engine's idle-stop must not fire in between.
      opts.stop_when_idle = false;
      opts.max_rounds = static_cast<Round>(d) * 64 *
                        static_cast<Round>(ceil_log2(n) * ceil_log2(n) + 4);
      opts.recorder = recorder;
      opts.workspace = options.workspace;
      SimResult sim;
      if (options.randomized_local_broadcast) {
        RandomLocalBroadcast rlb(view, d, std::move(out.rumors),
                                 rng.fork(1000 + i));
        sim = dispatch_gossip(g, rlb, opts);
        out.rumors = rlb.take_rumors();
      } else {
        DtgLocalBroadcast dtg(view, d, std::move(out.rumors));
        sim = dispatch_gossip(g, dtg, opts);
        out.rumors = dtg.take_rumors();
      }
      phase.add(sim);
      out.sim.accumulate(sim);
    }
  }

  // Phase 2: local spanner computation on G_D (zero simulated rounds;
  // the scope still marks the boundary in the trace).
  {
    PhaseScope phase(options.obs, "eid/spanner");
    out.spanner = build_baswana_sen_spanner_capped(
        g, d, SpannerOptions{spanner_k, n_hat}, rng);
  }

  // Phase 3: RR Broadcast with parameter (2k-1)*D — the spanner's
  // stretch bound times the distance estimate.
  {
    PhaseScope phase(options.obs, "eid/rr_broadcast");
    const Latency rr_k =
        d * static_cast<Latency>(2 * spanner_k > 1 ? 2 * spanner_k - 1 : 1);
    RRBroadcast rr(view, out.spanner, rr_k, std::move(out.rumors));
    SimOptions rr_opts;
    rr_opts.max_rounds = rr.budget() + rr_k + 2;
    rr_opts.recorder = recorder;
    rr_opts.workspace = options.workspace;
    const SimResult sim = dispatch_gossip(g, rr, rr_opts);
    phase.add(sim);
    out.sim.accumulate(sim);
    out.rumors = rr.take_rumors();
  }

  out.all_to_all = all_sets_full(out.rumors);
  return out;
}

GeneralEidOutcome run_general_eid(const WeightedGraph& g, std::size_t n_hat,
                                  Rng& rng, Latency initial_guess,
                                  ObsContext* obs, TrialWorkspace* workspace) {
  const std::size_t n = g.num_nodes();
  if (initial_guess < 1)
    throw std::invalid_argument("General EID: initial guess must be >= 1");
  GeneralEidOutcome out;
  out.rumors = DtgLocalBroadcast::own_id_rumors(n);
  if (n <= 1) {
    out.success = true;
    out.final_estimate = initial_guess;
    return out;
  }

  // Safety bound: k never needs to exceed the weighted diameter, which
  // is at most (n-1) * max latency.
  const Latency k_limit =
      2 * static_cast<Latency>(n) * std::max<Latency>(g.max_latency(), 1);
  NetworkView view(g, /*latencies_known=*/true);

  for (Latency k = initial_guess; k <= k_limit; k *= 2) {
    ++out.attempts;
    EidOptions options;
    options.diameter_estimate = k;
    options.n_hat = n_hat;
    options.obs = obs;
    options.workspace = workspace;
    EidOutcome attempt = run_eid(g, options, std::move(out.rumors), rng);
    out.sim.accumulate(attempt.sim);
    out.rumors = std::move(attempt.rumors);

    // Termination Check broadcast primitive: RR Broadcast with fresh
    // own-id rumors on this attempt's spanner (Section 5.3).
    PhaseScope check_phase(obs, "eid/termination_check");
    const DirectedGraph& spanner = attempt.spanner;
    auto broadcast = [&]() {
      RRBroadcast rr(view, spanner, k, own_id_rumors(n));
      SimOptions opts;
      opts.max_rounds = rr.budget() + k + 2;
      opts.workspace = workspace;
      if (obs) opts.recorder = obs->recorder;
      SimResult sim = dispatch_gossip(g, rr, opts);
      return std::make_pair(rr.take_rumors(), sim);
    };
    const CheckOutcome check = run_termination_check(g, out.rumors, broadcast);
    check_phase.add(check.sim);
    out.sim.accumulate(check.sim);
    if (!check.unanimous) out.checks_unanimous = false;
    if (!check.failed) {
      out.success = true;
      out.final_estimate = k;
      return out;
    }
  }
  out.success = false;
  out.final_estimate = k_limit;
  return out;
}

}  // namespace latgossip
