#pragma once
// Efficient Information Dissemination (Algorithm 3, Theorem 14 /
// Lemma 17) and General EID (Algorithm 4, Section 5.3, Theorem 19).
//
// EID(D), for known latencies and diameter estimate D:
//   1. O(log n) executions of D-DTG — charged in simulated rounds; the
//      paper uses them to collect log n-hop neighborhoods so nodes can
//      run the spanner algorithm locally;
//   2. Baswana–Sen oriented spanner of G_D — a local computation (zero
//      rounds) given the discovered neighborhoods and shared randomness;
//   3. RR Broadcast on the spanner with parameter (2k-1)·D, covering the
//      spanner's worst-case stretched distances.
//
// Total: O(D log^3 n) rounds for all-to-all dissemination.
//
// General EID doubles the estimate k = 1, 2, 4, ... and runs EID(k)
// followed by the Termination Check; rumor sets persist across attempts.

#include <cstddef>
#include <vector>

#include "core/spanner.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "sim/metrics.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace latgossip {

struct ObsContext;     // obs/metrics.h
class TrialWorkspace;  // sim/workspace.h

struct EidOptions {
  Latency diameter_estimate = 0;  ///< D (required, >= 1)
  std::size_t n_hat = 0;          ///< size estimate; 0 = exact n
  std::size_t dtg_repetitions = 0; ///< 0 = ceil(log2 n)
  std::size_t spanner_k = 0;      ///< 0 = ceil(log2 n_hat)
  /// Ablation: use the randomized local-broadcast subroutine for the
  /// discovery phase instead of deterministic DTG (Section 5.1 lists
  /// both as viable; the paper builds on DTG).
  bool randomized_local_broadcast = false;
  /// Optional observability sinks (obs/metrics.h). Phases tagged:
  /// "eid/local_broadcast" (the O(log n) DTG discovery executions),
  /// "eid/spanner" (local computation, zero simulated rounds), and
  /// "eid/rr_broadcast" — the split Theorem 19's O(D log^3 n)
  /// accounting needs. The recorder (if any) is wired into every
  /// internal run_gossip().
  ObsContext* obs = nullptr;
  /// Optional per-thread workspace (sim/workspace.h): threaded into
  /// every internal run_gossip() so the engine calendar queue is
  /// recycled across the O(log n) discovery executions and the RR
  /// phase. Protocol objects are still built per phase (they consume
  /// the rumor sets by move).
  TrialWorkspace* workspace = nullptr;
};

struct EidOutcome {
  SimResult sim;               ///< accumulated over all phases
  std::vector<Bitset> rumors;  ///< final rumor sets
  DirectedGraph spanner{0};
  bool all_to_all = false;     ///< every node heard every rumor
};

/// One EID execution with estimate `options.diameter_estimate`, starting
/// from `initial_rumors` (own ids are added automatically).
EidOutcome run_eid(const WeightedGraph& g, const EidOptions& options,
                   std::vector<Bitset> initial_rumors, Rng& rng);

struct GeneralEidOutcome {
  SimResult sim;
  std::vector<Bitset> rumors;
  Latency final_estimate = 0;   ///< k at successful termination
  std::size_t attempts = 0;     ///< EID executions (doublings + 1)
  bool success = false;
  bool checks_unanimous = true; ///< Lemma 18 held in every check
};

/// Guess-and-double EID with the Termination Check (Algorithm 4).
/// `obs` (optional) threads through every EID attempt and additionally
/// tags "eid/termination_check". `workspace` (optional) is forwarded
/// into every internal simulation as EidOptions::workspace.
GeneralEidOutcome run_general_eid(const WeightedGraph& g, std::size_t n_hat,
                                  Rng& rng, Latency initial_guess = 1,
                                  ObsContext* obs = nullptr,
                                  TrialWorkspace* workspace = nullptr);

}  // namespace latgossip
