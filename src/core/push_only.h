#pragma once
// Push-only broadcast — the protocol the paper's footnote 2 warns
// about: "Without the ability to pull data, it is easy to see that
// information exchange takes Ω(nD) time, e.g., in a star. Simple
// flooding matches this lower bound."
//
// The engine's exchanges are inherently bidirectional, so push-only is
// modeled at the protocol level: a node records its own initiations and
// discards the response leg of any exchange it initiated — it only
// learns through pushes *addressed to it*. Only informed nodes initiate
// (pushing nothing is pointless), each picking a uniformly random
// neighbor per round.
//
// Corner case: if u and v initiate toward each other in the same round,
// each discards the response of its own exchange but still receives the
// other's push — exactly the push semantics.

#include <optional>
#include <unordered_set>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {

class PushOnlyBroadcast {
 public:
  using Payload = bool;

  PushOnlyBroadcast(const NetworkView& view, NodeId source, Rng rng);

  static std::size_t payload_bits(const Payload&) { return 1; }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  std::vector<bool> informed_;
  /// Outstanding self-initiations, packed (node, round, target); lets
  /// the protocol classify each delivery as push (accept) or response
  /// (discard) even with many exchanges in flight.
  std::unordered_set<std::uint64_t> pending_;
  std::size_t informed_count_ = 0;
};

/// Pull-only broadcast — the dual restriction: a node learns only from
/// the response leg of exchanges it initiated itself (incoming pushes
/// are discarded). Uninformed nodes pull from uniformly random
/// neighbors; informed nodes stay silent (they have nothing to learn).
/// Pull-only is fast on stars from a leaf (all leaves pull the hub) but
/// pays Ω(n) on reversed situations — the mirror image of footnote 2.
class PullOnlyBroadcast {
 public:
  using Payload = bool;

  PullOnlyBroadcast(const NetworkView& view, NodeId source, Rng rng);

  static std::size_t payload_bits(const Payload&) { return 1; }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_[u]; }

 private:
  NetworkView view_;
  Rng rng_;
  std::vector<bool> informed_;
  /// Outstanding self-initiations (see PushOnlyBroadcast).
  std::unordered_set<std::uint64_t> pending_;
  std::size_t informed_count_ = 0;
};

/// Pack an initiation key: (node, round, target) -> 64 bits. Rounds are
/// folded mod 2^24, far beyond any in-flight window.
inline std::uint64_t pack_initiation(NodeId node, Round round,
                                     NodeId target) {
  return (static_cast<std::uint64_t>(node) << 44) |
         ((static_cast<std::uint64_t>(round) & 0xFFFFFF) << 20) |
         static_cast<std::uint64_t>(target);
}

}  // namespace latgossip
