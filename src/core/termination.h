#pragma once
// Termination Check (Algorithm 1, Section 5.3, Lemma 18).
//
// After a dissemination attempt with diameter estimate k, every node v
// raises a flag when some graph neighbor is missing from its rumor set.
// A first broadcast-and-gather within k-distance neighborhoods lets each
// node compare its (frozen) rumor-set fingerprint and flag against all
// nodes it can reach — and check that the set of nodes it heard from is
// exactly its rumor set; a second pass propagates the resulting "failed"
// verdict so that all nodes agree (Lemma 18: no node terminates before
// exchanging rumors with everyone, and all nodes decide in the same
// round). The heard-set/rumor-set comparison is load-bearing: a node
// that passes heard a neighbor-closed set of like-minded nodes, and in a
// connected graph such a set must be all of V, so early termination with
// an incomplete rumor set is impossible no matter how the underlying
// broadcast primitive behaves on a too-small estimate.
//
// The broadcast primitive is pluggable ("any broadcast algorithm that
// can broadcast and collect back information from all nodes at distance
// <= k can be used"): General EID passes RR Broadcast on its spanner,
// Path Discovery passes the T(k) DTG sequence. A primitive run reports
// which node ids reached each node; the check's comparison data flows
// along exactly those delivery paths.

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"
#include "util/bitset.h"

namespace latgossip {

/// One fresh broadcast pass: returns per-node heard-from sets (own id
/// included) and the rounds it consumed.
using HeardSetsFn = std::function<std::pair<std::vector<Bitset>, SimResult>()>;

struct CheckOutcome {
  bool failed = false;     ///< some node decided "failed"
  bool unanimous = false;  ///< all nodes reached the same verdict (Lemma 18)
  SimResult sim;           ///< rounds/messages of the two broadcast passes
};

/// Run the check for estimate k against the current rumor sets.
CheckOutcome run_termination_check(const WeightedGraph& g,
                                   const std::vector<Bitset>& rumors,
                                   const HeardSetsFn& broadcast);

}  // namespace latgossip
