#include "core/flooding.h"

#include <stdexcept>

namespace latgossip {

RoundRobinFlooding::RoundRobinFlooding(const NetworkView& view,
                                       GossipGoal goal, NodeId source,
                                       std::vector<Bitset> initial_rumors)
    : view_(view),
      goal_(goal),
      source_(source),
      rumors_(std::move(initial_rumors)),
      rumor_count_(view.num_nodes(), 0),
      snapshots_(view.num_nodes(), view.num_nodes()),
      next_neighbor_(view.num_nodes(), 0),
      satisfied_(view.num_nodes(), false) {
  if (rumors_.size() != view.num_nodes())
    throw std::invalid_argument("flooding: rumor vector size mismatch");
  if (goal == GossipGoal::kSingleSource && source >= view.num_nodes())
    throw std::invalid_argument("flooding: bad source");
  for (NodeId u = 0; u < view.num_nodes(); ++u) {
    if (rumors_[u].size() != view.num_nodes())
      throw std::invalid_argument("flooding: rumor bitset size mismatch");
    rumor_count_[u] = rumors_[u].count();
    refresh_satisfied(u);
  }
}

std::optional<NodeId> RoundRobinFlooding::select_contact(NodeId u, Round) {
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  const NodeId target = neigh[next_neighbor_[u] % neigh.size()].to;
  ++next_neighbor_[u];
  return target;
}

RoundRobinFlooding::Payload RoundRobinFlooding::capture_payload(NodeId u,
                                                                Round) {
  return snapshots_.shared(u, rumors_[u], rumor_count_[u]);
}

RoundRobinFlooding::Payload RoundRobinFlooding::capture_payload_copy(NodeId u,
                                                                     Round) {
  return snapshots_.fresh(rumors_[u], rumor_count_[u]);
}

void RoundRobinFlooding::deliver(NodeId u, NodeId, Payload payload, EdgeId,
                                 Round, Round) {
  const Bitset::OrDelta delta = rumors_[u].or_assign_changed(payload.bits());
  if (!delta.changed) return;
  rumor_count_[u] += delta.added;
  snapshots_.invalidate(u);
  if (!satisfied_[u]) refresh_satisfied(u);
}

bool RoundRobinFlooding::done(Round) const {
  return satisfied_count_ == satisfied_.size();
}

bool RoundRobinFlooding::node_satisfied(NodeId u) const {
  switch (goal_) {
    case GossipGoal::kSingleSource:
      return rumors_[u].test(source_);
    case GossipGoal::kAllToAll:
      return rumor_count_[u] == view_.num_nodes();
    case GossipGoal::kLocalBroadcast:
      for (const HalfEdge& h : view_.neighbors(u))
        if (!rumors_[u].test(h.to)) return false;
      return true;
  }
  return false;
}

void RoundRobinFlooding::refresh_satisfied(NodeId u) {
  if (node_satisfied(u)) {
    satisfied_[u] = true;
    ++satisfied_count_;
  }
}

}  // namespace latgossip
