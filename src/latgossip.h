#pragma once
// Umbrella header: the entire latgossip public API.
//
// Fine-grained includes are preferred inside the library itself; this
// header is for applications and experiments that want everything.

// Utilities
#include "util/args.h"
#include "util/bitset.h"
#include "util/fit.h"
#include "util/rng.h"
#include "util/rumor_set.h"
#include "util/stats.h"
#include "util/table.h"

// Graph substrate
#include "graph/builder.h"
#include "graph/digraph.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/latency_models.h"

// Analysis
#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "analysis/spanner_check.h"
#include "analysis/spectral.h"

// Observability
#include "obs/export.h"
#include "obs/fingerprint.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

// Simulator
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/freshness.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/trace.h"

// Algorithms
#include "core/dtg.h"
#include "core/eid.h"
#include "core/flooding.h"
#include "core/latency_discovery.h"
#include "core/push_only.h"
#include "core/push_pull.h"
#include "core/random_local_broadcast.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "core/termination.h"
#include "core/tk_schedule.h"
#include "core/unified.h"

// Experiment store + query server
#include "store/cached_trials.h"
#include "store/json.h"
#include "store/key.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"

// Application layer
#include "app/aggregate.h"
#include "app/anti_entropy.h"
#include "app/kv_store.h"

// Lower bounds
#include "game/game.h"
#include "game/reduction.h"
#include "game/strategies.h"
