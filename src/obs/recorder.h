#pragma once
// Low-overhead structured event recorder for simulation runs.
//
// Replaces the chained-std::function activation log of sim/trace.h with
// a flat append-only binary event log covering every observable engine
// event: activations, deliveries, drops (fault-induced or crash-
// induced), and protocol phase boundaries. The engine writes events
// directly through a raw pointer in SimOptions (no std::function hop),
// and a recorder-free run still takes the compile-time NoHooks fast
// path — installing a recorder is what moves a run onto the dynamic
// dispatch, exactly like any other hook.
//
// The record path is a bare push_back: per-kind counts, max_round, the
// monotone flag, and the fingerprint are derived lazily by a tight
// catch-up pass over the not-yet-scanned suffix the first time a query
// needs them, and the (round, offset) boundary index by a second
// on-demand pass (amortized one scan each, however queries and appends
// interleave). Appends grow capacity with a large floor and a 4x
// factor — geometric 2x-from-tiny reallocation is what dominated the
// hot path otherwise (each doubling re-copies and re-faults the log).
//
// Queries are indexed: events append in nondecreasing round order
// within one run_gossip() execution, and the recorder maintains a
// (round, offset) boundary list, so activations_in_round() is a binary
// search plus a scan of that round's events and per_edge_counts() is
// one linear pass. Multi-phase protocols (EID, T(k)) restart rounds at
// 0 per phase; the recorder detects the non-monotone round and falls
// back to full scans for round-indexed queries (counts and the
// fingerprint are unaffected).
//
// Thread safety: none. Use one recorder per trial; run_trials callbacks
// must not share a recorder across trials.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "obs/fingerprint.h"

namespace latgossip {

enum class EventKind : std::uint8_t {
  kActivation = 0,  ///< a initiated an exchange with b over edge
  kDelivery = 1,    ///< a received b's payload (initiated at start)
  kDrop = 2,        ///< delivery to a from b lost to link failure
  kCrashDrop = 3,   ///< delivery to a from b lost to a crashed endpoint
  kPhaseBegin = 4,  ///< protocol phase opened (a = phase id)
  kPhaseEnd = 5,    ///< protocol phase closed (a = phase id)
};
inline constexpr std::size_t kNumEventKinds = 6;

/// One recorded event; 20 bytes packed, trivially copyable. Recording
/// cost is dominated by raw memory traffic (the hot path is a bare
/// append of this struct), so the layout is deliberately narrow:
/// rounds are stored as u32 (saturating at 2^32-1 — far past any
/// simulated run in this repo) and the kind shares a word with the
/// edge id (edges above 2^29-2 saturate to the invalid sentinel; a
/// graph that large would not fit in memory anyway). Use the accessors;
/// the raw fields are an implementation detail of the packing.
struct Event {
  static constexpr std::uint32_t kEdgeMask = (std::uint32_t{1} << 29) - 1;

  static std::uint32_t sat_round(Round r) noexcept {
    return r >= static_cast<Round>(UINT32_MAX)
               ? UINT32_MAX
               : static_cast<std::uint32_t>(r < 0 ? 0 : r);
  }

  static Event make(Round round, Round start, NodeId a, NodeId b, EdgeId edge,
                    EventKind kind) noexcept {
    const std::uint32_t packed_edge =
        edge >= kEdgeMask ? kEdgeMask : static_cast<std::uint32_t>(edge);
    return Event{sat_round(round), sat_round(start), a, b,
                 (static_cast<std::uint32_t>(kind) << 29) | packed_edge};
  }

  Round round() const noexcept { return static_cast<Round>(round_); }
  Round start() const noexcept { return static_cast<Round>(start_); }
  NodeId a() const noexcept { return a_; }
  NodeId b() const noexcept { return b_; }
  EdgeId edge() const noexcept {
    const std::uint32_t e = edge_kind_ & kEdgeMask;
    return e == kEdgeMask ? kInvalidEdge : e;
  }
  EventKind kind() const noexcept {
    return static_cast<EventKind>(edge_kind_ >> 29);
  }

  bool operator==(const Event&) const = default;

  std::uint32_t round_ = 0;  ///< round the event happened (delivery:
                             ///< completion), saturated to u32
  std::uint32_t start_ = 0;  ///< initiation round (deliveries/drops)
  NodeId a_ = kInvalidNode;  ///< initiator / receiver / phase id
  NodeId b_ = kInvalidNode;  ///< responder / sender
  std::uint32_t edge_kind_ = 0;  ///< kind in bits 31..29, edge below
};
static_assert(sizeof(Event) == 20);

class EventRecorder {
 public:
  // --- recording (called from the engine's hooked event loop) ---------

  void record_activation(NodeId u, NodeId v, EdgeId e, Round r) {
    append(Event::make(r, r, u, v, e, EventKind::kActivation));
  }
  void record_delivery(NodeId to, NodeId from, EdgeId e, Round start,
                       Round now) {
    append(Event::make(now, start, to, from, e, EventKind::kDelivery));
  }
  void record_drop(NodeId to, NodeId from, EdgeId e, Round start, Round now,
                   bool crash) {
    append(Event::make(now, start, to, from, e,
                       crash ? EventKind::kCrashDrop : EventKind::kDrop));
  }

  /// Intern `name` and open a phase at virtual time `clock` (phases use
  /// the MetricsRegistry's cumulative clock, not per-run rounds; see
  /// obs/metrics.h PhaseScope).
  void record_phase_begin(std::string_view name, Round clock) {
    append(Event::make(clock, clock, intern_phase(name), kInvalidNode,
                       kInvalidEdge, EventKind::kPhaseBegin));
  }
  void record_phase_end(std::string_view name, Round clock) {
    append(Event::make(clock, clock, intern_phase(name), kInvalidNode,
                       kInvalidEdge, EventKind::kPhaseEnd));
  }

  // --- queries --------------------------------------------------------

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  std::size_t count(EventKind kind) const {
    refresh_stats();
    return kind_counts_[static_cast<std::size_t>(kind)];
  }
  std::size_t activations() const { return count(EventKind::kActivation); }
  std::size_t deliveries() const { return count(EventKind::kDelivery); }
  /// Drops of both flavors (link loss + crash loss) — matches
  /// SimResult::messages_dropped.
  std::size_t drops() const {
    return count(EventKind::kDrop) + count(EventKind::kCrashDrop);
  }

  /// Phase names in interning order; Event::a for phase events indexes
  /// into this list.
  const std::vector<std::string>& phase_names() const { return phase_names_; }
  std::string_view phase_name(NodeId id) const {
    return id < phase_names_.size() ? std::string_view(phase_names_[id])
                                    : std::string_view("?");
  }

  /// Number of activations in round r: O(log R + events in round r)
  /// while the event stream is round-monotone, full scan otherwise.
  std::size_t activations_in_round(Round r) const {
    refresh_stats();
    std::size_t c = 0;
    if (monotone_) {
      refresh_index();
      const auto [lo, hi] = round_range(r);
      for (std::size_t i = lo; i < hi; ++i)
        if (events_[i].kind() == EventKind::kActivation) ++c;
    } else {
      for (const Event& e : events_)
        if (e.kind() == EventKind::kActivation && e.round() == r) ++c;
    }
    return c;
  }

  /// Activation counts per edge, indexable by EdgeId. One linear pass.
  std::vector<std::size_t> per_edge_counts(std::size_t num_edges) const {
    std::vector<std::size_t> counts(num_edges, 0);
    for (const Event& e : events_)
      if (e.kind() == EventKind::kActivation && e.edge() < num_edges)
        ++counts[e.edge()];
    return counts;
  }

  /// True while events have appended in nondecreasing round order (one
  /// run_gossip execution); round-indexed queries are then indexed.
  bool round_monotone() const {
    refresh_stats();
    return monotone_;
  }

  /// Largest round seen across all events (0 when empty).
  Round max_round() const {
    refresh_stats();
    return max_round_;
  }

  // --- fingerprint ----------------------------------------------------

  /// Order-insensitive digest over every event recorded so far (see
  /// obs/fingerprint.h). Phase events hash their interned name id, so
  /// two streams differing only in phase labels differ in digest.
  std::uint64_t fingerprint() const {
    refresh_stats();
    return fingerprint_.digest();
  }
  const Fingerprint& fingerprint_state() const {
    refresh_stats();
    return fingerprint_;
  }

  void clear() {
    events_.clear();
    round_starts_.clear();
    kind_counts_.fill(0);
    phase_names_.clear();
    fingerprint_.reset();
    monotone_ = true;
    max_round_ = 0;
    last_round_ = 0;
    stats_cursor_ = 0;
    index_cursor_ = 0;
  }

 private:
  /// First reservation covers most runs outright; afterwards grow 4x.
  static constexpr std::size_t kReserveFloor = std::size_t{1} << 16;

  void append(const Event& e) {
    if (events_.size() == events_.capacity())
      events_.reserve(events_.capacity() < kReserveFloor
                          ? kReserveFloor
                          : events_.capacity() * 4);
    events_.push_back(e);
  }

  /// Catch counts, max_round, the monotone flag, and the fingerprint up
  /// to the end of the log. Deliberately branch-light so independent
  /// per-event hash chains pipeline; each event is processed once no
  /// matter how appends and queries interleave. Logically const — every
  /// derived member is mutable.
  void refresh_stats() const {
    const std::size_t n = events_.size();
    if (stats_cursor_ >= n) return;
    // Accumulate in locals: folding straight into the mutable members
    // would chain every iteration through the same memory slots and
    // serialize the loop on store-to-load forwarding.
    std::array<std::size_t, kNumEventKinds> counts{};
    Fingerprint fp;
    bool mono = monotone_;
    Round maxr = max_round_;
    Round last = last_round_;
    for (std::size_t i = stats_cursor_; i < n; ++i) {
      const Event& e = events_[i];
      const Round r = e.round();
      ++counts[static_cast<std::size_t>(e.kind())];
      mono = mono && r >= last;
      last = r;
      maxr = r > maxr ? r : maxr;
      fp.add(fp_hash3(
          (static_cast<std::uint64_t>(r) << 3) |
              static_cast<std::uint64_t>(e.kind()),
          (static_cast<std::uint64_t>(e.a()) << 32) | e.b(),
          (static_cast<std::uint64_t>(e.edge()) << 32) |
              static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(e.start()))));
    }
    for (std::size_t k = 0; k < kNumEventKinds; ++k)
      kind_counts_[k] += counts[k];
    fingerprint_.merge(fp);
    monotone_ = mono;
    max_round_ = maxr;
    last_round_ = last;
    stats_cursor_ = n;
  }

  /// Catch the (round, offset) boundary index up. Only meaningful while
  /// the stream is monotone; requires refresh_stats() to have run.
  void refresh_index() const {
    if (!monotone_) return;
    for (; index_cursor_ < events_.size(); ++index_cursor_) {
      const Round r = events_[index_cursor_].round();
      if (round_starts_.empty() || round_starts_.back().round != r)
        round_starts_.push_back({r, index_cursor_});
    }
  }

  /// [first, last) event offsets for round r (monotone streams only).
  std::pair<std::size_t, std::size_t> round_range(Round r) const {
    // Binary search the boundary list for the first entry with round >= r.
    std::size_t lo = 0, hi = round_starts_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (round_starts_[mid].round < r)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo == round_starts_.size() || round_starts_[lo].round != r)
      return {0, 0};
    const std::size_t first = round_starts_[lo].offset;
    const std::size_t last = lo + 1 < round_starts_.size()
                                 ? round_starts_[lo + 1].offset
                                 : events_.size();
    return {first, last};
  }

  NodeId intern_phase(std::string_view name) {
    for (std::size_t i = 0; i < phase_names_.size(); ++i)
      if (phase_names_[i] == name) return static_cast<NodeId>(i);
    phase_names_.emplace_back(name);
    return static_cast<NodeId>(phase_names_.size() - 1);
  }

  struct RoundStart {
    Round round;
    std::size_t offset;
  };

  std::vector<Event> events_;
  std::vector<std::string> phase_names_;
  // Derived state, maintained lazily by refresh() (see above).
  mutable std::vector<RoundStart> round_starts_;
  mutable std::array<std::size_t, kNumEventKinds> kind_counts_{};
  mutable Fingerprint fingerprint_;
  mutable bool monotone_ = true;
  mutable Round max_round_ = 0;
  mutable Round last_round_ = 0;
  mutable std::size_t stats_cursor_ = 0;
  mutable std::size_t index_cursor_ = 0;
};

}  // namespace latgossip
