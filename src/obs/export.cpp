#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace latgossip {

#ifndef LATGOSSIP_GIT_HASH
#define LATGOSSIP_GIT_HASH "unknown"
#endif
#ifndef LATGOSSIP_COMPILER
#define LATGOSSIP_COMPILER "unknown"
#endif
#ifndef LATGOSSIP_BUILD_TYPE
#define LATGOSSIP_BUILD_TYPE "unknown"
#endif
#ifndef LATGOSSIP_BUILD_FLAGS
#define LATGOSSIP_BUILD_FLAGS ""
#endif

BuildInfo build_info() {
  return BuildInfo{LATGOSSIP_GIT_HASH, LATGOSSIP_COMPILER,
                   LATGOSSIP_BUILD_TYPE, LATGOSSIP_BUILD_FLAGS};
}

std::size_t peak_rss_bytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kib) == 1) break;
  }
  std::fclose(f);
  return kib * 1024;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string build_info_json() {
  const BuildInfo b = build_info();
  std::string out = "{\"git\":\"";
  out += json_escape(b.git_hash);
  out += "\",\"compiler\":\"";
  out += json_escape(b.compiler);
  out += "\",\"build_type\":\"";
  out += json_escape(b.build_type);
  out += "\",\"flags\":\"";
  out += json_escape(b.flags);
  out += "\"}";
  return out;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string to_chrome_trace_json(const EventRecorder& rec) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const Event& e : rec.events()) {
    switch (e.kind()) {
      case EventKind::kActivation:
        sep();
        out += "{\"name\":\"activate\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
               "\"tid\":";
        append_u64(out, e.a());
        out += ",\"ts\":";
        append_i64(out, e.round());
        out += ",\"args\":{\"peer\":";
        append_u64(out, e.b());
        out += ",\"edge\":";
        append_u64(out, e.edge());
        out += "}}";
        break;
      case EventKind::kDelivery:
      case EventKind::kDrop:
      case EventKind::kCrashDrop: {
        sep();
        const char* name = e.kind() == EventKind::kDelivery ? "deliver"
                           : e.kind() == EventKind::kDrop   ? "drop"
                                                          : "crash_drop";
        out += "{\"name\":\"";
        out += name;
        out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        append_u64(out, e.a());
        out += ",\"ts\":";
        append_i64(out, e.start());
        out += ",\"dur\":";
        append_i64(out, e.round() - e.start());
        out += ",\"args\":{\"from\":";
        append_u64(out, e.b());
        out += ",\"edge\":";
        append_u64(out, e.edge());
        out += "}}";
        break;
      }
      case EventKind::kPhaseBegin:
      case EventKind::kPhaseEnd:
        sep();
        out += "{\"name\":\"";
        out += json_escape(rec.phase_name(e.a()));
        out += e.kind() == EventKind::kPhaseBegin ? "\",\"ph\":\"B\""
                                                : "\",\"ph\":\"E\"";
        out += ",\"pid\":0,\"tid\":0,\"ts\":";
        append_i64(out, e.round());
        out += '}';
        break;
    }
  }
  // Name the process/track rows so Perfetto renders something readable.
  sep();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"phases\"}}";
  out += ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"nodes\"}}";
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string activations_to_csv(const EventRecorder& rec) {
  std::string out = "round,initiator,responder,edge\n";
  for (const Event& e : rec.events()) {
    if (e.kind() != EventKind::kActivation) continue;
    out += std::to_string(e.round());
    out += ',';
    out += std::to_string(e.a());
    out += ',';
    out += std::to_string(e.b());
    out += ',';
    out += std::to_string(e.edge());
    out += '\n';
  }
  return out;
}

std::string metrics_json(const MetricsRegistry& metrics) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : metrics.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    append_u64(out, c.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"count\":";
    append_u64(out, h.count());
    out += ",\"sum\":";
    append_u64(out, h.sum());
    out += ",\"max\":";
    append_u64(out, h.max());
    out += ",\"buckets\":{";
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '"';
      append_u64(out, Histogram::bucket_lo(b));
      out += "\":";
      append_u64(out, h.bucket(b));
    }
    out += "}}";
  }
  out += "},\"phases\":{";
  first = true;
  for (const auto& [name, p] : metrics.phases()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"rounds\":";
    append_i64(out, p.rounds);
    out += ",\"activations\":";
    append_u64(out, p.activations);
    out += ",\"messages_delivered\":";
    append_u64(out, p.messages_delivered);
    out += ",\"messages_dropped\":";
    append_u64(out, p.messages_dropped);
    out += ",\"exchanges_rejected\":";
    append_u64(out, p.exchanges_rejected);
    out += ",\"payload_bits\":";
    append_u64(out, p.payload_bits);
    out += ",\"entries\":";
    append_u64(out, p.entries);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string manifest_record(const RunInfo& info, std::size_t trial,
                            std::uint64_t trial_seed, const SimResult& result,
                            double wall_ms,
                            const std::string& metrics_json_snapshot) {
  std::string out = "{\"schema\":\"latgossip.run.v1\",\"build\":";
  out += build_info_json();
  out += ",\"tool\":\"";
  out += json_escape(info.tool);
  out += "\",\"protocol\":\"";
  out += json_escape(info.protocol);
  out += "\",\"graph\":{\"source\":\"";
  out += json_escape(info.graph_source);
  out += "\",\"params\":\"";
  out += json_escape(info.graph_params);
  out += "\",\"nodes\":";
  append_u64(out, info.nodes);
  out += ",\"edges\":";
  append_u64(out, info.edges);
  out += "},\"seed\":";
  append_u64(out, info.seed);
  out += ",\"threads\":";
  append_u64(out, info.threads);
  out += ",\"threads_effective\":";
  append_u64(out, info.threads_effective);
  if (!info.threads_env.empty()) {
    out += ",\"threads_env\":\"";
    out += json_escape(info.threads_env);
    out += '"';
  }
  out += ",\"trial\":";
  append_u64(out, trial);
  out += ",\"trial_seed\":";
  append_u64(out, trial_seed);
  out += ",\"result\":{\"rounds\":";
  append_i64(out, result.rounds);
  out += ",\"completed\":";
  out += result.completed ? "true" : "false";
  out += ",\"activations\":";
  append_u64(out, result.activations);
  out += ",\"messages_delivered\":";
  append_u64(out, result.messages_delivered);
  out += ",\"messages_dropped\":";
  append_u64(out, result.messages_dropped);
  out += ",\"exchanges_rejected\":";
  append_u64(out, result.exchanges_rejected);
  out += ",\"payload_bits\":";
  append_u64(out, result.payload_bits);
  out += ",\"max_inflight\":";
  append_u64(out, result.max_inflight);
  out += ",\"fingerprint\":\"";
  {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, result.fingerprint);
    out += buf;
  }
  out += "\"},\"wall_ms\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_ms);
    out += buf;
  }
  out += ",\"peak_rss_bytes\":";
  append_u64(out, peak_rss_bytes());
  if (!metrics_json_snapshot.empty()) {
    out += ",\"metrics\":";
    out += metrics_json_snapshot;
  }
  out += '}';
  return out;
}

bool append_jsonl(const std::string& path, const std::string& line) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok = std::fputs(line.c_str(), f) >= 0 && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace latgossip
