#pragma once
// Named metrics registry + protocol phase attribution.
//
// A MetricsRegistry holds named monotonic counters and log2-bucket
// histograms, plus per-phase simulation accounting. Protocols tag their
// phases with a PhaseScope RAII guard:
//
//   PhaseScope phase(obs, "eid/local_broadcast");
//   const SimResult sim = run_gossip(g, proto, opts);
//   phase.add(sim);   // rounds/messages/bits attributed to this phase
//
// Multi-phase protocols restart engine rounds at 0 in every phase, so
// the registry keeps a cumulative *virtual clock* — the sum of all
// rounds added through scopes — which is what phase boundaries are
// stamped with (and what the Chrome trace export uses as timestamps).
//
// ObsContext bundles the two observability sinks (event recorder +
// metrics registry) so protocol entry points take a single optional
// pointer. Both members are optional; a null ObsContext* is a no-op
// everywhere. Like the recorder, a registry is not thread-safe: use one
// per trial.
//
// Phase accounting answers the paper's per-phase questions directly:
// Theorem 19/20's O(D log^3 n) EID cost splits into discovery /
// spanner / broadcast phases, and per-phase payload_bits mirrors the
// small-message budgets of Dufoulon et al. (see PAPERS.md).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/recorder.h"
#include "sim/freshness.h"
#include "sim/metrics.h"

namespace latgossip {

/// Monotonic named counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log2-bucket histogram for nonnegative integer samples. Bucket 0
/// counts exact zeros; bucket b >= 1 counts values in [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(v));
  }
  /// Inclusive lower bound of bucket b.
  static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  std::uint64_t bucket(std::size_t b) const noexcept { return buckets_[b]; }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Simulation cost attributed to one named protocol phase.
struct PhaseStats {
  Round rounds = 0;
  std::size_t activations = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;
  std::size_t exchanges_rejected = 0;
  std::size_t payload_bits = 0;
  std::size_t entries = 0;  ///< times a PhaseScope opened this phase

  void add(const SimResult& sim) noexcept {
    rounds += sim.rounds;
    activations += sim.activations;
    messages_delivered += sim.messages_delivered;
    messages_dropped += sim.messages_dropped;
    exchanges_rejected += sim.exchanges_rejected;
    payload_bits += sim.payload_bits;
  }
};

class MetricsRegistry {
 public:
  /// Find-or-create; references stay valid for the registry's lifetime
  /// (std::map nodes are stable).
  Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }
  PhaseStats& phase(std::string_view name) {
    return phases_[std::string(name)];
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, PhaseStats>& phases() const { return phases_; }

  /// Cumulative simulated rounds across every PhaseScope::add(); the
  /// virtual timeline phase boundaries and trace exports live on.
  Round clock() const noexcept { return clock_; }
  void advance_clock(Round delta) noexcept { clock_ += delta; }

  void clear() {
    counters_.clear();
    histograms_.clear();
    phases_.clear();
    clock_ = 0;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, PhaseStats> phases_;
  Round clock_ = 0;
};

/// The two observability sinks, both optional. Protocol entry points
/// accept `ObsContext* obs = nullptr`; a null pointer (or null members)
/// disables that sink with no per-event cost — in particular, a null
/// recorder keeps run_gossip() on the compile-time NoHooks fast path.
struct ObsContext {
  EventRecorder* recorder = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// RAII phase guard. Opens the phase on construction (stamping the
/// registry's virtual clock into the recorder), attributes SimResults
/// via add(), and closes the phase on destruction. Null-safe: a null or
/// empty ObsContext makes every operation a no-op.
class PhaseScope {
 public:
  PhaseScope(ObsContext* obs, std::string_view name)
      : recorder_(obs ? obs->recorder : nullptr),
        metrics_(obs ? obs->metrics : nullptr),
        name_(name) {
    if (metrics_) ++metrics_->phase(name_).entries;
    if (recorder_) record_boundary(/*begin=*/true);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() {
    if (recorder_) record_boundary(/*begin=*/false);
  }

  /// Attribute one simulation run to this phase and advance the
  /// registry's virtual clock by its rounds.
  void add(const SimResult& sim) {
    if (!metrics_) return;
    metrics_->phase(name_).add(sim);
    metrics_->advance_clock(sim.rounds);
  }

 private:
  void record_boundary(bool begin) {
    const Round clock = metrics_ ? metrics_->clock() : 0;
    if (begin)
      recorder_->record_phase_begin(name_, clock);
    else
      recorder_->record_phase_end(name_, clock);
  }

  EventRecorder* recorder_;
  MetricsRegistry* metrics_;
  std::string name_;
};

/// Fold a finished run's aggregate counters into the registry (one call
/// per run; counters are cumulative across calls).
inline void record_sim_result(MetricsRegistry& metrics, const SimResult& r) {
  metrics.counter("rounds").inc(static_cast<std::uint64_t>(r.rounds));
  metrics.counter("activations").inc(r.activations);
  metrics.counter("messages_delivered").inc(r.messages_delivered);
  metrics.counter("messages_dropped").inc(r.messages_dropped);
  metrics.counter("exchanges_rejected").inc(r.exchanges_rejected);
  metrics.counter("payload_bits").inc(r.payload_bits);
  metrics.histogram("max_inflight").observe(r.max_inflight);
}

/// Fold a run's freshness stats (sim/freshness.h) into the registry as
/// counters, so they ride into manifests and metric snapshots through
/// the existing export plumbing with no schema change. The mean is
/// stored in milli-rounds (counters are integers). No-op for protocols
/// without the last_gain_round hook (stats.valid == false).
inline void record_freshness(MetricsRegistry& metrics,
                             const FreshnessStats& stats) {
  if (!stats.valid) return;
  metrics.counter("node_age_nodes").inc(stats.informed_nodes);
  metrics.counter("node_age_max").inc(static_cast<std::uint64_t>(stats.max_age));
  metrics.counter("node_age_mean_milli")
      .inc(static_cast<std::uint64_t>(stats.mean_age * 1000.0));
}

/// Derive the event-level histograms from a recorder: per-delivery
/// latency (completion - initiation) and, when the stream is
/// round-monotone, the in-flight exchange depth sampled each round a
/// delivery interval covers.
inline void record_event_histograms(MetricsRegistry& metrics,
                                    const EventRecorder& rec) {
  Histogram& lat = metrics.histogram("delivery_latency");
  for (const Event& e : rec.events())
    if (e.kind() == EventKind::kDelivery)
      lat.observe(static_cast<std::uint64_t>(e.round() - e.start()));
  if (!rec.round_monotone() || rec.events().empty()) return;
  // Sweep: +1 at initiation, -1 at completion, over [0, max_round].
  const auto horizon = static_cast<std::size_t>(rec.max_round()) + 2;
  std::vector<std::int64_t> delta(horizon, 0);
  bool any = false;
  for (const Event& e : rec.events()) {
    if (e.kind() != EventKind::kDelivery && e.kind() != EventKind::kDrop &&
        e.kind() != EventKind::kCrashDrop)
      continue;
    ++delta[static_cast<std::size_t>(e.start())];
    --delta[static_cast<std::size_t>(e.round())];
    any = true;
  }
  if (!any) return;
  Histogram& depth = metrics.histogram("inflight_depth");
  std::int64_t inflight = 0;
  for (std::size_t r = 0; r + 1 < horizon; ++r) {
    inflight += delta[r];
    depth.observe(static_cast<std::uint64_t>(inflight));
  }
}

}  // namespace latgossip
