#pragma once
// Order-insensitive 64-bit digests of simulation event streams.
//
// A Fingerprint summarizes a *multiset* of events: each event is hashed
// to 64 bits and folded into three commutative accumulators (wrapping
// sum, xor, count), so the digest does not depend on the order in which
// events were recorded — only on which events occurred. That makes the
// digest stable under any benign reordering (e.g. a future parallel
// engine delivering within-round events out of order) while still
// catching any semantic change: a different contact choice, a different
// delivery round, a dropped message.
//
// Uses:
//  * run_trials() folds per-trial digests into TrialAggregate::
//    fingerprint, so determinism across --threads is checked at event
//    granularity, not just at the SimResult level;
//  * tests pin golden digests for seeded runs of push-pull, EID, and
//    T(k) as a semantic-regression net (tests/obs_test.cpp).
//
// The digest is a pure function of deterministic integer event fields,
// so it is reproducible across platforms and compilers.

#include <cstdint>

namespace latgossip {

/// One splitmix64-style finalization step (stateless).
constexpr std::uint64_t fp_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash an event packed into three 64-bit words (see EventRecorder for
/// the packing). The three input multiplies are independent (they
/// pipeline), and the shared fp_mix finalizer supplies the avalanche —
/// 5 multiplies total, which keeps the recorder's digest pass cheap
/// enough for the recording-overhead budget. The combine is linear in
/// (a, b, c) before the mix, so a pairwise collision needs a field
/// delta solving da*M1 + db*M2 + dc*M3 ≡ 0 (mod 2^64) — unreachable
/// for the small structured field values events carry — and the
/// nonlinear finalizer stops the commutative sum/xor fold below from
/// collapsing related streams.
constexpr std::uint64_t fp_hash3(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) noexcept {
  return fp_mix(a * 0x9e3779b97f4a7c15ULL + b * 0xff51afd7ed558ccdULL +
                c * 0xc4ceb9fe1a85ec53ULL);
}

/// Commutative digest accumulator over hashed events.
class Fingerprint {
 public:
  /// Fold one event hash in; commutative and associative.
  void add(std::uint64_t event_hash) noexcept {
    sum_ += event_hash;
    xor_ ^= event_hash;
    ++count_;
  }

  /// Fold another fingerprint's events in (multiset union).
  void merge(const Fingerprint& other) noexcept {
    sum_ += other.sum_;
    xor_ ^= other.xor_;
    count_ += other.count_;
  }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// The 64-bit digest. Mixes all three accumulators so that neither a
  /// sum collision nor an xor collision alone goes unnoticed.
  std::uint64_t digest() const noexcept {
    return fp_hash3(sum_, xor_, count_);
  }

  void reset() noexcept { sum_ = 0; xor_ = 0; count_ = 0; }

  bool operator==(const Fingerprint&) const = default;

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t xor_ = 0;
  std::uint64_t count_ = 0;
};

/// Commutative combination of finished digests (used by run_trials to
/// aggregate per-trial digests; trial order never affects the result).
constexpr std::uint64_t fingerprint_merge_digests(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  return a + b;  // wrapping add: commutative, associative
}

}  // namespace latgossip
