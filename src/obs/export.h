#pragma once
// Serialization for the observability layer: Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), the legacy activation CSV,
// and JSONL run manifests.
//
// A run manifest is one JSON object per line answering "which binary,
// seed, and graph produced this number": build provenance (git hash,
// compiler, flags), the run configuration (tool, protocol, graph
// generator + params, seed, threads), the per-trial SimResult including
// the event-stream fingerprint, the metrics snapshot (counters,
// histograms, per-phase stats), and wall time. `latgossip run
// --manifest=FILE`, run_trials() (via ManifestSpec), and bench/run_bench
// all emit the same schema — see DESIGN.md §5e for the field list.

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/metrics.h"

namespace latgossip {

/// Compile-time build provenance, stamped by src/obs/CMakeLists.txt.
struct BuildInfo {
  const char* git_hash;    ///< short hash, or "unknown" outside a checkout
  const char* compiler;    ///< id + version
  const char* build_type;  ///< CMAKE_BUILD_TYPE
  const char* flags;       ///< effective CXX flags
};
BuildInfo build_info();

/// JSON object literal with the BuildInfo fields (no trailing newline);
/// embedded by manifests and by run_bench's BENCH_*.json headers.
std::string build_info_json();

/// Peak resident-set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status; 0 where unavailable). A high-water mark, not a
/// current reading — it only ever grows, so per-row deltas in a batch
/// run are meaningless but "did the million-node bench fit in RAM" is
/// answered exactly. Stamped into every manifest record and BENCH_*.json
/// row.
std::size_t peak_rss_bytes();

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

// --- event stream exports ---------------------------------------------

/// Chrome trace-event JSON: {"traceEvents": [...]}. Rounds map 1:1 to
/// microsecond timestamps. Deliveries/drops render as complete ("X")
/// events on the receiving node's track spanning [start, completion];
/// activations as instant ("i") events on the initiator's track; phase
/// boundaries as duration ("B"/"E") events on a dedicated phases track
/// timestamped with the metrics virtual clock.
std::string to_chrome_trace_json(const EventRecorder& rec);

/// Legacy CSV of activation events: "round,initiator,responder,edge"
/// header + one line per activation (byte-compatible with the old
/// SimTrace::to_csv()).
std::string activations_to_csv(const EventRecorder& rec);

// --- metrics snapshot -------------------------------------------------

/// JSON object with "counters", "histograms" (non-empty log2 buckets as
/// {"lo": count}), and "phases" (per-phase rounds/messages/bits).
std::string metrics_json(const MetricsRegistry& metrics);

// --- run manifests ----------------------------------------------------

/// Static context shared by every trial of one batch.
struct RunInfo {
  std::string tool;          ///< e.g. "latgossip run", "run_bench"
  std::string protocol;      ///< e.g. "pushpull", "eid"
  std::string graph_source;  ///< generator family or input file
  std::string graph_params;  ///< free-form "n=128,p=0.1"
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint64_t seed = 0;   ///< batch seed
  std::size_t threads = 0;  ///< requested worker threads (0 = hardware)
  /// Worker threads the batch actually ran on, after the
  /// LATGOSSIP_THREADS override, the hardware default, and the
  /// num_trials cap (0 = the producer didn't resolve it). run_trials
  /// stamps this on its manifest copy; "threads":0 alone can't answer
  /// "how parallel was this run".
  std::size_t threads_effective = 0;
  /// Raw LATGOSSIP_THREADS value in the producing environment, empty
  /// when unset — records *why* threads_effective diverged from
  /// threads. Emitted only when set.
  std::string threads_env;
};

/// One JSONL manifest record (single line, no trailing newline).
/// `metrics_json_snapshot` is an already-serialized metrics object (use
/// metrics_json()), or empty to omit the field.
std::string manifest_record(const RunInfo& info, std::size_t trial,
                            std::uint64_t trial_seed, const SimResult& result,
                            double wall_ms,
                            const std::string& metrics_json_snapshot);

/// Append `line` + '\n' to `path` (creating it if needed). Returns
/// false on I/O failure.
bool append_jsonl(const std::string& path, const std::string& line);

}  // namespace latgossip
