#include "analysis/distance.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace latgossip {
namespace {

using DistNode = std::pair<Latency, NodeId>;

std::vector<Latency> dijkstra_impl(const WeightedGraph& g, NodeId source,
                                   Latency cap) {
  if (source >= g.num_nodes()) throw std::out_of_range("bad source");
  std::vector<Latency> dist(g.num_nodes(), kUnreachable);
  std::priority_queue<DistNode, std::vector<DistNode>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Latency w = g.latency(h.edge);
      if (w > cap) continue;
      if (d + w < dist[h.to]) {
        dist[h.to] = d + w;
        pq.emplace(dist[h.to], h.to);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<Latency> dijkstra(const WeightedGraph& g, NodeId source) {
  return dijkstra_impl(g, source, kUnreachable);
}

std::vector<Latency> dijkstra_capped(const WeightedGraph& g, NodeId source,
                                     Latency max_latency) {
  return dijkstra_impl(g, source, max_latency);
}

std::vector<Latency> dijkstra_directed(const DirectedGraph& g,
                                       NodeId source) {
  if (source >= g.num_nodes()) throw std::out_of_range("bad source");
  std::vector<Latency> dist(g.num_nodes(), kUnreachable);
  std::priority_queue<DistNode, std::vector<DistNode>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const Arc& a : g.out_arcs(u)) {
      if (d + a.latency < dist[a.to]) {
        dist[a.to] = d + a.latency;
        pq.emplace(dist[a.to], a.to);
      }
    }
  }
  return dist;
}

std::vector<Latency> bfs_hops(const WeightedGraph& g, NodeId source) {
  if (source >= g.num_nodes()) throw std::out_of_range("bad source");
  std::vector<Latency> hops(g.num_nodes(), kUnreachable);
  std::queue<NodeId> q;
  hops[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const HalfEdge& h : g.neighbors(u)) {
      if (hops[h.to] == kUnreachable) {
        hops[h.to] = hops[u] + 1;
        q.push(h.to);
      }
    }
  }
  return hops;
}

Latency weighted_eccentricity(const WeightedGraph& g, NodeId source) {
  const auto dist = dijkstra(g, source);
  Latency ecc = 0;
  for (Latency d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

Latency weighted_diameter(const WeightedGraph& g) {
  Latency diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Latency ecc = weighted_eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    diam = std::max(diam, ecc);
  }
  return diam;
}

Latency hop_diameter(const WeightedGraph& g) {
  Latency diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (Latency d : bfs_hops(g, v)) {
      if (d == kUnreachable) return kUnreachable;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

Latency estimate_weighted_diameter(const WeightedGraph& g, int sweeps,
                                   Rng& rng) {
  if (g.num_nodes() == 0) return 0;
  Latency best = 0;
  for (int s = 0; s < sweeps; ++s) {
    const auto start = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const auto d0 = dijkstra(g, start);
    NodeId far = start;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (d0[v] == kUnreachable) return kUnreachable;
      if (d0[v] > d0[far]) far = v;
    }
    best = std::max(best, weighted_eccentricity(g, far));
  }
  return best;
}

}  // namespace latgossip
