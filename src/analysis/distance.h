#pragma once
// Shortest-path and diameter computations on latency-weighted graphs.

#include <vector>

#include "graph/digraph.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

/// Sentinel distance for unreachable nodes.
constexpr Latency kUnreachable = static_cast<Latency>(1) << 60;

/// Single-source shortest path distances with latencies as weights.
std::vector<Latency> dijkstra(const WeightedGraph& g, NodeId source);

/// Like dijkstra, but only uses edges with latency <= max_latency —
/// i.e. distances in the paper's G_ell subgraph.
std::vector<Latency> dijkstra_capped(const WeightedGraph& g, NodeId source,
                                     Latency max_latency);

/// Directed single-source shortest paths (out-arcs only).
std::vector<Latency> dijkstra_directed(const DirectedGraph& g, NodeId source);

/// Hop counts (unweighted BFS distances); kUnreachable if disconnected.
std::vector<Latency> bfs_hops(const WeightedGraph& g, NodeId source);

/// Max weighted distance from `source` to any node (kUnreachable if the
/// graph is disconnected).
Latency weighted_eccentricity(const WeightedGraph& g, NodeId source);

/// Exact weighted diameter D: max over all pairs (n Dijkstra runs).
Latency weighted_diameter(const WeightedGraph& g);

/// Exact hop diameter D_hop.
Latency hop_diameter(const WeightedGraph& g);

/// Double-sweep lower bound on the weighted diameter: repeat `sweeps`
/// times (random start -> farthest u -> ecc(u)) and take the max. Exact
/// on trees; a good estimate in practice, always <= the true diameter.
Latency estimate_weighted_diameter(const WeightedGraph& g, int sweeps,
                                   Rng& rng);

}  // namespace latgossip
