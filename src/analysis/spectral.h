#pragma once
// Approximate weight-ℓ conductance for graphs too large for exact cut
// enumeration, via a spectral sweep cut on the strongly edge-induced
// graph G_ℓ (the multigraph of Theorem 12's proof: edges of latency <= ℓ
// kept with multiplicity 1, all other incident edges folded into
// self-loops so that every node keeps its original degree/volume).
//
// The sweep cut yields an UPPER bound on φ_ℓ(G); by Cheeger's inequality
// it is within a quadratic factor of the optimum. Experiments use it as
// a sanity cross-check against the closed-form gadget values.

#include "analysis/conductance.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

/// Sweep-cut upper bound on φ_ℓ(G). `iterations` power-iteration steps
/// are used to approximate the second eigenvector of the lazy random
/// walk on G_ℓ. Returns the best (minimum) φ_ℓ over all sweep prefixes.
CutResult weight_ell_conductance_sweep(const WeightedGraph& g, Latency ell,
                                       int iterations, Rng& rng);

/// Approximate φ_ℓ for the given levels plus φ*/ℓ* selection.
WeightedConductance weighted_conductance_sweep(const WeightedGraph& g,
                                               int iterations, Rng& rng);

/// Convenience dispatcher: exact enumeration when the graph is small
/// enough (n <= max_exact_nodes), the spectral sweep bound otherwise.
/// `exact` reports which path was taken.
WeightedConductance weighted_conductance_auto(const WeightedGraph& g,
                                              std::size_t max_exact_nodes,
                                              int sweep_iterations, Rng& rng,
                                              bool* exact = nullptr);

}  // namespace latgossip
