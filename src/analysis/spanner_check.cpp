#include "analysis/spanner_check.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/distance.h"

namespace latgossip {
namespace {

SpannerStats base_stats(const DirectedGraph& spanner,
                        const WeightedGraph& undirected) {
  SpannerStats s;
  s.num_arcs = spanner.num_arcs();
  s.undirected_edges = undirected.num_edges();
  s.max_out_degree = spanner.max_out_degree();
  s.avg_out_degree = spanner.num_nodes() == 0
                         ? 0.0
                         : static_cast<double>(spanner.num_arcs()) /
                               static_cast<double>(spanner.num_nodes());
  s.connected = undirected.is_connected();
  return s;
}

double stretch_from_sources(const WeightedGraph& g,
                            const WeightedGraph& undirected,
                            const std::vector<NodeId>& sources) {
  double max_stretch = 0.0;
  for (NodeId src : sources) {
    const auto dg = dijkstra(g, src);
    const auto ds = dijkstra(undirected, src);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == src || dg[v] == kUnreachable) continue;
      if (ds[v] == kUnreachable)
        throw std::runtime_error("spanner disconnects a reachable pair");
      max_stretch =
          std::max(max_stretch, static_cast<double>(ds[v]) /
                                    static_cast<double>(dg[v]));
    }
  }
  return max_stretch;
}

}  // namespace

SpannerStats check_spanner_exact(const WeightedGraph& g,
                                 const DirectedGraph& spanner) {
  if (g.num_nodes() != spanner.num_nodes())
    throw std::invalid_argument("spanner node count mismatch");
  const WeightedGraph undirected = spanner.to_undirected();
  SpannerStats s = base_stats(spanner, undirected);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  s.max_stretch = stretch_from_sources(g, undirected, all);
  return s;
}

SpannerStats check_spanner_sampled(const WeightedGraph& g,
                                   const DirectedGraph& spanner,
                                   std::size_t num_sources, Rng& rng) {
  if (g.num_nodes() != spanner.num_nodes())
    throw std::invalid_argument("spanner node count mismatch");
  const WeightedGraph undirected = spanner.to_undirected();
  SpannerStats s = base_stats(spanner, undirected);
  num_sources = std::min(num_sources, g.num_nodes());
  std::vector<NodeId> sources;
  for (std::size_t idx : rng.sample_without_replacement(g.num_nodes(),
                                                        num_sources))
    sources.push_back(static_cast<NodeId>(idx));
  s.max_stretch = stretch_from_sources(g, undirected, sources);
  return s;
}

}  // namespace latgossip
