#include "analysis/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace latgossip {
namespace {

/// One multiply by the lazy symmetric-normalized adjacency of G_ell:
/// y = (x + D^{-1/2} A' D^{-1/2} x) / 2, where A' keeps latency-<=ell
/// edges and folds the remaining degree into self-loops.
void lazy_multiply(const WeightedGraph& g, Latency ell,
                   const std::vector<double>& inv_sqrt_deg,
                   const std::vector<double>& self_loop,
                   const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t n = g.num_nodes();
  for (std::size_t u = 0; u < n; ++u)
    y[u] = self_loop[u] * x[u] * inv_sqrt_deg[u] * inv_sqrt_deg[u];
  for (const Edge& e : g.edges()) {
    if (e.latency > ell) continue;
    y[e.u] += inv_sqrt_deg[e.u] * inv_sqrt_deg[e.v] * x[e.v];
    y[e.v] += inv_sqrt_deg[e.u] * inv_sqrt_deg[e.v] * x[e.u];
  }
  for (std::size_t u = 0; u < n; ++u) y[u] = 0.5 * (x[u] + y[u]);
}

void normalize(std::vector<double>& x) {
  double norm = std::sqrt(
      std::inner_product(x.begin(), x.end(), x.begin(), 0.0));
  if (norm == 0.0) norm = 1.0;
  for (double& v : x) v /= norm;
}

void deflate(std::vector<double>& x, const std::vector<double>& v1) {
  const double dot =
      std::inner_product(x.begin(), x.end(), v1.begin(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= dot * v1[i];
}

}  // namespace

CutResult weight_ell_conductance_sweep(const WeightedGraph& g, Latency ell,
                                       int iterations, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sweep: need >= 2 nodes");
  if (iterations < 1) throw std::invalid_argument("sweep: iterations >= 1");
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) == 0)
      throw std::invalid_argument("sweep: isolated node (volume 0)");

  std::vector<double> inv_sqrt_deg(n), self_loop(n);
  std::vector<std::size_t> deg_ell(n, 0);
  for (const Edge& e : g.edges())
    if (e.latency <= ell) {
      ++deg_ell[e.u];
      ++deg_ell[e.v];
    }
  for (std::size_t u = 0; u < n; ++u) {
    inv_sqrt_deg[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
    self_loop[u] = static_cast<double>(g.degree(u) - deg_ell[u]);
  }

  // Top eigenvector of the normalized adjacency is D^{1/2} * 1.
  std::vector<double> v1(n);
  for (std::size_t u = 0; u < n; ++u)
    v1[u] = std::sqrt(static_cast<double>(g.degree(u)));
  normalize(v1);

  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.uniform_double() - 0.5;
  deflate(x, v1);
  normalize(x);
  for (int it = 0; it < iterations; ++it) {
    lazy_multiply(g, ell, inv_sqrt_deg, self_loop, x, y);
    std::swap(x, y);
    deflate(x, v1);
    normalize(x);
  }

  // Sweep in order of the embedding x(u)/sqrt(deg(u)).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return x[a] * inv_sqrt_deg[a] < x[b] * inv_sqrt_deg[b];
  });

  const std::size_t vol_total = 2 * g.num_edges();
  Bitset in_set(n);
  std::size_t vol_s = 0, cut = 0;
  CutResult best;
  best.phi = std::numeric_limits<double>::infinity();
  for (std::size_t idx = 0; idx + 1 < n; ++idx) {
    const NodeId u = order[idx];
    in_set.set(u);
    vol_s += g.degree(u);
    for (const HalfEdge& h : g.neighbors(u)) {
      if (g.latency(h.edge) > ell) continue;
      if (in_set.test(h.to))
        --cut;
      else
        ++cut;
    }
    const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
    if (vol_min == 0) continue;
    const double phi =
        static_cast<double>(cut) / static_cast<double>(vol_min);
    if (phi < best.phi) {
      best.phi = phi;
      best.argmin_cut = in_set;
    }
  }
  return best;
}

WeightedConductance weighted_conductance_auto(const WeightedGraph& g,
                                              std::size_t max_exact_nodes,
                                              int sweep_iterations, Rng& rng,
                                              bool* exact) {
  if (g.num_nodes() <= max_exact_nodes) {
    if (exact != nullptr) *exact = true;
    return weighted_conductance_exact(g, max_exact_nodes);
  }
  if (exact != nullptr) *exact = false;
  return weighted_conductance_sweep(g, sweep_iterations, rng);
}

WeightedConductance weighted_conductance_sweep(const WeightedGraph& g,
                                               int iterations, Rng& rng) {
  std::vector<Latency> levels;
  for (const Edge& e : g.edges()) levels.push_back(e.latency);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  if (levels.empty())
    throw std::invalid_argument("sweep: graph has no edges");
  std::vector<double> phi;
  phi.reserve(levels.size());
  for (Latency ell : levels)
    phi.push_back(weight_ell_conductance_sweep(g, ell, iterations, rng).phi);
  // The sweep bound need not be monotone in ell even though the true
  // φ_ℓ is nondecreasing; enforce monotonicity (a valid strengthening,
  // since φ_ℓ' <= φ_ℓ upper bounds for ℓ' >= ℓ remain upper bounds).
  for (std::size_t i = 1; i < phi.size(); ++i)
    phi[i] = std::max(phi[i], phi[i - 1]);
  return select_phi_star(std::move(levels), std::move(phi));
}

}  // namespace latgossip
