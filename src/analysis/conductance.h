#pragma once
// Weighted conductance (Definitions 1 and 2 of the paper).
//
// For U ⊆ V and integer ℓ:
//     φ_ℓ(U) = |E_ℓ(U, V\U)| / min(Vol(U), Vol(V\U))
// where E_ℓ(U, V\U) is the set of cut edges with latency <= ℓ and
// Vol(U) = Σ_{u∈U} deg(u). The weight-ℓ conductance is
// φ_ℓ(G) = min_U φ_ℓ(U); the weighted conductance φ*(G) is the φ_ℓ(G)
// maximizing φ_ℓ(G)/ℓ over ℓ, and ℓ* is the maximizing ℓ.
//
// Cuts are represented as util/bitset.h Bitsets (bit u = membership of
// node u), so volume and cut counting iterate packed words instead of
// vector<bool> bits.
//
// Exact computation enumerates all cuts via Gray code (feasible up to
// ~24 nodes); larger graphs use the spectral sweep bound (spectral.h) or
// the closed-form values of the constructed families.

#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace latgossip {

/// Number of cut edges with latency <= ell for the cut given by in_set.
/// Iterates the set side's adjacency (cost O(Vol(U)), not O(E)).
std::size_t cut_edges_leq(const WeightedGraph& g, const Bitset& in_set,
                          Latency ell);

/// φ_ℓ(U) for one cut (Definition 1). Requires a nontrivial cut; throws
/// otherwise (both sides must be nonempty and have positive volume).
double phi_ell_of_cut(const WeightedGraph& g, const Bitset& in_set,
                      Latency ell);

struct CutResult {
  double phi = 0.0;
  Bitset argmin_cut;  ///< a cut achieving the minimum
};

/// Exact φ_ℓ(G) by full cut enumeration. Throws if n > max_nodes (cost
/// is Θ(2^n · avg_deg)) or if the graph has an isolated node.
CutResult weight_ell_conductance_exact(const WeightedGraph& g, Latency ell,
                                       std::size_t max_nodes = 24);

/// Classical conductance = φ_ℓmax (all edges count).
CutResult conductance_exact(const WeightedGraph& g,
                            std::size_t max_nodes = 24);

struct WeightedConductance {
  std::vector<Latency> levels;  ///< distinct edge latencies, ascending
  std::vector<double> phi;      ///< φ_ℓ(G) at each level
  double phi_star = 0.0;        ///< Definition 2
  Latency ell_star = 1;         ///< the critical latency
};

/// Exact φ_ℓ for every distinct latency level, φ* and ℓ* (Definition 2),
/// in a single Gray-code enumeration.
WeightedConductance weighted_conductance_exact(const WeightedGraph& g,
                                               std::size_t max_nodes = 24);

/// φ* and ℓ* given a per-level φ oracle (used with approximate or
/// closed-form φ_ℓ values for large graphs). `levels` must be ascending,
/// `phi` the matching φ_ℓ values.
WeightedConductance select_phi_star(std::vector<Latency> levels,
                                    std::vector<double> phi);

}  // namespace latgossip
