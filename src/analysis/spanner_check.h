#pragma once
// Verification helpers for spanners (Lemma 13 / Theorem 14): stretch,
// size, and out-degree statistics. Recall S is an α-spanner of G if
// dist_S(u, v) <= α * dist_G(u, v) for all pairs.

#include "graph/digraph.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

struct SpannerStats {
  std::size_t num_arcs = 0;         ///< directed spanner size
  std::size_t undirected_edges = 0; ///< after dropping orientation
  std::size_t max_out_degree = 0;
  double avg_out_degree = 0.0;
  double max_stretch = 0.0;         ///< max over checked pairs
  bool connected = false;           ///< undirected spanner connected
};

/// Exact max stretch: runs Dijkstra from every node in both G and the
/// undirected spanner. Quadratic in n; use for n up to a few thousand.
SpannerStats check_spanner_exact(const WeightedGraph& g,
                                 const DirectedGraph& spanner);

/// Sampled max stretch from `num_sources` random sources.
SpannerStats check_spanner_sampled(const WeightedGraph& g,
                                   const DirectedGraph& spanner,
                                   std::size_t num_sources, Rng& rng);

}  // namespace latgossip
