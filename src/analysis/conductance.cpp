#include "analysis/conductance.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace latgossip {
namespace {

void check_exact_feasible(const WeightedGraph& g, std::size_t max_nodes) {
  const std::size_t n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("conductance: need >= 2 nodes");
  if (n > max_nodes)
    throw std::invalid_argument(
        "conductance: graph too large for exact enumeration");
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) == 0)
      throw std::invalid_argument("conductance: isolated node (volume 0)");
}

}  // namespace

std::size_t cut_edges_leq(const WeightedGraph& g, const Bitset& in_set,
                          Latency ell) {
  if (in_set.size() != g.num_nodes())
    throw std::invalid_argument("cut_edges_leq: membership size mismatch");
  // Walk the set side word by word; each cut edge is seen exactly once,
  // from its in-set endpoint (or twice if both endpoints are in-set, in
  // which case it is not a cut edge and not counted).
  std::size_t count = 0;
  const auto words = in_set.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const auto u = static_cast<NodeId>(
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w)));
      for (const HalfEdge& h : g.neighbors(u))
        if (!in_set.test(h.to) && g.latency(h.edge) <= ell) ++count;
      w &= w - 1;
    }
  }
  return count;
}

double phi_ell_of_cut(const WeightedGraph& g, const Bitset& in_set,
                      Latency ell) {
  const std::size_t vol_u = g.volume(in_set);
  const std::size_t vol_total = 2 * g.num_edges();
  const std::size_t vol_min = std::min(vol_u, vol_total - vol_u);
  if (vol_min == 0)
    throw std::invalid_argument("phi_ell_of_cut: trivial or zero-volume cut");
  return static_cast<double>(cut_edges_leq(g, in_set, ell)) /
         static_cast<double>(vol_min);
}

namespace {

/// Shared Gray-code cut sweep. Calls visit(vol_S, cut_counts_per_level)
/// for every nontrivial cut; `cut_counts[i]` is the number of cut edges
/// whose latency equals levels[i].
template <typename Visit>
void for_each_cut(const WeightedGraph& g, const std::vector<Latency>& levels,
                  Visit&& visit) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> level_of_edge(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto it =
        std::lower_bound(levels.begin(), levels.end(), g.latency(e));
    level_of_edge[e] = static_cast<std::size_t>(it - levels.begin());
  }

  Bitset in_set(n);
  std::vector<std::size_t> cut_counts(levels.size(), 0);
  std::size_t vol_s = 0;

  // Node 0 stays on the complement side; enumerate subsets of {1..n-1}
  // in binary-reflected Gray order so each step flips one node.
  const std::uint64_t total = std::uint64_t{1} << (n - 1);
  for (std::uint64_t s = 1; s < total; ++s) {
    const auto flip_node =
        static_cast<NodeId>(std::countr_zero(s) + 1);
    const bool joining = !in_set.test(flip_node);
    if (joining) {
      in_set.set(flip_node);
      vol_s += g.degree(flip_node);
    } else {
      in_set.reset(flip_node);
      vol_s -= g.degree(flip_node);
    }
    for (const HalfEdge& h : g.neighbors(flip_node)) {
      // After the flip, the edge is a cut edge iff the endpoints differ.
      if (in_set.test(h.to) != in_set.test(flip_node))
        ++cut_counts[level_of_edge[h.edge]];
      else
        --cut_counts[level_of_edge[h.edge]];
    }
    visit(vol_s, cut_counts, in_set);
  }
}

std::vector<Latency> distinct_levels(const WeightedGraph& g) {
  std::vector<Latency> levels;
  levels.reserve(g.num_edges());
  for (const Edge& e : g.edges()) levels.push_back(e.latency);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return levels;
}

}  // namespace

CutResult weight_ell_conductance_exact(const WeightedGraph& g, Latency ell,
                                       std::size_t max_nodes) {
  check_exact_feasible(g, max_nodes);
  const std::size_t vol_total = 2 * g.num_edges();
  CutResult best;
  best.phi = std::numeric_limits<double>::infinity();
  // Reuse the generic sweep with a two-bucket split: edges with latency
  // <= ell land at level 0, everything else at a sentinel level above
  // every latency in the graph.
  const Latency sentinel = std::max(g.max_latency(), ell) + 1;
  std::vector<Latency> levels{ell, sentinel};
  for_each_cut(g, levels,
               [&](std::size_t vol_s, const std::vector<std::size_t>& counts,
                   const Bitset& in_set) {
                 const std::size_t vol_min =
                     std::min(vol_s, vol_total - vol_s);
                 if (vol_min == 0) return;
                 const double phi = static_cast<double>(counts[0]) /
                                    static_cast<double>(vol_min);
                 if (phi < best.phi) {
                   best.phi = phi;
                   best.argmin_cut = in_set;
                 }
               });
  return best;
}

CutResult conductance_exact(const WeightedGraph& g, std::size_t max_nodes) {
  return weight_ell_conductance_exact(g, g.max_latency(), max_nodes);
}

WeightedConductance weighted_conductance_exact(const WeightedGraph& g,
                                               std::size_t max_nodes) {
  check_exact_feasible(g, max_nodes);
  const auto levels = distinct_levels(g);
  if (levels.empty())
    throw std::invalid_argument("conductance: graph has no edges");
  const std::size_t vol_total = 2 * g.num_edges();

  std::vector<double> best_phi(levels.size(),
                               std::numeric_limits<double>::infinity());
  for_each_cut(
      g, levels,
      [&](std::size_t vol_s, const std::vector<std::size_t>& counts,
          const Bitset&) {
        const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
        if (vol_min == 0) return;
        std::size_t prefix = 0;
        for (std::size_t i = 0; i < levels.size(); ++i) {
          prefix += counts[i];
          const double phi = static_cast<double>(prefix) /
                             static_cast<double>(vol_min);
          if (phi < best_phi[i]) best_phi[i] = phi;
        }
      });
  return select_phi_star(levels, std::move(best_phi));
}

WeightedConductance select_phi_star(std::vector<Latency> levels,
                                    std::vector<double> phi) {
  if (levels.size() != phi.size() || levels.empty())
    throw std::invalid_argument("select_phi_star: bad inputs");
  for (std::size_t i = 1; i < levels.size(); ++i)
    if (levels[i] <= levels[i - 1])
      throw std::invalid_argument("select_phi_star: levels must ascend");
  WeightedConductance wc;
  wc.levels = std::move(levels);
  wc.phi = std::move(phi);
  std::size_t best = 0;
  double best_ratio = wc.phi[0] / static_cast<double>(wc.levels[0]);
  for (std::size_t i = 1; i < wc.levels.size(); ++i) {
    const double ratio = wc.phi[i] / static_cast<double>(wc.levels[i]);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = i;
    }
  }
  wc.phi_star = wc.phi[best];
  wc.ell_star = wc.levels[best];
  return wc;
}

}  // namespace latgossip
