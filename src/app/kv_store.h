#pragma once
// A last-writer-wins replicated key-value store — the application payload
// for anti-entropy gossip (Demers et al.'s epidemic algorithms, the
// paper's motivating "distributed database replication" citation).
//
// Each entry carries a version and the writer's id; (version, writer)
// orders concurrent writes totally, so merging any two replica states is
// commutative, associative and idempotent (a state-based LWW-map CRDT):
// anti-entropy over ANY dissemination protocol converges.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace latgossip {

struct KvEntry {
  std::string key;
  std::string value;
  std::uint64_t version = 0;
  NodeId writer = kInvalidNode;

  /// LWW order: higher version wins; ties break on writer id.
  friend bool dominates(const KvEntry& a, const KvEntry& b) {
    if (a.version != b.version) return a.version > b.version;
    return a.writer > b.writer;
  }
};

class KvStore {
 public:
  explicit KvStore(NodeId owner) : owner_(owner) {}

  NodeId owner() const { return owner_; }
  std::size_t size() const { return entries_.size(); }

  /// Local write: bumps the version past anything seen for the key.
  void put(const std::string& key, const std::string& value) {
    auto it = entries_.find(key);
    const std::uint64_t next =
        it == entries_.end() ? 1 : it->second.version + 1;
    entries_[key] = KvEntry{key, value, next, owner_};
  }

  /// Merge one remote entry (LWW).
  void apply(const KvEntry& entry) {
    auto it = entries_.find(entry.key);
    if (it == entries_.end() || dominates(entry, it->second))
      entries_[entry.key] = entry;
  }

  /// Merge a whole snapshot.
  void merge(const std::vector<KvEntry>& snapshot) {
    for (const KvEntry& e : snapshot) apply(e);
  }

  /// Full-state snapshot (anti-entropy payload).
  std::vector<KvEntry> snapshot() const {
    std::vector<KvEntry> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(entry);
    return out;
  }

  const KvEntry* get(const std::string& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Order-independent fingerprint for convergence detection.
  std::uint64_t digest() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [key, e] : entries_) {
      std::uint64_t eh = 0x100001b3ULL;
      for (char c : e.key) eh = (eh ^ static_cast<unsigned char>(c)) * 31;
      for (char c : e.value) eh = (eh ^ static_cast<unsigned char>(c)) * 37;
      eh ^= e.version * 0x9e3779b97f4a7c15ULL;
      eh ^= e.writer;
      h ^= eh;  // XOR keeps it order-independent
      h *= 0x100000001b3ULL;
    }
    return h ^ entries_.size();
  }

  /// Approximate wire size of a snapshot, in bits.
  static std::size_t snapshot_bits(const std::vector<KvEntry>& snapshot) {
    std::size_t bits = 0;
    for (const KvEntry& e : snapshot)
      bits += 8 * (e.key.size() + e.value.size()) + 64 + 32;
    return bits;
  }

 private:
  NodeId owner_;
  std::map<std::string, KvEntry> entries_;
};

}  // namespace latgossip
