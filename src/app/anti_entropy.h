#pragma once
// Anti-entropy replication over push-pull gossip: every replica
// exchanges its full LWW store snapshot with a uniformly random neighbor
// each round (Demers et al.'s anti-entropy, in the paper's latency
// model). Because the store is a state-based CRDT, convergence follows
// from dissemination alone — and the time to converge is governed by
// exactly the quantities this paper studies (ℓ*/φ* for push-pull).

#include <optional>
#include <vector>

#include "app/kv_store.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {

class AntiEntropy {
 public:
  using Payload = std::vector<KvEntry>;

  /// `stores` holds one replica per node (moved in; retrievable after
  /// the run with take_stores()).
  AntiEntropy(const NetworkView& view, std::vector<KvStore> stores, Rng rng);

  static std::size_t payload_bits(const Payload& p) {
    return KvStore::snapshot_bits(p);
  }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  const std::vector<KvStore>& stores() const { return stores_; }
  std::vector<KvStore> take_stores() { return std::move(stores_); }

  /// All replicas hold identical state (by digest).
  bool converged() const;

 private:
  NetworkView view_;
  Rng rng_;
  std::vector<KvStore> stores_;
};

}  // namespace latgossip
