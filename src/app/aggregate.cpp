#include "app/aggregate.h"

#include "sim/dispatch.h"

#include <stdexcept>

namespace latgossip {

MinAggregation::MinAggregation(const NetworkView& view,
                               std::vector<std::int64_t> values, Rng rng)
    : view_(view), rng_(rng), current_(std::move(values)) {
  if (current_.size() != view.num_nodes())
    throw std::invalid_argument("aggregation: value count mismatch");
  if (current_.empty())
    throw std::invalid_argument("aggregation: need at least one node");
  global_min_ = *std::min_element(current_.begin(), current_.end());
  for (std::int64_t v : current_)
    if (v == global_min_) ++converged_count_;
}

std::optional<NodeId> MinAggregation::select_contact(NodeId u, Round) {
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  return neigh[rng_.uniform(neigh.size())].to;
}

MinAggregation::Payload MinAggregation::capture_payload(NodeId u,
                                                        Round) const {
  return current_[u];
}

void MinAggregation::deliver(NodeId u, NodeId, Payload payload, EdgeId,
                             Round, Round) {
  if (payload < current_[u]) {
    const bool was_min = (current_[u] == global_min_);
    current_[u] = payload;
    if (!was_min && payload == global_min_) ++converged_count_;
  }
}

bool MinAggregation::done(Round) const {
  return converged_count_ == current_.size();
}

LeaderElectionResult elect_min_leader(const WeightedGraph& g, Rng rng,
                                      Round max_rounds) {
  LeaderElectionResult result;
  if (g.num_nodes() == 0) return result;
  std::vector<std::int64_t> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    ids[v] = static_cast<std::int64_t>(v);
  NetworkView view(g, /*latencies_known=*/false);
  MinAggregation proto(view, std::move(ids), rng);
  SimOptions opts;
  opts.max_rounds = max_rounds;
  const SimResult sim = dispatch_gossip(g, proto, opts);
  result.leader = static_cast<NodeId>(proto.global_min());
  result.rounds = sim.rounds;
  result.completed = sim.completed;
  return result;
}

}  // namespace latgossip
