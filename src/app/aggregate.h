#pragma once
// Gossip aggregation: computing a global aggregate of per-node values by
// exchanging partial aggregates (the "sensor network data aggregation"
// motivation). Min/max/sum-of-known-set aggregates are idempotent under
// our bidirectional exchanges, so any dissemination protocol computes
// them; this protocol piggybacks the aggregate on push-pull.
//
// MinAggregation doubles as leader election: the minimum node id wins.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {

class MinAggregation {
 public:
  using Payload = std::int64_t;

  /// Each node starts with values[u]; converges when every node knows
  /// the global minimum.
  MinAggregation(const NetworkView& view, std::vector<std::int64_t> values,
                 Rng rng);

  static std::size_t payload_bits(const Payload&) { return 64; }

  std::optional<NodeId> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  std::int64_t current(NodeId u) const { return current_[u]; }
  std::int64_t global_min() const { return global_min_; }

 private:
  NetworkView view_;
  Rng rng_;
  std::vector<std::int64_t> current_;
  std::int64_t global_min_ = 0;
  std::size_t converged_count_ = 0;
};

/// Convenience: elect the minimum node id over the graph with push-pull;
/// returns the rounds taken (every node ends up knowing the leader).
struct LeaderElectionResult {
  NodeId leader = kInvalidNode;
  Round rounds = 0;
  bool completed = false;
};
LeaderElectionResult elect_min_leader(const WeightedGraph& g, Rng rng,
                                      Round max_rounds = 1'000'000);

}  // namespace latgossip
