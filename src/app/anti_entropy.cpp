#include "app/anti_entropy.h"

#include <stdexcept>

namespace latgossip {

AntiEntropy::AntiEntropy(const NetworkView& view, std::vector<KvStore> stores,
                         Rng rng)
    : view_(view), rng_(rng), stores_(std::move(stores)) {
  if (stores_.size() != view.num_nodes())
    throw std::invalid_argument("anti-entropy: store count mismatch");
}

std::optional<NodeId> AntiEntropy::select_contact(NodeId u, Round) {
  const auto neigh = view_.neighbors(u);
  if (neigh.empty()) return std::nullopt;
  return neigh[rng_.uniform(neigh.size())].to;
}

AntiEntropy::Payload AntiEntropy::capture_payload(NodeId u, Round) const {
  return stores_[u].snapshot();
}

void AntiEntropy::deliver(NodeId u, NodeId, Payload payload, EdgeId, Round,
                          Round) {
  stores_[u].merge(payload);
}

bool AntiEntropy::done(Round) const { return converged(); }

bool AntiEntropy::converged() const {
  if (stores_.empty()) return true;
  const std::uint64_t reference = stores_.front().digest();
  for (const KvStore& s : stores_)
    if (s.digest() != reference) return false;
  return true;
}

}  // namespace latgossip
