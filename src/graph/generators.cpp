#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "graph/builder.h"

namespace latgossip {
namespace {

[[noreturn]] void fail_attempts(const char* what) {
  throw std::runtime_error(std::string(what) +
                           ": no connected sample within attempt budget");
}

/// Salt for retrying a seeded streaming generator: attempt 0 keeps the
/// caller's seed verbatim (determinism regression tests rely on this).
std::uint64_t salted(std::uint64_t seed, int attempt) {
  return seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt);
}

}  // namespace

WeightedGraph make_path(std::size_t n) {
  if (n == 0) throw std::invalid_argument("path: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

WeightedGraph make_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle: n must be >= 3");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    b.add_edge(i, static_cast<NodeId>((i + 1) % n));
  return b.build();
}

WeightedGraph make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star: n must be >= 2");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

WeightedGraph make_clique(std::size_t n) {
  if (n == 0) throw std::invalid_argument("clique: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  return b.build();
}

WeightedGraph make_complete_bipartite(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0)
    throw std::invalid_argument("bipartite: both sides must be nonempty");
  GraphBuilder builder(a + b);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b; ++j)
      builder.add_edge(i, static_cast<NodeId>(a + j));
  return builder.build();
}

WeightedGraph make_grid(std::size_t rows, std::size_t cols, bool wrap) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("grid: dimensions must be positive");
  if (wrap && (rows < 3 || cols < 3))
    throw std::invalid_argument("torus: dimensions must be >= 3");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (wrap && c + 1 == cols) b.add_edge(id(r, c), id(r, 0));
      if (wrap && r + 1 == rows) b.add_edge(id(r, c), id(0, c));
    }
  }
  return b.build();
}

WeightedGraph make_hypercube(std::size_t dim) {
  if (dim == 0 || dim > 24)
    throw std::invalid_argument("hypercube: dim must be in [1, 24]");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t bit = 0; bit < dim; ++bit) {
      const std::size_t v = u ^ (std::size_t{1} << bit);
      if (u < v)
        b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  return b.build();
}

WeightedGraph make_binary_tree(std::size_t n) {
  if (n == 0) throw std::invalid_argument("tree: n must be >= 1");
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(static_cast<NodeId>((i - 1) / 2), static_cast<NodeId>(i));
  return b.build();
}

WeightedGraph make_erdos_renyi(std::size_t n, double p, Rng& rng,
                               int max_attempts) {
  if (n == 0) throw std::invalid_argument("er: n must be >= 1");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("er: p out of [0,1]");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder b(n);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.bernoulli(p)) b.add_edge(i, j);
    auto g = b.build();
    if (g.is_connected()) return g;
  }
  fail_attempts("erdos_renyi");
}

WeightedGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng,
                                  int max_attempts) {
  if (d >= n) throw std::invalid_argument("regular: d must be < n");
  if ((n * d) % 2 != 0)
    throw std::invalid_argument("regular: n*d must be even");
  if (d == 0) throw std::invalid_argument("regular: d must be >= 1");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: pair up n*d stubs uniformly at random, reject
    // the whole sample on a self-loop or duplicate edge.
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    GraphBuilder b(n);
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v || b.has_edge(u, v)) {
        ok = false;
        break;
      }
      b.add_edge(u, v);
    }
    if (!ok) continue;
    auto g = b.build();
    if (g.is_connected()) return g;
  }
  // Whole-sample rejection stalls where simple pairings are rare
  // (P(simple) ~ exp(-(d²-1)/4) per attempt, worse at small n where a
  // collision is near-certain). Instead of failing, finish the job with
  // the repair-by-swap sampler — same stub-pairing distribution up to
  // repair bias of the same order (see make_random_regular_streaming).
  // Only reached when every rejection attempt failed, so historical
  // sample streams for succeeding (n, d, seed) combos are untouched.
  return make_random_regular_streaming(n, d, rng(), max_attempts);
}

WeightedGraph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                                  Rng& rng, int max_attempts) {
  if (n < 4) throw std::invalid_argument("ws: n must be >= 4");
  if (k == 0 || 2 * k >= n)
    throw std::invalid_argument("ws: need 1 <= k < n/2");
  if (beta < 0.0 || beta > 1.0)
    throw std::invalid_argument("ws: beta out of [0,1]");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder b(n);
    // Ring lattice: each node connects to its k clockwise neighbors,
    // each such edge rewired (re-targeted) with probability beta.
    for (NodeId u = 0; u < n; ++u) {
      for (std::size_t j = 1; j <= k; ++j) {
        NodeId v = static_cast<NodeId>((u + j) % n);
        if (rng.bernoulli(beta)) {
          // Pick a random non-self target avoiding duplicates.
          for (int tries = 0; tries < 32; ++tries) {
            const NodeId w = static_cast<NodeId>(rng.uniform(n));
            if (w != u && !b.has_edge(u, w)) {
              v = w;
              break;
            }
          }
        }
        if (v != u && !b.has_edge(u, v)) b.add_edge(u, v);
      }
    }
    auto g = b.build();
    if (g.is_connected()) return g;
  }
  fail_attempts("watts_strogatz");
}

WeightedGraph make_random_geometric(
    std::size_t n, double radius, Rng& rng,
    std::vector<std::pair<double, double>>* coords, int max_attempts) {
  if (n == 0) throw std::invalid_argument("rgg: n must be >= 1");
  if (radius <= 0.0) throw std::invalid_argument("rgg: radius must be > 0");
  const double r2 = radius * radius;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<std::pair<double, double>> pts(n);
    for (auto& p : pts) p = {rng.uniform_double(), rng.uniform_double()};
    GraphBuilder b(n);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j) {
        const double dx = pts[i].first - pts[j].first;
        const double dy = pts[i].second - pts[j].second;
        if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
      }
    auto g = b.build();
    if (g.is_connected()) {
      if (coords != nullptr) *coords = std::move(pts);
      return g;
    }
  }
  fail_attempts("random_geometric");
}

WeightedGraph make_ring_of_cliques(std::size_t num_cliques,
                                   std::size_t clique_size,
                                   Latency bridge_latency) {
  if (num_cliques < 3)
    throw std::invalid_argument("ring_of_cliques: need >= 3 cliques");
  if (clique_size < 2)
    throw std::invalid_argument("ring_of_cliques: clique size >= 2");
  GraphBuilder b(num_cliques * clique_size);
  auto id = [clique_size](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(c * clique_size + i);
  };
  for (std::size_t c = 0; c < num_cliques; ++c)
    for (std::size_t i = 0; i < clique_size; ++i)
      for (std::size_t j = i + 1; j < clique_size; ++j)
        b.add_edge(id(c, i), id(c, j));
  // Bridge: last node of clique c to first node of clique c+1.
  for (std::size_t c = 0; c < num_cliques; ++c)
    b.add_edge(id(c, clique_size - 1), id((c + 1) % num_cliques, 0),
               bridge_latency);
  return b.build();
}

WeightedGraph make_dumbbell(std::size_t clique_size, std::size_t path_len,
                            Latency path_latency) {
  if (clique_size < 2)
    throw std::invalid_argument("dumbbell: clique size >= 2");
  const std::size_t n = 2 * clique_size + (path_len > 0 ? path_len - 1 : 0);
  GraphBuilder b(n);
  auto left = [](std::size_t i) { return static_cast<NodeId>(i); };
  auto right = [&](std::size_t i) {
    return static_cast<NodeId>(clique_size + (path_len > 0 ? path_len - 1 : 0) + i);
  };
  for (std::size_t i = 0; i < clique_size; ++i)
    for (std::size_t j = i + 1; j < clique_size; ++j) {
      b.add_edge(left(i), left(j));
      b.add_edge(right(i), right(j));
    }
  if (path_len == 0) throw std::invalid_argument("dumbbell: path_len >= 1");
  // Path of path_len edges from last left node to first right node via
  // path_len-1 intermediate nodes.
  NodeId prev = left(clique_size - 1);
  for (std::size_t i = 0; i < path_len - 1; ++i) {
    const NodeId mid = static_cast<NodeId>(clique_size + i);
    b.add_edge(prev, mid, path_latency);
    prev = mid;
  }
  b.add_edge(prev, right(0), path_latency);
  return b.build();
}

WeightedGraph make_barabasi_albert(std::size_t n, std::size_t attach,
                                   Rng& rng) {
  if (attach < 1) throw std::invalid_argument("ba: attach must be >= 1");
  if (n <= attach)
    throw std::invalid_argument("ba: n must exceed the attach count");
  GraphBuilder b(n);
  // Seed clique on the first `attach` (or at least 2) nodes.
  const std::size_t seed_nodes = std::max<std::size_t>(attach, 2);
  for (NodeId i = 0; i < seed_nodes; ++i)
    for (NodeId j = i + 1; j < seed_nodes; ++j) b.add_edge(i, j);
  // Degree-proportional sampling via the repeated-endpoint list.
  std::vector<NodeId> endpoints;
  for (const Edge& e : b.edges()) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  for (NodeId v = static_cast<NodeId>(seed_nodes); v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < attach) {
      const NodeId cand = endpoints[rng.uniform(endpoints.size())];
      bool dup = (cand == v);
      for (NodeId c : chosen) dup = dup || (c == cand);
      if (!dup) chosen.push_back(cand);
    }
    for (NodeId c : chosen) {
      b.add_edge(v, c);
      endpoints.push_back(v);
      endpoints.push_back(c);
    }
  }
  return b.build();
}

WeightedGraph make_kary_tree(std::size_t n, std::size_t b) {
  if (n == 0) throw std::invalid_argument("kary: n must be >= 1");
  if (b < 2) throw std::invalid_argument("kary: branching must be >= 2");
  GraphBuilder builder(n);
  for (std::size_t i = 1; i < n; ++i)
    builder.add_edge(static_cast<NodeId>((i - 1) / b), static_cast<NodeId>(i));
  return builder.build();
}

WeightedGraph make_ring_streaming(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: n must be >= 3");
  return build_csr_streaming(n, [n](auto&& edge) {
    for (NodeId i = 0; i < n; ++i)
      edge(i, static_cast<NodeId>((i + 1) % n));
  });
}

WeightedGraph make_torus_streaming(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("torus: dimensions must be >= 3");
  return build_csr_streaming(rows * cols, [rows, cols](auto&& edge) {
    auto id = [cols](std::size_t r, std::size_t c) {
      return static_cast<NodeId>(r * cols + c);
    };
    // Same emission order as make_grid(rows, cols, /*wrap=*/true).
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (c + 1 < cols) edge(id(r, c), id(r, c + 1));
        if (r + 1 < rows) edge(id(r, c), id(r + 1, c));
        if (c + 1 == cols) edge(id(r, c), id(r, 0));
        if (r + 1 == rows) edge(id(r, c), id(0, c));
      }
    }
  });
}

namespace {

/// Walk the ordered pair sequence (0,1), (0,2), ..., (1,2), ... with
/// geometric skips: each present pair is found by drawing the number of
/// absent pairs preceding it, skip = floor(log(1-u) / log(1-p)). Rng is
/// taken by value so both streaming passes replay identical draws.
/// (Rng::geometric is a Bernoulli loop — O(1/p) per draw — so the skip
/// is computed in closed form here instead.)
template <typename Sink>
void emit_erdos_renyi(std::size_t n, double p, Rng rng, Sink&& edge) {
  if (n < 2 || p <= 0.0) return;
  if (p >= 1.0) {
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j) edge(i, j);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::size_t i = 0, j = 1;  // next candidate pair
  for (;;) {
    const double u = rng.uniform_double();
    const double skip_d = std::floor(std::log1p(-u) / log1mp);
    std::uint64_t skip = skip_d > 1e18 ? (std::uint64_t{1} << 62)
                                       : static_cast<std::uint64_t>(skip_d);
    while (i + 1 < n && skip >= n - j) {  // cross whole rows
      skip -= n - j;
      ++i;
      j = i + 1;
    }
    if (i + 1 >= n) return;
    j += skip;
    edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    if (++j >= n) {
      ++i;
      j = i + 1;
    }
  }
}

/// Repair a configuration-model pairing in place: find bad pairs
/// (self-loops, duplicate edges), swap each one's second stub with a
/// random pair's second stub (degree-preserving), re-validate. The
/// expected number of bad pairs is O(d^2), independent of n, so this
/// converges in a handful of rounds. Returns false if it does not.
bool repair_pairing(std::vector<NodeId>& stubs, Rng& rng) {
  const std::size_t num_pairs = stubs.size() / 2;
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed;
  std::vector<std::size_t> bad;
  for (int round = 0; round < 64; ++round) {
    keyed.clear();
    keyed.reserve(num_pairs);
    bad.clear();
    for (std::size_t k = 0; k < num_pairs; ++k) {
      NodeId u = stubs[2 * k], v = stubs[2 * k + 1];
      if (u == v) {
        bad.push_back(k);
        continue;
      }
      if (u > v) std::swap(u, v);
      keyed.emplace_back((static_cast<std::uint64_t>(u) << 32) | v, k);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t t = 1; t < keyed.size(); ++t)
      if (keyed[t].first == keyed[t - 1].first) bad.push_back(keyed[t].second);
    if (bad.empty()) return true;
    for (std::size_t k : bad)
      std::swap(stubs[2 * k + 1], stubs[2 * rng.uniform(num_pairs) + 1]);
  }
  return false;
}

/// Replay of make_barabasi_albert's exact sampling loop against a plain
/// endpoints list instead of a GraphBuilder. Rng by value: calling this
/// twice with the same seed emits the identical edge sequence.
template <typename Sink>
void emit_barabasi_albert(std::size_t n, std::size_t attach, Rng rng,
                          Sink&& edge) {
  const std::size_t seed_nodes = std::max<std::size_t>(attach, 2);
  std::vector<NodeId> endpoints;
  for (NodeId i = 0; i < seed_nodes; ++i)
    for (NodeId j = i + 1; j < seed_nodes; ++j) {
      edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  std::vector<NodeId> chosen;
  for (NodeId v = static_cast<NodeId>(seed_nodes); v < n; ++v) {
    chosen.clear();
    while (chosen.size() < attach) {
      const NodeId cand = endpoints[rng.uniform(endpoints.size())];
      bool dup = (cand == v);
      for (NodeId c : chosen) dup = dup || (c == cand);
      if (!dup) chosen.push_back(cand);
    }
    for (NodeId c : chosen) {
      edge(v, c);
      endpoints.push_back(v);
      endpoints.push_back(c);
    }
  }
}

}  // namespace

WeightedGraph make_erdos_renyi_streaming(std::size_t n, double p,
                                         std::uint64_t seed,
                                         int max_attempts) {
  if (n == 0) throw std::invalid_argument("er: n must be >= 1");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("er: p out of [0,1]");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const Rng rng(salted(seed, attempt));
    auto g = build_csr_streaming(n, [n, p, &rng](auto&& edge) {
      emit_erdos_renyi(n, p, rng, edge);  // Rng copied: both passes replay
    });
    if (g.is_connected()) return g;
  }
  fail_attempts("erdos_renyi_streaming");
}

WeightedGraph make_random_regular_streaming(std::size_t n, std::size_t d,
                                            std::uint64_t seed,
                                            int max_attempts) {
  if (d >= n) throw std::invalid_argument("regular: d must be < n");
  if ((n * d) % 2 != 0)
    throw std::invalid_argument("regular: n*d must be even");
  if (d == 0) throw std::invalid_argument("regular: d must be >= 1");
  std::vector<NodeId> stubs;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Rng rng(salted(seed, attempt));
    stubs.clear();
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    if (!repair_pairing(stubs, rng)) continue;
    auto g = build_csr_streaming(n, [&stubs](auto&& edge) {
      for (std::size_t k = 0; k + 1 < stubs.size(); k += 2)
        edge(stubs[k], stubs[k + 1]);
    });
    if (g.is_connected()) return g;
  }
  fail_attempts("random_regular_streaming");
}

WeightedGraph make_preferential_attachment_streaming(std::size_t n,
                                                     std::size_t attach,
                                                     std::uint64_t seed) {
  if (attach < 1) throw std::invalid_argument("ba: attach must be >= 1");
  if (n <= attach)
    throw std::invalid_argument("ba: n must exceed the attach count");
  const Rng rng(seed);
  return build_csr_streaming(n, [n, attach, &rng](auto&& edge) {
    emit_barabasi_albert(n, attach, rng, edge);  // Rng copied per pass
  });
}

WeightedGraph make_path_of_cliques(std::size_t num_cliques,
                                   std::size_t clique_size,
                                   Latency bridge_latency) {
  if (num_cliques < 2)
    throw std::invalid_argument("path_of_cliques: need >= 2 cliques");
  if (clique_size < 2)
    throw std::invalid_argument("path_of_cliques: clique size >= 2");
  GraphBuilder b(num_cliques * clique_size);
  auto id = [clique_size](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(c * clique_size + i);
  };
  for (std::size_t c = 0; c < num_cliques; ++c)
    for (std::size_t i = 0; i < clique_size; ++i)
      for (std::size_t j = i + 1; j < clique_size; ++j)
        b.add_edge(id(c, i), id(c, j));
  for (std::size_t c = 0; c + 1 < num_cliques; ++c)
    b.add_edge(id(c, clique_size - 1), id(c + 1, 0), bridge_latency);
  return b.build();
}

}  // namespace latgossip
