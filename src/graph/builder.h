#pragma once
// Mutable construction phase for WeightedGraph.
//
// GraphBuilder is the only way to make a graph with edges: it accepts
// add_edge() in any order, validates eagerly (self-loops, out-of-range
// endpoints, duplicate edges in either orientation, latency < 1 — each
// throws std::invalid_argument / std::out_of_range and leaves the
// builder unchanged), and build() freezes the accumulated edge list
// into the immutable CSR WeightedGraph (graph.h).
//
// Edge ids are assigned in insertion order and survive build()
// unchanged — constructions that encode meaning in edge ids (the
// guessing gadget's row-major cross edges) rely on this. Adjacency
// order does NOT survive: build() sorts every adjacency slice by
// neighbor id, so the finished graph is independent of insertion order
// (covered by graph_builder_test).
//
// The duplicate-edge hash index lives here, in the construction phase,
// not in WeightedGraph: the finished graph answers find_edge by binary
// search and carries no hash tables.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace latgossip {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Start a graph on `n` isolated nodes.
  explicit GraphBuilder(std::size_t n);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Append one isolated node; returns its id.
  NodeId add_node();

  /// Add undirected edge {u, v} with the given latency.
  /// Throws on self-loops, out-of-range endpoints, duplicate edges, or
  /// latency < 1. Returns the new edge's id (== insertion index).
  EdgeId add_edge(NodeId u, NodeId v, Latency latency = 1);

  /// Edge id of {u, v} if already added (O(1) hash probe — generators
  /// use this for rejection sampling mid-build).
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v).has_value(); }

  /// Re-assign the latency of an already-added edge (gadget builders
  /// add first, reveal fast latencies after). Throws if latency < 1.
  void set_latency(EdgeId e, Latency latency);

  /// Edges added so far, in insertion order (EdgeId == index).
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Freeze into an immutable CSR WeightedGraph. The builder is left
  /// empty (0 nodes, 0 edges) and may be reused for a new graph.
  WeightedGraph build();

 private:
  static std::uint64_t key(NodeId u, NodeId v) noexcept {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  void check_node(NodeId u) const {
    if (u >= num_nodes_) throw std::out_of_range("node id out of range");
  }

  std::size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;
};

/// One-shot convenience: build a graph from a fixed edge list.
///     auto g = build_graph(4, {{0, 1}, {1, 2, 5}});
/// (Edge latency defaults to 1.)
WeightedGraph build_graph(std::size_t n, std::initializer_list<Edge> edges);

/// Two-pass streaming CSR construction for generators that can emit
/// their edge stream more than once (deterministic families, or random
/// families replayed from a stored pairing / a reseeded generator).
///
/// GraphBuilder accumulates a vector<Edge> plus an unordered_map
/// duplicate index before building — at a million nodes that transient
/// state dwarfs the finished graph (the hash index alone is several
/// hundred MB) and walls generation out of laptop RAM (ROADMAP item 2).
/// StreamingCsrBuilder never holds an intermediate edge list: pass 1
/// streams the edges once and only counts degrees; the three final CSR
/// arrays are then allocated at their exact sizes, and pass 2 streams
/// the same edges again, scattering half-edges straight into their
/// slices. Validation moves to the end: after the per-slice neighbor
/// sort, duplicates are adjacent and one linear scan rejects them
/// (self-loops and range errors are still caught at emit time).
///
/// Usage (or use build_csr_streaming below):
///     StreamingCsrBuilder b(n);
///     for (...) b.count_edge(u, v);      // pass 1
///     b.finish_count();
///     for (...) b.fill_edge(u, v, lat);  // pass 2, same edges, same order
///     WeightedGraph g = b.build();
///
/// Edge ids equal emission order of pass 2 (matching GraphBuilder's
/// insertion-order contract), so a streaming generator that emits the
/// same edge sequence as its edge-list twin produces a bit-identical
/// graph.
class StreamingCsrBuilder {
 public:
  explicit StreamingCsrBuilder(std::size_t n);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  /// Edges counted (pass 1) or filled (pass 2) so far.
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Pass 1: account for undirected edge {u, v}. Throws on self-loops
  /// or out-of-range endpoints (duplicates are caught in build()).
  void count_edge(NodeId u, NodeId v);

  /// Seal pass 1: allocate the CSR arrays at their exact final sizes.
  void finish_count();

  /// Pass 2: place undirected edge {u, v}. Must replay exactly the
  /// edges of pass 1 (any order); a count mismatch throws in build().
  void fill_edge(NodeId u, NodeId v, Latency latency = 1);

  /// Freeze into the immutable CSR WeightedGraph: sorts every adjacency
  /// slice by neighbor id and rejects duplicate edges (adjacent after
  /// the sort). The builder is left empty and may be reused.
  WeightedGraph build();

 private:
  enum class Stage { kCounting, kFilling };

  void check_edge_nodes(NodeId u, NodeId v) const;

  std::size_t num_nodes_ = 0;
  std::size_t num_edges_ = 0;        ///< current pass's running count
  std::size_t counted_edges_ = 0;    ///< sealed pass-1 total
  Stage stage_ = Stage::kCounting;
  std::vector<std::size_t> offsets_;  ///< degree counts, then prefix sums
  std::vector<std::size_t> cursor_;   ///< next free slot per slice
  std::vector<HalfEdge> half_edges_;
  std::vector<Edge> edges_;
  std::size_t max_degree_ = 0;
};

/// One-shot streaming build: `emit` is invoked twice with an edge sink —
/// first over a counting sink, then over a filling sink — and must
/// produce the same edge multiset both times (deterministic generators
/// replay their loop; seeded generators reconstruct their RNG).
///     auto g = build_csr_streaming(n, [&](auto&& edge) {
///       for (NodeId i = 0; i + 1 < n; ++i) edge(i, i + 1, 1);
///     });
template <typename EmitFn>
WeightedGraph build_csr_streaming(std::size_t n, EmitFn&& emit) {
  StreamingCsrBuilder b(n);
  emit([&b](NodeId u, NodeId v, Latency latency = 1) {
    (void)latency;
    b.count_edge(u, v);
  });
  b.finish_count();
  emit([&b](NodeId u, NodeId v, Latency latency = 1) {
    b.fill_edge(u, v, latency);
  });
  return b.build();
}

}  // namespace latgossip
