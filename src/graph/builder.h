#pragma once
// Mutable construction phase for WeightedGraph.
//
// GraphBuilder is the only way to make a graph with edges: it accepts
// add_edge() in any order, validates eagerly (self-loops, out-of-range
// endpoints, duplicate edges in either orientation, latency < 1 — each
// throws std::invalid_argument / std::out_of_range and leaves the
// builder unchanged), and build() freezes the accumulated edge list
// into the immutable CSR WeightedGraph (graph.h).
//
// Edge ids are assigned in insertion order and survive build()
// unchanged — constructions that encode meaning in edge ids (the
// guessing gadget's row-major cross edges) rely on this. Adjacency
// order does NOT survive: build() sorts every adjacency slice by
// neighbor id, so the finished graph is independent of insertion order
// (covered by graph_builder_test).
//
// The duplicate-edge hash index lives here, in the construction phase,
// not in WeightedGraph: the finished graph answers find_edge by binary
// search and carries no hash tables.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace latgossip {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Start a graph on `n` isolated nodes.
  explicit GraphBuilder(std::size_t n);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Append one isolated node; returns its id.
  NodeId add_node();

  /// Add undirected edge {u, v} with the given latency.
  /// Throws on self-loops, out-of-range endpoints, duplicate edges, or
  /// latency < 1. Returns the new edge's id (== insertion index).
  EdgeId add_edge(NodeId u, NodeId v, Latency latency = 1);

  /// Edge id of {u, v} if already added (O(1) hash probe — generators
  /// use this for rejection sampling mid-build).
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v).has_value(); }

  /// Re-assign the latency of an already-added edge (gadget builders
  /// add first, reveal fast latencies after). Throws if latency < 1.
  void set_latency(EdgeId e, Latency latency);

  /// Edges added so far, in insertion order (EdgeId == index).
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Freeze into an immutable CSR WeightedGraph. The builder is left
  /// empty (0 nodes, 0 edges) and may be reused for a new graph.
  WeightedGraph build();

 private:
  static std::uint64_t key(NodeId u, NodeId v) noexcept {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  void check_node(NodeId u) const {
    if (u >= num_nodes_) throw std::out_of_range("node id out of range");
  }

  std::size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;
};

/// One-shot convenience: build a graph from a fixed edge list.
///     auto g = build_graph(4, {{0, 1}, {1, 2, 5}});
/// (Edge latency defaults to 1.)
WeightedGraph build_graph(std::size_t n, std::initializer_list<Edge> edges);

}  // namespace latgossip
