#include "graph/gadgets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.h"

namespace latgossip {

TargetSet make_singleton_target(std::size_t m, Rng& rng) {
  if (m == 0) throw std::invalid_argument("target: m must be >= 1");
  return {{rng.uniform(m), rng.uniform(m)}};
}

TargetSet make_random_p_target(std::size_t m, double p, Rng& rng) {
  if (m == 0) throw std::invalid_argument("target: m must be >= 1");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("target: p out of [0,1]");
  TargetSet t;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      if (rng.bernoulli(p)) t.emplace_back(i, j);
  return t;
}

GuessingGadget make_guessing_gadget(std::size_t m, TargetSet target,
                                    Latency fast_latency,
                                    Latency slow_latency, bool symmetric) {
  if (m < 2) throw std::invalid_argument("gadget: m must be >= 2");
  if (fast_latency < 1 || slow_latency < fast_latency)
    throw std::invalid_argument("gadget: need 1 <= fast <= slow");
  for (const auto& [i, j] : target)
    if (i >= m || j >= m)
      throw std::invalid_argument("gadget: target index out of range");

  const auto left = [](std::size_t i) { return static_cast<NodeId>(i); };
  const auto right = [m](std::size_t j) { return static_cast<NodeId>(m + j); };

  GraphBuilder b(2 * m);
  // Cross edges first (row-major) so edge id of (i, j) is i*m + j —
  // build() preserves insertion-order edge ids.
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      b.add_edge(left(i), right(j), slow_latency);
  for (const auto& [i, j] : target)
    b.set_latency(static_cast<EdgeId>(i * m + j), fast_latency);

  // Clique on L (always) and on R (symmetric variant), latency 1.
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      b.add_edge(left(i), left(j), 1);
  if (symmetric)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = i + 1; j < m; ++j)
        b.add_edge(right(i), right(j), 1);

  return GuessingGadget{b.build(),    m,            symmetric,
                        fast_latency, slow_latency, std::move(target)};
}

Theorem6Network make_theorem6_network(std::size_t n, std::size_t delta,
                                      Rng& rng) {
  if (delta < 2) throw std::invalid_argument("thm6: delta must be >= 2");
  if (n < 2 * delta)
    throw std::invalid_argument("thm6: need n >= 2*delta");
  // Gadget G(2*delta, |T|=1): m = delta per side; slow latency = n as in
  // the paper ("all other cross edges are assigned latency n").
  auto gadget = make_guessing_gadget(
      delta, make_singleton_target(delta, rng), /*fast=*/1,
      /*slow=*/static_cast<Latency>(n), /*symmetric=*/false);

  GraphBuilder b(n);
  // Copy gadget edges into the n-node graph (same node ids 0..2delta-1,
  // same edge ids — the gadget's cross-edge id arithmetic still holds).
  for (const Edge& e : gadget.graph.edges()) b.add_edge(e.u, e.v, e.latency);
  // Clique on the remaining n - 2*delta nodes, one of which attaches to
  // gadget node 0 (a left vertex).
  const auto first_clique = static_cast<NodeId>(2 * delta);
  for (NodeId i = first_clique; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j, 1);
  if (first_clique < n) b.add_edge(first_clique, 0, 1);
  return Theorem6Network{b.build(), std::move(gadget), delta};
}

Theorem7Network make_theorem7_network(std::size_t n, Latency ell, double phi,
                                      Rng& rng) {
  if (n < 2) throw std::invalid_argument("thm7: n must be >= 2");
  if (ell < 1 || static_cast<std::size_t>(ell) > n)
    throw std::invalid_argument("thm7: need 1 <= ell <= n");
  if (phi <= 0.0 || phi > 0.5)
    throw std::invalid_argument("thm7: need 0 < phi <= 1/2");
  const auto slow = static_cast<Latency>(n);
  if (ell >= slow)
    throw std::invalid_argument("thm7: ell must be < n (the slow latency)");
  Theorem7Network net{
      make_guessing_gadget(n, make_random_p_target(n, phi, rng),
                           /*fast=*/ell, /*slow=*/slow, /*symmetric=*/false),
      ell, phi};
  return net;
}

double LayeredRing::analytic_phi_ell_cut() const {
  const double s = static_cast<double>(layer_size);
  const double total = static_cast<double>(num_layers * layer_size);
  // Halving cut that splits the ring into two contiguous arcs cuts two
  // layer boundaries: 2 s^2 bipartite edges of latency <= cross_latency.
  return 2.0 * s * s / ((total / 2.0) * (3.0 * s - 1.0));
}

LayeredRing make_layered_ring(std::size_t num_layers, std::size_t layer_size,
                              Latency cross_latency, Rng& rng) {
  if (num_layers < 3)
    throw std::invalid_argument("ring: need >= 3 layers");
  if (layer_size < 2)
    throw std::invalid_argument("ring: layer size must be >= 2");
  if (cross_latency < 1)
    throw std::invalid_argument("ring: cross latency must be >= 1");
  const auto node = [layer_size](std::size_t layer, std::size_t index) {
    return static_cast<NodeId>(layer * layer_size + index);
  };
  GraphBuilder b(num_layers * layer_size);
  // Cliques within each layer, latency 1.
  for (std::size_t a = 0; a < num_layers; ++a)
    for (std::size_t i = 0; i < layer_size; ++i)
      for (std::size_t j = i + 1; j < layer_size; ++j)
        b.add_edge(node(a, i), node(a, j), 1);
  // Complete bipartite gadget between consecutive layers; one uniformly
  // random fast (latency 1) cross edge per pair, the rest cross_latency.
  std::vector<EdgeId> fast_cross_edges;
  fast_cross_edges.reserve(num_layers);
  for (std::size_t a = 0; a < num_layers; ++a) {
    const std::size_t bb = (a + 1) % num_layers;
    const std::size_t fi = rng.uniform(layer_size);
    const std::size_t fj = rng.uniform(layer_size);
    EdgeId fast = kInvalidEdge;
    for (std::size_t i = 0; i < layer_size; ++i)
      for (std::size_t j = 0; j < layer_size; ++j) {
        const bool is_fast = (i == fi && j == fj);
        const EdgeId e = b.add_edge(node(a, i), node(bb, j),
                                    is_fast ? Latency{1} : cross_latency);
        if (is_fast) fast = e;
      }
    fast_cross_edges.push_back(fast);
  }
  return LayeredRing{b.build(), num_layers, layer_size, cross_latency,
                     std::move(fast_cross_edges)};
}

LayeredRing make_theorem8_network(std::size_t n, double alpha, Latency ell,
                                  Rng& rng) {
  if (n < 8) throw std::invalid_argument("thm8: n too small");
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("thm8: alpha out of (0,1]");
  const double na = static_cast<double>(n) * alpha;
  if (na < 2.0)
    throw std::invalid_argument("thm8: n*alpha must be >= 2");
  const double c = 0.75 + 0.25 * std::sqrt(std::max(0.0, 9.0 - 8.0 / na));
  auto layer_size = static_cast<std::size_t>(std::lround(c * na));
  layer_size = std::max<std::size_t>(layer_size, 2);
  auto num_layers =
      static_cast<std::size_t>(std::lround(2.0 / (c * alpha)));
  // Force an even layer count >= 4 so the Lemma 9 halving cut exists.
  if (num_layers % 2 != 0) ++num_layers;
  num_layers = std::max<std::size_t>(num_layers, 4);
  return make_layered_ring(num_layers, layer_size, ell, rng);
}

}  // namespace latgossip
