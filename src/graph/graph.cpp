#include "graph/graph.h"

#include <algorithm>

namespace latgossip {

WeightedGraph::WeightedGraph(std::size_t n) : adjacency_(n) {
  if (n > static_cast<std::size_t>(kInvalidNode))
    throw std::invalid_argument("graph too large for NodeId");
}

EdgeId WeightedGraph::add_edge(NodeId u, NodeId v, Latency latency) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  const auto k = key(u, v);
  if (edge_index_.count(k) != 0)
    throw std::invalid_argument("duplicate edge");
  const auto e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, latency});
  adjacency_[u].push_back(HalfEdge{v, e});
  adjacency_[v].push_back(HalfEdge{u, e});
  edge_index_.emplace(k, e);
  return e;
}

NodeId WeightedGraph::other_endpoint(EdgeId e, NodeId u) const {
  const Edge& ed = edge(e);
  if (ed.u == u) return ed.v;
  if (ed.v == u) return ed.u;
  throw std::invalid_argument("node is not an endpoint of edge");
}

void WeightedGraph::set_latency(EdgeId e, Latency latency) {
  check_edge(e);
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  edges_[e].latency = latency;
}

std::optional<EdgeId> WeightedGraph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (u == v) return std::nullopt;
  auto it = edge_index_.find(key(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

std::size_t WeightedGraph::max_degree() const noexcept {
  std::size_t d = 0;
  for (const auto& adj : adjacency_) d = std::max(d, adj.size());
  return d;
}

Latency WeightedGraph::max_latency() const noexcept {
  Latency m = 0;
  for (const auto& e : edges_) m = std::max(m, e.latency);
  return m;
}

Latency WeightedGraph::min_latency() const noexcept {
  if (edges_.empty()) return 0;
  Latency m = edges_.front().latency;
  for (const auto& e : edges_) m = std::min(m, e.latency);
  return m;
}

bool WeightedGraph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const HalfEdge& h : adjacency_[u]) {
      if (!seen[h.to]) {
        seen[h.to] = true;
        ++visited;
        stack.push_back(h.to);
      }
    }
  }
  return visited == n;
}

std::size_t WeightedGraph::volume(const std::vector<bool>& in_set) const {
  if (in_set.size() != num_nodes())
    throw std::invalid_argument("volume: membership size mismatch");
  std::size_t vol = 0;
  for (NodeId u = 0; u < num_nodes(); ++u)
    if (in_set[u]) vol += adjacency_[u].size();
  return vol;
}

}  // namespace latgossip
