#include "graph/graph.h"

#include <algorithm>
#include <bit>

namespace latgossip {

WeightedGraph::WeightedGraph(std::size_t n) : offsets_(n + 1, 0) {
  if (n > static_cast<std::size_t>(kInvalidNode))
    throw std::invalid_argument("graph too large for NodeId");
}

NodeId WeightedGraph::other_endpoint(EdgeId e, NodeId u) const {
  const Edge& ed = edge(e);
  if (ed.u == u) return ed.v;
  if (ed.v == u) return ed.u;
  throw std::invalid_argument("node is not an endpoint of edge");
}

void WeightedGraph::set_latency(EdgeId e, Latency latency) {
  check_edge(e);
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  edges_[e].latency = latency;
}

std::optional<EdgeId> WeightedGraph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (u == v) return std::nullopt;
  // Search from the lower-degree endpoint; slices are sorted by .to.
  if (degree(v) < degree(u)) std::swap(u, v);
  const HalfEdge* first = half_edges_.data() + offsets_[u];
  const HalfEdge* last = half_edges_.data() + offsets_[u + 1];
  const HalfEdge* it = std::lower_bound(
      first, last, v, [](const HalfEdge& h, NodeId t) { return h.to < t; });
  if (it == last || it->to != v) return std::nullopt;
  return it->edge;
}

Latency WeightedGraph::max_latency() const noexcept {
  Latency m = 0;
  for (const auto& e : edges_) m = std::max(m, e.latency);
  return m;
}

Latency WeightedGraph::min_latency() const noexcept {
  if (edges_.empty()) return 0;
  Latency m = edges_.front().latency;
  for (const auto& e : edges_) m = std::min(m, e.latency);
  return m;
}

bool WeightedGraph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  Bitset seen(n);
  std::vector<NodeId> stack{0};
  seen.set(0);
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const HalfEdge& h : neighbors(u)) {
      if (!seen.test(h.to)) {
        seen.set(h.to);
        ++visited;
        stack.push_back(h.to);
      }
    }
  }
  return visited == n;
}

std::size_t WeightedGraph::volume(const Bitset& in_set) const {
  if (in_set.size() != num_nodes())
    throw std::invalid_argument("volume: membership size mismatch");
  std::size_t vol = 0;
  const auto words = in_set.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t u =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      vol += offsets_[u + 1] - offsets_[u];
      w &= w - 1;
    }
  }
  return vol;
}

}  // namespace latgossip
