#pragma once
// Latency assignment policies. Generators produce unit-latency topology;
// these functions overwrite the latencies in place according to a model.
// The paper assumes integer latencies >= 1 (Section 1: non-integer
// latencies are scaled and rounded), so every model here emits integers.

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

/// Every edge gets the same latency.
void assign_uniform_latency(WeightedGraph& g, Latency latency);

/// Uniform integer latency in [lo, hi].
void assign_random_uniform_latency(WeightedGraph& g, Latency lo, Latency hi,
                                   Rng& rng);

/// Two-level model: each edge is "fast" (latency `fast`) with probability
/// `p_fast`, else "slow" (latency `slow`). This is the latency structure
/// of the paper's lower-bound gadgets and of WAN/LAN mixtures.
void assign_two_level_latency(WeightedGraph& g, Latency fast, Latency slow,
                              double p_fast, Rng& rng);

/// Heavy-tailed (discrete Pareto): latency = ceil(scale * U^{-1/alpha}),
/// clamped to [1, cap]. Models long-tail internet RTTs.
void assign_pareto_latency(WeightedGraph& g, double alpha, double scale,
                           Latency cap, Rng& rng);

/// Distance-based: latency = max(1, round(scale * euclidean distance))
/// given node coordinates (e.g. from make_random_geometric).
void assign_distance_latency(WeightedGraph& g,
                             const std::vector<std::pair<double, double>>&
                                 coords,
                             double scale);

/// Arbitrary per-edge rule.
void assign_latency(WeightedGraph& g,
                    const std::function<Latency(const Edge&)>& rule);

}  // namespace latgossip
