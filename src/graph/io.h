#pragma once
// Plain-text serialization for latency-weighted graphs, so experiment
// inputs can be dumped, archived and reloaded bit-for-bit.
//
// Format (whitespace-separated, '#' comments):
//   latgossip-graph 1
//   <num_nodes> <num_edges>
//   <u> <v> <latency>        (one line per edge, in edge-id order)
//
// Edge ids are preserved by round-tripping (edges are written and read
// in insertion order), which matters for gadget bookkeeping that
// addresses edges by id.

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace latgossip {

/// Serialize to a stream. Throws on stream failure.
void write_graph(std::ostream& out, const WeightedGraph& g);

/// Parse a graph; throws std::runtime_error on malformed input.
WeightedGraph read_graph(std::istream& in);

/// Convenience file wrappers.
void save_graph(const std::string& path, const WeightedGraph& g);
WeightedGraph load_graph(const std::string& path);

/// Round-trip through a string (used by tests and debugging).
std::string graph_to_string(const WeightedGraph& g);
WeightedGraph graph_from_string(const std::string& text);

}  // namespace latgossip
