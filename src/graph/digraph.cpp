#include "graph/digraph.h"

#include <algorithm>

#include "graph/builder.h"

namespace latgossip {

WeightedGraph DirectedGraph::to_undirected() const {
  // Single merge pass instead of a find_edge per arc: normalize every
  // arc to (min endpoint, max endpoint, latency), sort, and collapse
  // each run of equal endpoint pairs keeping the smallest latency.
  // O(A log A) total, independent of density.
  struct Rec {
    NodeId u, v;
    Latency latency;
  };
  std::vector<Rec> recs;
  recs.reserve(arc_count_);
  for (NodeId u = 0; u < num_nodes(); ++u)
    for (const Arc& a : out_[u])
      recs.push_back(Rec{std::min(u, a.to), std::max(u, a.to), a.latency});
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.latency < b.latency;
  });

  GraphBuilder b(num_nodes());
  for (std::size_t i = 0; i < recs.size();) {
    std::size_t j = i + 1;
    while (j < recs.size() && recs[j].u == recs[i].u && recs[j].v == recs[i].v)
      ++j;
    // recs[i] holds the run's minimum latency (sort is by latency within
    // an endpoint pair).
    b.add_edge(recs[i].u, recs[i].v, recs[i].latency);
    i = j;
  }
  return b.build();
}

}  // namespace latgossip
