#include "graph/digraph.h"

#include <algorithm>

namespace latgossip {

WeightedGraph DirectedGraph::to_undirected() const {
  WeightedGraph g(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Arc& a : out_[u]) {
      if (auto e = g.find_edge(u, a.to)) {
        if (a.latency < g.latency(*e)) g.set_latency(*e, a.latency);
      } else {
        g.add_edge(u, a.to, a.latency);
      }
    }
  }
  return g;
}

}  // namespace latgossip
