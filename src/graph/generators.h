#pragma once
// Standard graph generators. All produce unit-latency edges; latency
// models (latency_models.h) or gadget constructions assign weights.
//
// The *_streaming family at the bottom targets million-node graphs
// (ROADMAP item 2): each generator emits its edge stream twice into a
// StreamingCsrBuilder (graph/builder.h) — count pass, then fill pass —
// so no intermediate edge list or duplicate-detection hash index is
// ever materialized. Random streaming generators take an explicit
// uint64 seed (not an Rng&): both passes must replay the identical
// stream, so the generator owns its RNG reconstruction.

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

/// Path v0 - v1 - ... - v_{n-1}.
WeightedGraph make_path(std::size_t n);

/// Cycle on n >= 3 nodes.
WeightedGraph make_cycle(std::size_t n);

/// Star: node 0 is the hub, nodes 1..n-1 are leaves.
WeightedGraph make_star(std::size_t n);

/// Complete graph K_n.
WeightedGraph make_clique(std::size_t n);

/// Complete bipartite graph K_{a,b}: left nodes 0..a-1, right a..a+b-1.
WeightedGraph make_complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols grid; wrap = torus.
WeightedGraph make_grid(std::size_t rows, std::size_t cols, bool wrap = false);

/// d-dimensional hypercube (2^d nodes).
WeightedGraph make_hypercube(std::size_t dim);

/// Complete binary tree with n nodes (heap ordering: children 2i+1, 2i+2).
WeightedGraph make_binary_tree(std::size_t n);

/// Erdos–Renyi G(n, p), conditioned on connectivity by retry (up to
/// `max_attempts`); throws if no connected sample is found.
WeightedGraph make_erdos_renyi(std::size_t n, double p, Rng& rng,
                               int max_attempts = 64);

/// Random d-regular graph via the configuration/pairing model with
/// rejection of self-loops/multi-edges; conditioned on connectivity.
/// Requires n*d even, d < n.
WeightedGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng,
                                  int max_attempts = 256);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta; conditioned connected.
WeightedGraph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                                  Rng& rng, int max_attempts = 64);

/// Random geometric graph: n points uniform in the unit square, edge if
/// distance <= radius; conditioned connected. Out-param `coords` (if
/// non-null) receives the points as (x, y) pairs — examples use them to
/// derive distance-based latencies.
WeightedGraph make_random_geometric(std::size_t n, double radius, Rng& rng,
                                    std::vector<std::pair<double, double>>*
                                        coords = nullptr,
                                    int max_attempts = 64);

/// `num_cliques` cliques of `clique_size` nodes each, arranged in a ring;
/// consecutive cliques joined by a single bridge edge of latency
/// `bridge_latency`. A classic low-conductance family.
WeightedGraph make_ring_of_cliques(std::size_t num_cliques,
                                   std::size_t clique_size,
                                   Latency bridge_latency = 1);

/// Two cliques of `clique_size` joined by a path of `path_len` edges of
/// latency `path_latency` (the "dumbbell"; worst case for conductance).
WeightedGraph make_dumbbell(std::size_t clique_size, std::size_t path_len,
                            Latency path_latency = 1);

/// Barabasi–Albert preferential attachment: start from a small clique
/// of `attach` nodes; each new node attaches to `attach` distinct
/// existing nodes picked proportionally to degree. Heavy-tailed degree
/// distribution (the "social network" regime of Doerr et al. cited in
/// the related work).
WeightedGraph make_barabasi_albert(std::size_t n, std::size_t attach,
                                   Rng& rng);

/// Complete b-ary tree with n nodes (children of i: b*i+1 .. b*i+b).
WeightedGraph make_kary_tree(std::size_t n, std::size_t b);

/// `num_cliques` cliques in a path (not a ring), consecutive cliques
/// joined by one bridge of `bridge_latency` — the line version of
/// make_ring_of_cliques, with diameter Θ(num_cliques * bridge_latency).
WeightedGraph make_path_of_cliques(std::size_t num_cliques,
                                   std::size_t clique_size,
                                   Latency bridge_latency = 1);

// ---------------------------------------------------------------------------
// Streaming (two-pass CSR) generators for million-node graphs.

/// Cycle on n >= 3 nodes, built without an intermediate edge list.
/// Bit-identical to make_cycle(n) (same edge emission order).
WeightedGraph make_ring_streaming(std::size_t n);

/// rows x cols torus (both >= 3), built without an intermediate edge
/// list. Bit-identical to make_grid(rows, cols, /*wrap=*/true).
WeightedGraph make_torus_streaming(std::size_t rows, std::size_t cols);

/// G(n, p) via geometric skip sampling over the ordered pair sequence
/// (expected work O(n + p*n^2), not Theta(n^2) coin flips), conditioned
/// on connectivity by retry with an attempt-salted seed. Deterministic
/// in (n, p, seed); NOT sample-identical to make_erdos_renyi, which
/// draws one Bernoulli per pair.
WeightedGraph make_erdos_renyi_streaming(std::size_t n, double p,
                                         std::uint64_t seed,
                                         int max_attempts = 64);

/// Random d-regular graph via the configuration model with
/// repair-by-swap instead of whole-sample rejection: bad pairs
/// (self-loops, duplicates) swap their second stub with a random pair
/// and the pairing is re-validated, preserving the degree sequence.
/// Whole-sample rejection is hopeless at scale — P(simple) ~
/// exp(-(d^2-1)/4) per attempt is astronomically small long before the
/// expected O(1) bad pairs stop being repairable. Conditioned on
/// connectivity by retry. Requires n*d even, 1 <= d < n. Deterministic
/// in (n, d, seed); NOT sample-identical to make_random_regular.
WeightedGraph make_random_regular_streaming(std::size_t n, std::size_t d,
                                            std::uint64_t seed,
                                            int max_attempts = 64);

/// Barabasi–Albert preferential attachment, streaming build.
/// Bit-identical to make_barabasi_albert(n, attach, rng) when `rng` was
/// constructed as Rng(seed): the sampling loop is replayed exactly
/// (same RNG draws, same emission order) in each pass.
WeightedGraph make_preferential_attachment_streaming(std::size_t n,
                                                     std::size_t attach,
                                                     std::uint64_t seed);

}  // namespace latgossip
