#pragma once
// Undirected graph with integer edge latencies — the substrate for every
// construction and simulation in latgossip.
//
// The paper's model (Section 1): connected undirected graph G = (V, E),
// each edge carries an integer latency >= 1 ("how many rounds it takes
// for two neighbors to exchange information"). Latencies are mutable
// after construction because the lower-bound gadgets (Section 3.2) fix
// latencies a priori from a random target set that the algorithm — but
// not the builder — must discover.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace latgossip {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Latency = std::int64_t;
using Round = std::int64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One direction of an undirected edge, as seen from the owning node.
struct HalfEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Full undirected edge record.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Latency latency = 1;
};

class WeightedGraph {
 public:
  /// Graph on `n` isolated nodes.
  explicit WeightedGraph(std::size_t n);

  std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Add undirected edge {u, v} with the given latency.
  /// Throws on self-loops, out-of-range endpoints, duplicate edges, or
  /// latency < 1. Returns the new edge's id.
  EdgeId add_edge(NodeId u, NodeId v, Latency latency = 1);

  std::span<const HalfEdge> neighbors(NodeId u) const {
    check_node(u);
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const {
    check_node(u);
    return adjacency_[u].size();
  }

  const Edge& edge(EdgeId e) const {
    check_edge(e);
    return edges_[e];
  }

  /// Half-edge at position `adj_index` of u's adjacency list — the
  /// cheap edge-resolution path for protocols that pick contacts by
  /// neighbor index (no edge_index_ hash lookup; find_edge() remains
  /// the validating path).
  const HalfEdge& edge_at(NodeId u, std::size_t adj_index) const {
    check_node(u);
    const auto& adj = adjacency_[u];
    if (adj_index >= adj.size())
      throw std::out_of_range("adjacency index out of range");
    return adj[adj_index];
  }

  Latency latency(EdgeId e) const { return edge(e).latency; }

  /// Other endpoint of edge `e` relative to `u`.
  NodeId other_endpoint(EdgeId e, NodeId u) const;

  /// Mutate the latency of an existing edge (used by gadget reveal and
  /// by latency-model application). Throws if latency < 1.
  void set_latency(EdgeId e, Latency latency);

  /// Edge id of {u, v} if present.
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v).has_value(); }

  std::size_t max_degree() const noexcept;
  Latency max_latency() const noexcept;
  Latency min_latency() const noexcept;

  /// True iff the graph is connected (trivially true for n <= 1).
  bool is_connected() const;

  /// Sum over u in U of deg(u)  — the paper's Vol(U) (Definition 1).
  /// `in_set[u]` marks membership.
  std::size_t volume(const std::vector<bool>& in_set) const;

  const std::vector<Edge>& edges() const noexcept { return edges_; }

 private:
  void check_node(NodeId u) const {
    if (u >= adjacency_.size()) throw std::out_of_range("node id out of range");
  }
  void check_edge(EdgeId e) const {
    if (e >= edges_.size()) throw std::out_of_range("edge id out of range");
  }
  static std::uint64_t key(NodeId u, NodeId v) noexcept {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;
};

}  // namespace latgossip
