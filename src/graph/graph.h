#pragma once
// Undirected graph with integer edge latencies — the substrate for every
// construction and simulation in latgossip.
//
// The paper's model (Section 1): connected undirected graph G = (V, E),
// each edge carries an integer latency >= 1 ("how many rounds it takes
// for two neighbors to exchange information"). Latencies are mutable
// after construction because the lower-bound gadgets (Section 3.2) fix
// latencies a priori from a random target set that the algorithm — but
// not the builder — must discover.
//
// Memory layout (see DESIGN.md "Graph memory layout"): WeightedGraph is
// an immutable compressed-sparse-row structure built by GraphBuilder
// (graph/builder.h). Topology lives in two flat arrays —
//
//   offsets_    : n+1 prefix sums; node u's half-edges occupy
//                 half_edges_[offsets_[u] .. offsets_[u+1])
//   half_edges_ : 2m HalfEdge records, each adjacency slice sorted by
//                 neighbor id
//   edges_      : m Edge records in insertion order (EdgeId == index)
//
// so neighbor scans are a single contiguous walk, find_edge(u, v) is an
// O(log deg) binary search in the smaller endpoint's slice, and the
// whole graph can be shared read-only across trial threads. Topology is
// frozen at build(); only per-edge latencies stay mutable (set_latency),
// because gadget reveal rewrites latencies but never edges.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/bitset.h"

namespace latgossip {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Latency = std::int64_t;
using Round = std::int64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One direction of an undirected edge, as seen from the owning node.
struct HalfEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Full undirected edge record.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Latency latency = 1;
};

class GraphBuilder;

/// Immutable-topology CSR graph. Construct via GraphBuilder::build();
/// the public constructors only make edgeless graphs (struct members,
/// placeholders).
class WeightedGraph {
 public:
  /// Empty graph (0 nodes).
  WeightedGraph() : offsets_(1, 0) {}

  /// Graph on `n` isolated nodes (no edges can ever be added; use
  /// GraphBuilder for anything with edges).
  explicit WeightedGraph(std::size_t n);

  std::size_t num_nodes() const noexcept { return offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  std::span<const HalfEdge> neighbors(NodeId u) const {
    check_node(u);
    return {half_edges_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t degree(NodeId u) const {
    check_node(u);
    return offsets_[u + 1] - offsets_[u];
  }

  const Edge& edge(EdgeId e) const {
    check_edge(e);
    return edges_[e];
  }

  /// Half-edge at position `adj_index` of u's adjacency slice — the
  /// cheap edge-resolution path for protocols that pick contacts by
  /// neighbor index (no lookup; find_edge() remains the validating
  /// path). Slices are sorted by neighbor id.
  const HalfEdge& edge_at(NodeId u, std::size_t adj_index) const {
    check_node(u);
    if (adj_index >= offsets_[u + 1] - offsets_[u])
      throw std::out_of_range("adjacency index out of range");
    return half_edges_[offsets_[u] + adj_index];
  }

  Latency latency(EdgeId e) const { return edge(e).latency; }

  /// Other endpoint of edge `e` relative to `u`.
  NodeId other_endpoint(EdgeId e, NodeId u) const;

  /// Mutate the latency of an existing edge (used by gadget reveal and
  /// by latency-model application). Throws if latency < 1. Topology is
  /// immutable; latency is the one post-build mutable attribute.
  void set_latency(EdgeId e, Latency latency);

  /// Edge id of {u, v} if present: binary search in the smaller
  /// endpoint's sorted adjacency slice, O(log min(deg u, deg v)).
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v).has_value(); }

  std::size_t max_degree() const noexcept { return max_degree_; }
  Latency max_latency() const noexcept;
  Latency min_latency() const noexcept;

  /// True iff the graph is connected (trivially true for n <= 1).
  bool is_connected() const;

  /// Sum over u in U of deg(u) — the paper's Vol(U) (Definition 1).
  /// `in_set` marks membership; iterates set words, not individual
  /// node ids, so sparse cuts cost O(popcount + n/64).
  std::size_t volume(const Bitset& in_set) const;

  const std::vector<Edge>& edges() const noexcept { return edges_; }

 private:
  friend class GraphBuilder;
  friend class StreamingCsrBuilder;

  WeightedGraph(std::vector<std::size_t> offsets,
                std::vector<HalfEdge> half_edges, std::vector<Edge> edges,
                std::size_t max_degree)
      : offsets_(std::move(offsets)),
        half_edges_(std::move(half_edges)),
        edges_(std::move(edges)),
        max_degree_(max_degree) {}

  void check_node(NodeId u) const {
    if (u >= num_nodes()) throw std::out_of_range("node id out of range");
  }
  void check_edge(EdgeId e) const {
    if (e >= edges_.size()) throw std::out_of_range("edge id out of range");
  }

  std::vector<std::size_t> offsets_;   ///< n+1 CSR prefix sums
  std::vector<HalfEdge> half_edges_;   ///< 2m, per-slice sorted by .to
  std::vector<Edge> edges_;            ///< m, EdgeId == index
  std::size_t max_degree_ = 0;
};

}  // namespace latgossip
