#pragma once
// Directed graph with latencies — used for the oriented spanner that the
// EID algorithm builds (Section 5, Theorem 14): the Baswana–Sen spanner
// is produced with an orientation such that every node has O(log n)
// out-degree, and RR Broadcast activates out-edges round-robin.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.h"

namespace latgossip {

struct Arc {
  NodeId to = kInvalidNode;
  Latency latency = 1;
};

class DirectedGraph {
 public:
  explicit DirectedGraph(std::size_t n) : out_(n) {}

  std::size_t num_nodes() const noexcept { return out_.size(); }
  std::size_t num_arcs() const noexcept { return arc_count_; }

  void add_arc(NodeId from, NodeId to, Latency latency) {
    check_node(from);
    check_node(to);
    if (from == to) throw std::invalid_argument("self-loop arc");
    if (latency < 1) throw std::invalid_argument("latency must be >= 1");
    out_[from].push_back(Arc{to, latency});
    ++arc_count_;
  }

  std::span<const Arc> out_arcs(NodeId u) const {
    check_node(u);
    return out_[u];
  }

  std::size_t out_degree(NodeId u) const {
    check_node(u);
    return out_[u].size();
  }

  std::size_t max_out_degree() const noexcept {
    std::size_t d = 0;
    for (const auto& a : out_) d = d > a.size() ? d : a.size();
    return d;
  }

  /// The underlying undirected weighted graph (arc directions dropped,
  /// parallel/opposite arcs collapsed keeping the smaller latency).
  WeightedGraph to_undirected() const;

 private:
  void check_node(NodeId u) const {
    if (u >= out_.size()) throw std::out_of_range("node id out of range");
  }

  std::vector<std::vector<Arc>> out_;
  std::size_t arc_count_ = 0;
};

}  // namespace latgossip
