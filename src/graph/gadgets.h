#pragma once
// The paper's lower-bound constructions (Section 3).
//
// * GuessingGadget — the bipartite gadget G(P) / Gsym(P) of Section 3.2
//   and Figure 1: a complete bipartite graph on L x R, a clique on L
//   (and on R for the symmetric variant), all clique edges latency 1;
//   cross edges in the hidden target set T are "fast" and all other
//   cross edges are "slow".
// * Theorem6Network — gadget G(2Δ, |T|=1) glued to a clique of the
//   remaining n - 2Δ nodes (proof of Theorem 6).
// * Theorem7Network — G(Random_φ) on 2n nodes with fast latency ℓ and
//   slow latency n (proof of Theorem 7).
// * LayeredRing — k layers wired in a ring via symmetric gadgets, one
//   random fast cross edge per adjacent layer pair (Theorem 8, Fig. 2).

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace latgossip {

/// A target set for the guessing gadget: pairs (i, j) meaning the cross
/// edge from left node i to right node j is fast. Indices in [0, m).
using TargetSet = std::vector<std::pair<std::size_t, std::size_t>>;

/// |T| = 1: a single uniformly random pair (Lemma 4 / Theorem 6).
TargetSet make_singleton_target(std::size_t m, Rng& rng);

/// Random_p: each of the m^2 pairs included independently w.p. p
/// (Lemma 5 / Theorem 7).
TargetSet make_random_p_target(std::size_t m, double p, Rng& rng);

/// The constructed gadget, with the bookkeeping the reduction needs.
struct GuessingGadget {
  WeightedGraph graph;   ///< 2m nodes: left 0..m-1, right m..2m-1
  std::size_t m = 0;
  bool symmetric = false;
  Latency fast_latency = 1;
  Latency slow_latency = 1;
  TargetSet target;

  NodeId left(std::size_t i) const { return static_cast<NodeId>(i); }
  NodeId right(std::size_t j) const { return static_cast<NodeId>(m + j); }

  /// Cross edges are added first, in row-major order, so their edge id
  /// is i*m + j by construction.
  EdgeId cross_edge(std::size_t i, std::size_t j) const {
    return static_cast<EdgeId>(i * m + j);
  }
  bool is_cross_edge(EdgeId e) const { return e < m * m; }
  /// Inverse of cross_edge.
  std::pair<std::size_t, std::size_t> cross_pair(EdgeId e) const {
    return {e / m, e % m};
  }
};

/// Build G(P) (symmetric=false) or Gsym(P) (symmetric=true) for a given
/// target set. Cross edges in `target` get `fast_latency`; all others
/// get `slow_latency`; clique edges get latency 1.
GuessingGadget make_guessing_gadget(std::size_t m, TargetSet target,
                                    Latency fast_latency,
                                    Latency slow_latency, bool symmetric);

/// Theorem 6: an n-node network with weighted diameter O(1), constant
/// unweighted conductance and max degree Θ(Δ) on which local broadcast
/// needs Ω(Δ) rounds. Gadget G(2Δ, |T|=1) plus a clique on the other
/// n - 2Δ nodes attached by one edge.
struct Theorem6Network {
  WeightedGraph graph;
  GuessingGadget gadget_info;  ///< graph member unused; indices refer to `graph`
  std::size_t delta = 0;       ///< the Δ parameter
};
Theorem6Network make_theorem6_network(std::size_t n, std::size_t delta,
                                      Rng& rng);

/// Theorem 7: 2n nodes, weighted diameter O(ℓ) whp, weighted conductance
/// Θ(φ) whp. G(Random_φ) with fast latency ℓ, slow latency n.
struct Theorem7Network {
  GuessingGadget gadget;  ///< gadget.graph is the network
  Latency ell = 1;
  double phi = 0.0;
};
Theorem7Network make_theorem7_network(std::size_t n, Latency ell, double phi,
                                      Rng& rng);

/// Theorem 8 layered ring (Figure 2): `num_layers` layers of `layer_size`
/// nodes; each layer is a latency-1 clique; adjacent layers are joined by
/// a complete bipartite gadget whose cross edges have latency
/// `cross_latency` except one uniformly random fast (latency 1) edge.
struct LayeredRing {
  WeightedGraph graph;
  std::size_t num_layers = 0;
  std::size_t layer_size = 0;
  Latency cross_latency = 1;
  /// The hidden fast cross edge between layer i and layer i+1 (mod k).
  std::vector<EdgeId> fast_cross_edges;

  NodeId node(std::size_t layer, std::size_t index) const {
    return static_cast<NodeId>(layer * layer_size + index);
  }
  std::size_t layer_of(NodeId v) const { return v / layer_size; }

  /// Closed-form weight-ℓ conductance of the halving cut C of Lemma 9,
  /// generalized to the direct (k, s) parameterization:
  /// phi_ell(C) = 2 s^2 / Vol(half) with Vol(half) = (N/2)(3s - 1).
  double analytic_phi_ell_cut() const;
};
LayeredRing make_layered_ring(std::size_t num_layers, std::size_t layer_size,
                              Latency cross_latency, Rng& rng);

/// The paper's (n, alpha, ell) parameterization of the ring (Theorem 8):
/// c = 3/4 + (1/4)sqrt(9 - 8/(n*alpha)), k = 2/(c*alpha) layers of
/// s = c*n*alpha nodes, rounded to integers (k forced even and >= 4).
LayeredRing make_theorem8_network(std::size_t n, double alpha, Latency ell,
                                  Rng& rng);

}  // namespace latgossip
