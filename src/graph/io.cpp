#include "graph/io.h"

#include <fstream>

#include "graph/builder.h"
#include <sstream>
#include <stdexcept>

namespace latgossip {
namespace {

constexpr const char* kMagic = "latgossip-graph";
constexpr int kVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

/// Skip comments ('#' to end of line) and whitespace.
void skip_noise(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in.get();
    } else {
      return;
    }
  }
}

}  // namespace

void write_graph(std::ostream& out, const WeightedGraph& g) {
  out << kMagic << ' ' << kVersion << '\n';
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges())
    out << e.u << ' ' << e.v << ' ' << e.latency << '\n';
  if (!out) fail("write failed");
}

WeightedGraph read_graph(std::istream& in) {
  skip_noise(in);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) fail("missing header");
  if (magic != kMagic) fail("bad magic '" + magic + "'");
  if (version != kVersion) fail("unsupported version");
  skip_noise(in);
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail("missing size line");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    skip_noise(in);
    std::uint64_t u = 0, v = 0;
    Latency latency = 0;
    if (!(in >> u >> v >> latency)) fail("truncated edge list");
    if (u >= n || v >= n) fail("edge endpoint out of range");
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), latency);
  }
  return b.build();
}

void save_graph(const std::string& path, const WeightedGraph& g) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_graph(out, g);
}

WeightedGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "' for reading");
  return read_graph(in);
}

std::string graph_to_string(const WeightedGraph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

WeightedGraph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace latgossip
