#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/builder.h"

namespace latgossip {
namespace {

constexpr const char* kMagic = "latgossip-graph";
constexpr int kVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

/// Skip comments ('#' to end of line) and whitespace.
void skip_noise(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in.get();
    } else {
      return;
    }
  }
}

}  // namespace

void write_graph(std::ostream& out, const WeightedGraph& g) {
  out << kMagic << ' ' << kVersion << '\n';
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges())
    out << e.u << ' ' << e.v << ' ' << e.latency << '\n';
  if (!out) fail("write failed");
}

WeightedGraph read_graph(std::istream& in) {
  skip_noise(in);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) fail("missing header");
  if (magic != kMagic) fail("bad magic '" + magic + "'");
  if (version != kVersion) fail("unsupported version");
  skip_noise(in);
  // Sizes and ids are parsed SIGNED: extracting "-3" into an unsigned
  // wraps silently instead of setting failbit, which would turn a
  // negative id into a huge one and misreport the error.
  std::int64_t n = 0, m = 0;
  if (!(in >> n >> m)) fail("missing size line");
  if (n < 0 || m < 0) fail("negative size");
  if (static_cast<std::uint64_t>(n) > static_cast<std::uint64_t>(kInvalidNode))
    fail("too many nodes for 32-bit node ids");
  const auto nn = static_cast<std::uint64_t>(n);
  const std::uint64_t max_edges = nn <= 1 ? 0 : nn * (nn - 1) / 2;
  if (static_cast<std::uint64_t>(m) > max_edges)
    fail("edge count " + std::to_string(m) +
         " exceeds a simple graph on " + std::to_string(n) + " nodes");
  GraphBuilder b(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < m; ++i) {
    const std::string at = " at edge " + std::to_string(i);
    skip_noise(in);
    std::int64_t u = 0, v = 0;
    Latency latency = 0;
    if (!(in >> u >> v >> latency)) fail("truncated edge list" + at);
    if (u < 0 || v < 0) fail("negative node id" + at);
    if (u >= n || v >= n) fail("edge endpoint out of range" + at);
    if (latency < 1)
      fail("latency must be >= 1" + at + " (got " +
           std::to_string(latency) + ")");
    try {
      b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), latency);
    } catch (const std::exception& e) {
      // Self-loops and duplicate edges, rejected by the builder —
      // re-thrown with the offending edge's position attached.
      fail(std::string(e.what()) + at);
    }
  }
  skip_noise(in);
  if (in.peek() != std::istream::traits_type::eof())
    fail("trailing garbage after edge list");
  return b.build();
}

void save_graph(const std::string& path, const WeightedGraph& g) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_graph(out, g);
}

WeightedGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "' for reading");
  return read_graph(in);
}

std::string graph_to_string(const WeightedGraph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

WeightedGraph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace latgossip
