#include "graph/latency_models.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latgossip {

void assign_uniform_latency(WeightedGraph& g, Latency latency) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) g.set_latency(e, latency);
}

void assign_random_uniform_latency(WeightedGraph& g, Latency lo, Latency hi,
                                   Rng& rng) {
  if (lo < 1 || hi < lo)
    throw std::invalid_argument("latency range must satisfy 1 <= lo <= hi");
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    g.set_latency(e, rng.uniform_int(lo, hi));
}

void assign_two_level_latency(WeightedGraph& g, Latency fast, Latency slow,
                              double p_fast, Rng& rng) {
  if (fast < 1 || slow < fast)
    throw std::invalid_argument("need 1 <= fast <= slow");
  if (p_fast < 0.0 || p_fast > 1.0)
    throw std::invalid_argument("p_fast out of [0,1]");
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    g.set_latency(e, rng.bernoulli(p_fast) ? fast : slow);
}

void assign_pareto_latency(WeightedGraph& g, double alpha, double scale,
                           Latency cap, Rng& rng) {
  if (alpha <= 0.0 || scale <= 0.0 || cap < 1)
    throw std::invalid_argument("pareto: alpha, scale > 0 and cap >= 1");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    double u = rng.uniform_double();
    if (u <= 0.0) u = 1e-12;
    const double raw = scale * std::pow(u, -1.0 / alpha);
    const auto lat = static_cast<Latency>(std::ceil(raw));
    g.set_latency(e, std::clamp<Latency>(lat, 1, cap));
  }
}

void assign_distance_latency(
    WeightedGraph& g, const std::vector<std::pair<double, double>>& coords,
    double scale) {
  if (coords.size() != g.num_nodes())
    throw std::invalid_argument("coords size mismatch");
  if (scale <= 0.0) throw std::invalid_argument("scale must be > 0");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const double dx = coords[ed.u].first - coords[ed.v].first;
    const double dy = coords[ed.u].second - coords[ed.v].second;
    const double dist = std::sqrt(dx * dx + dy * dy);
    g.set_latency(e, std::max<Latency>(
                         1, static_cast<Latency>(std::lround(scale * dist))));
  }
}

void assign_latency(WeightedGraph& g,
                    const std::function<Latency(const Edge&)>& rule) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) g.set_latency(e, rule(g.edge(e)));
}

}  // namespace latgossip
