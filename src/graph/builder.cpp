#include "graph/builder.h"

#include <algorithm>

namespace latgossip {

GraphBuilder::GraphBuilder(std::size_t n) : num_nodes_(n) {
  if (n > static_cast<std::size_t>(kInvalidNode))
    throw std::invalid_argument("graph too large for NodeId");
}

NodeId GraphBuilder::add_node() {
  if (num_nodes_ >= static_cast<std::size_t>(kInvalidNode))
    throw std::invalid_argument("graph too large for NodeId");
  return static_cast<NodeId>(num_nodes_++);
}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v, Latency latency) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  const auto k = key(u, v);
  if (edge_index_.count(k) != 0)
    throw std::invalid_argument("duplicate edge");
  const auto e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, latency});
  edge_index_.emplace(k, e);
  return e;
}

std::optional<EdgeId> GraphBuilder::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (u == v) return std::nullopt;
  const auto it = edge_index_.find(key(u, v));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

void GraphBuilder::set_latency(EdgeId e, Latency latency) {
  if (e >= edges_.size()) throw std::out_of_range("edge id out of range");
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  edges_[e].latency = latency;
}

WeightedGraph GraphBuilder::build() {
  const std::size_t n = num_nodes_;
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();
  edge_index_.clear();
  num_nodes_ = 0;

  // Counting sort of half-edges into CSR slices.
  std::vector<std::size_t> offsets(n + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  std::size_t max_degree = 0;
  for (std::size_t u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, offsets[u + 1]);
    offsets[u + 1] += offsets[u];
  }
  std::vector<HalfEdge> half_edges(2 * edges.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < edges.size(); ++e) {
    half_edges[cursor[edges[e].u]++] = HalfEdge{edges[e].v, e};
    half_edges[cursor[edges[e].v]++] = HalfEdge{edges[e].u, e};
  }
  // Sort each adjacency slice by neighbor id (no duplicates, so the
  // order is total) — this is what makes the finished graph independent
  // of insertion order and find_edge a binary search.
  for (std::size_t u = 0; u < n; ++u)
    std::sort(half_edges.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              half_edges.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });

  return WeightedGraph(std::move(offsets), std::move(half_edges),
                       std::move(edges), max_degree);
}

WeightedGraph build_graph(std::size_t n, std::initializer_list<Edge> edges) {
  GraphBuilder b(n);
  for (const Edge& e : edges) b.add_edge(e.u, e.v, e.latency);
  return b.build();
}

StreamingCsrBuilder::StreamingCsrBuilder(std::size_t n)
    : num_nodes_(n), offsets_(n + 1, 0) {
  if (n > static_cast<std::size_t>(kInvalidNode))
    throw std::invalid_argument("graph too large for NodeId");
}

void StreamingCsrBuilder::check_edge_nodes(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_)
    throw std::out_of_range("node id out of range");
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
}

void StreamingCsrBuilder::count_edge(NodeId u, NodeId v) {
  if (stage_ != Stage::kCounting)
    throw std::logic_error("count_edge after finish_count");
  check_edge_nodes(u, v);
  ++offsets_[u + 1];
  ++offsets_[v + 1];
  ++num_edges_;
}

void StreamingCsrBuilder::finish_count() {
  if (stage_ != Stage::kCounting)
    throw std::logic_error("finish_count called twice");
  if (num_edges_ > static_cast<std::size_t>(kInvalidEdge))
    throw std::invalid_argument("graph too large for EdgeId");
  max_degree_ = 0;
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    max_degree_ = std::max(max_degree_, offsets_[u + 1]);
    offsets_[u + 1] += offsets_[u];
  }
  // Exact-size allocations; nothing here is ever resized again.
  half_edges_.resize(2 * num_edges_);
  edges_.reserve(num_edges_);
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  counted_edges_ = num_edges_;
  num_edges_ = 0;
  stage_ = Stage::kFilling;
}

void StreamingCsrBuilder::fill_edge(NodeId u, NodeId v, Latency latency) {
  if (stage_ != Stage::kFilling)
    throw std::logic_error("fill_edge before finish_count");
  check_edge_nodes(u, v);
  if (latency < 1) throw std::invalid_argument("latency must be >= 1");
  if (num_edges_ == counted_edges_)
    throw std::invalid_argument(
        "streaming pass 2 emitted more edges than pass 1");
  const auto e = static_cast<EdgeId>(num_edges_++);
  if (cursor_[u] >= offsets_[u + 1] || cursor_[v] >= offsets_[v + 1])
    throw std::invalid_argument(
        "streaming pass 2 disagrees with pass 1 degree counts");
  half_edges_[cursor_[u]++] = HalfEdge{v, e};
  half_edges_[cursor_[v]++] = HalfEdge{u, e};
  edges_.push_back(Edge{u, v, latency});
}

WeightedGraph StreamingCsrBuilder::build() {
  if (stage_ != Stage::kFilling)
    throw std::logic_error("build before finish_count");
  if (num_edges_ != counted_edges_)
    throw std::invalid_argument(
        "streaming pass 2 emitted fewer edges than pass 1");
  const std::size_t n = num_nodes_;
  for (std::size_t u = 0; u < n; ++u)
    std::sort(half_edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
              half_edges_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
  // Deferred duplicate detection: after the sort, parallel edges sit
  // adjacent in their slice — one contiguous scan replaces the hash
  // index GraphBuilder carries through construction.
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t i = offsets_[u] + 1; i < offsets_[u + 1]; ++i)
      if (half_edges_[i].to == half_edges_[i - 1].to)
        throw std::invalid_argument("duplicate edge");

  std::vector<std::size_t> offsets = std::move(offsets_);
  std::vector<HalfEdge> half_edges = std::move(half_edges_);
  std::vector<Edge> edges = std::move(edges_);
  const std::size_t max_degree = max_degree_;
  cursor_.clear();
  num_nodes_ = 0;
  num_edges_ = 0;
  counted_edges_ = 0;
  max_degree_ = 0;
  offsets_.assign(1, 0);
  stage_ = Stage::kCounting;
  return WeightedGraph(std::move(offsets), std::move(half_edges),
                       std::move(edges), max_degree);
}

}  // namespace latgossip
