#pragma once
// Column-aligned plain-text tables and CSV output for bench harnesses.
//
// Every experiment binary prints a self-describing table of (parameter,
// measurement, theory-reference) rows; this keeps all benches uniform.

#include <concepts>
#include <cstdio>
#include <string>
#include <vector>

namespace latgossip {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row. Must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  template <typename... Args>
  void add(Args&&... args) {
    add_row({cell(std::forward<Args>(args))...});
  }

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with aligned columns.
  std::string to_string() const;
  /// Render as CSV (no quoting; cells must not contain commas).
  std::string to_csv() const;
  /// Print to stdout with a caption line.
  void print(const std::string& caption) const;

 private:
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v);
  template <typename T>
    requires std::integral<T>
  static std::string cell(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace latgossip
