#pragma once
// Dynamic bitset used for rumor sets.
//
// Information-dissemination protocols carry "rumor sets" (subsets of node
// IDs). A packed 64-bit-word bitset makes the dominant operations —
// union, subset test, popcount — O(n/64) and cache-friendly.
//
// Storage is small-buffer optimized: sets of up to kInlineWords * 64 bits
// (512) live inline in the object, with no heap allocation and no pointer
// chase. This keeps the simulator's hot structures flat — a
// std::vector<Bitset> of 512-node rumor sets is one contiguous buffer,
// and a snapshot block (util/snapshot.h) holds its words in the same
// cache lines as its header — which is where the all-to-all gossip
// benchmarks spend their time. Larger sets fall back to a heap array.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace latgossip {

class Bitset {
 public:
  /// Sets of at most this many 64-bit words are stored inline.
  static constexpr std::size_t kInlineWords = 8;

  Bitset() noexcept : size_(0), num_words_(0) {}

  /// All-zero bitset with `size` bits.
  explicit Bitset(std::size_t size)
      : size_(size), num_words_((size + 63) / 64) {
    if (num_words_ > kInlineWords) heap_ = new std::uint64_t[num_words_];
    std::fill_n(data(), num_words_, 0);
  }

  Bitset(const Bitset& other)
      : size_(other.size_), num_words_(other.num_words_) {
    if (num_words_ > kInlineWords) heap_ = new std::uint64_t[num_words_];
    std::copy_n(other.data(), num_words_, data());
  }

  Bitset(Bitset&& other) noexcept
      : size_(other.size_), num_words_(other.num_words_) {
    if (num_words_ > kInlineWords) {
      heap_ = other.heap_;
      other.size_ = 0;
      other.num_words_ = 0;
    } else {
      std::copy_n(other.inline_, num_words_, inline_);
    }
  }

  Bitset& operator=(const Bitset& other) {
    if (this == &other) return *this;
    if (num_words_ != other.num_words_) {
      if (num_words_ > kInlineWords) delete[] heap_;
      if (other.num_words_ > kInlineWords)
        heap_ = new std::uint64_t[other.num_words_];
    }
    size_ = other.size_;
    num_words_ = other.num_words_;
    std::copy_n(other.data(), num_words_, data());
    return *this;
  }

  Bitset& operator=(Bitset&& other) noexcept {
    if (this == &other) return *this;
    if (num_words_ > kInlineWords) delete[] heap_;
    size_ = other.size_;
    num_words_ = other.num_words_;
    if (num_words_ > kInlineWords) {
      heap_ = other.heap_;
      other.size_ = 0;
      other.num_words_ = 0;
    } else {
      std::copy_n(other.inline_, num_words_, inline_);
    }
    return *this;
  }

  ~Bitset() {
    if (num_words_ > kInlineWords) delete[] heap_;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const {
    check(i);
    return (data()[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) {
    check(i);
    data()[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    check(i);
    data()[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() noexcept { std::fill_n(data(), num_words_, 0); }

  /// Re-zero under a (possibly different) bit count. When the word
  /// count is unchanged this reuses the existing storage — the
  /// workspace-reuse steady state (DESIGN.md §5h) re-arms every
  /// rumor/informed set without touching the heap. (`reset(i)` above
  /// clears one bit; this re-initializes the whole set.)
  void reinit(std::size_t size) {
    const std::size_t words = (size + 63) / 64;
    if (words == num_words_) {
      size_ = size;
      clear();
      return;
    }
    *this = Bitset(size);
  }

  void set_all() noexcept {
    std::fill_n(data(), num_words_, ~std::uint64_t{0});
    trim();
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    const std::uint64_t* w = data();
    std::size_t c = 0;
    for (std::size_t i = 0; i < num_words_; ++i)
      c += static_cast<std::size_t>(std::popcount(w[i]));
    return c;
  }

  bool all() const noexcept { return count() == size_; }

  /// Word-level "every bit set" test: compares whole 64-bit words
  /// against all-ones and exits at the first miss, so the common
  /// not-yet-done case costs a single load + compare. This is the fast
  /// path behind PushPullBroadcast::done().
  bool all_set() const noexcept {
    if (size_ == 0) return true;
    const std::uint64_t* w = data();
    const std::size_t full_words = size_ >> 6;
    for (std::size_t i = 0; i < full_words; ++i)
      if (w[i] != ~std::uint64_t{0}) return false;
    const std::size_t tail = size_ & 63;
    if (tail != 0)
      return w[num_words_ - 1] == (std::uint64_t{1} << tail) - 1;
    return true;
  }
  bool none() const noexcept {
    const std::uint64_t* w = data();
    for (std::size_t i = 0; i < num_words_; ++i)
      if (w[i] != 0) return false;
    return true;
  }

  /// In-place union. Precondition: same size.
  Bitset& operator|=(const Bitset& other) {
    check_same(other);
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    for (std::size_t i = 0; i < num_words_; ++i) w[i] |= o[i];
    return *this;
  }

  /// Result of or_assign_changed(): whether the union added any bit,
  /// and how many. `changed == (added > 0)` always holds; protocols use
  /// `changed` to skip snapshot invalidation / satisfaction refresh and
  /// `added` to keep per-node rumor counts incremental (no per-delivery
  /// count() re-scan).
  struct OrDelta {
    bool changed = false;
    std::size_t added = 0;
  };

  /// In-place union with change detection: one word-level pass that
  /// ORs `other` in and popcounts the newly set bits as it goes.
  /// Precondition: same size.
  OrDelta or_assign_changed(const Bitset& other) {
    check_same(other);
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    std::size_t added = 0;
    // Branchless on purpose: a per-word `if (incoming != 0)` guard is
    // data-dependent and mispredicts badly on half-full rumor sets,
    // costing more than the unconditional popcount+OR it would skip.
    for (std::size_t i = 0; i < num_words_; ++i) {
      const std::uint64_t incoming = o[i] & ~w[i];
      added += static_cast<std::size_t>(std::popcount(incoming));
      w[i] |= o[i];
    }
    return OrDelta{added > 0, added};
  }

  /// Overwrite this with `other`'s contents and return `other`'s
  /// popcount, fused into the copy pass (the snapshot arena fills
  /// blocks with this so the cached count costs no second scan).
  /// Precondition: same size.
  std::size_t assign_and_count(const Bitset& other) {
    check_same(other);
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    std::size_t count = 0;
    for (std::size_t i = 0; i < num_words_; ++i) {
      const std::uint64_t x = o[i];
      w[i] = x;
      count += static_cast<std::size_t>(std::popcount(x));
    }
    return count;
  }

  /// In-place intersection. Precondition: same size.
  Bitset& operator&=(const Bitset& other) {
    check_same(other);
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    for (std::size_t i = 0; i < num_words_; ++i) w[i] &= o[i];
    return *this;
  }

  /// In-place difference (this \ other). Precondition: same size.
  Bitset& operator-=(const Bitset& other) {
    check_same(other);
    std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    for (std::size_t i = 0; i < num_words_; ++i) w[i] &= ~o[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }

  bool operator==(const Bitset& other) const noexcept {
    return size_ == other.size_ &&
           std::equal(data(), data() + num_words_, other.data());
  }

  /// True iff every bit of this is also set in `other`.
  bool is_subset_of(const Bitset& other) const {
    check_same(other);
    const std::uint64_t* w = data();
    const std::uint64_t* o = other.data();
    for (std::size_t i = 0; i < num_words_; ++i)
      if ((w[i] & ~o[i]) != 0) return false;
    return true;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const noexcept {
    if (from >= size_) return size_;
    const std::uint64_t* words = data();
    std::size_t word_index = from >> 6;
    std::uint64_t w = words[word_index] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        std::size_t bit =
            (word_index << 6) + static_cast<std::size_t>(std::countr_zero(w));
        return bit < size_ ? bit : size_;
      }
      if (++word_index >= num_words_) return size_;
      w = words[word_index];
    }
  }

  std::size_t find_first() const noexcept { return find_next(0); }

  /// FNV-1a hash of the contents (used by the termination check to
  /// compare rumor sets by fingerprint instead of shipping whole sets).
  std::uint64_t hash() const noexcept {
    const std::uint64_t* w = data();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < num_words_; ++i) {
      h ^= w[i];
      h *= 0x100000001b3ULL;
    }
    return h ^ size_;
  }

  /// Read-only view of the packed 64-bit words (bit i of the set lives
  /// at word i/64, bit i%64; bits past size() are zero). Lets callers —
  /// graph volume, conductance cut sweeps — iterate set words instead
  /// of individual bits.
  std::span<const std::uint64_t> words() const noexcept {
    return {data(), num_words_};
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = find_first(); i < size_; i = find_next(i + 1))
      out.push_back(i);
    return out;
  }

 private:
  std::uint64_t* data() noexcept {
    return num_words_ > kInlineWords ? heap_ : inline_;
  }
  const std::uint64_t* data() const noexcept {
    return num_words_ > kInlineWords ? heap_ : inline_;
  }

  void check(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("Bitset index out of range");
  }
  void check_same(const Bitset& other) const {
    if (size_ != other.size_)
      throw std::invalid_argument("Bitset size mismatch");
  }
  /// Zero bits beyond size_ in the last word.
  void trim() noexcept {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && num_words_ != 0)
      data()[num_words_ - 1] &= (std::uint64_t{1} << tail) - 1;
  }

  std::size_t size_ = 0;
  std::size_t num_words_ = 0;
  union {
    std::uint64_t inline_[kInlineWords];
    std::uint64_t* heap_;
  };
};

}  // namespace latgossip
