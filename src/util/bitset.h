#pragma once
// Dynamic bitset used for rumor sets.
//
// Information-dissemination protocols carry "rumor sets" (subsets of node
// IDs). A packed 64-bit-word bitset makes the dominant operations —
// union, subset test, popcount — O(n/64) and cache-friendly.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace latgossip {

class Bitset {
 public:
  Bitset() = default;

  /// All-zero bitset with `size` bits.
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const {
    check(i);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) {
    check(i);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    check(i);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  void set_all() noexcept {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool all() const noexcept { return count() == size_; }

  /// Word-level "every bit set" test: compares whole 64-bit words
  /// against all-ones and exits at the first miss, so the common
  /// not-yet-done case costs a single load + compare. This is the fast
  /// path behind PushPullBroadcast::done().
  bool all_set() const noexcept {
    if (size_ == 0) return true;
    const std::size_t full_words = size_ >> 6;
    for (std::size_t i = 0; i < full_words; ++i)
      if (words_[i] != ~std::uint64_t{0}) return false;
    const std::size_t tail = size_ & 63;
    if (tail != 0)
      return words_.back() == (std::uint64_t{1} << tail) - 1;
    return true;
  }
  bool none() const noexcept {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// In-place union. Precondition: same size.
  Bitset& operator|=(const Bitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection. Precondition: same size.
  Bitset& operator&=(const Bitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place difference (this \ other). Precondition: same size.
  Bitset& operator-=(const Bitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }

  bool operator==(const Bitset& other) const noexcept {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// True iff every bit of this is also set in `other`.
  bool is_subset_of(const Bitset& other) const {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const noexcept {
    if (from >= size_) return size_;
    std::size_t word_index = from >> 6;
    std::uint64_t w = words_[word_index] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        std::size_t bit =
            (word_index << 6) + static_cast<std::size_t>(std::countr_zero(w));
        return bit < size_ ? bit : size_;
      }
      if (++word_index >= words_.size()) return size_;
      w = words_[word_index];
    }
  }

  std::size_t find_first() const noexcept { return find_next(0); }

  /// FNV-1a hash of the contents (used by the termination check to
  /// compare rumor sets by fingerprint instead of shipping whole sets).
  std::uint64_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (auto w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h ^ size_;
  }

  /// Read-only view of the packed 64-bit words (bit i of the set lives
  /// at word i/64, bit i%64; bits past size() are zero). Lets callers —
  /// graph volume, conductance cut sweeps — iterate set words instead
  /// of individual bits.
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = find_first(); i < size_; i = find_next(i + 1))
      out.push_back(i);
    return out;
  }

 private:
  void check(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("Bitset index out of range");
  }
  void check_same(const Bitset& other) const {
    if (size_ != other.size_)
      throw std::invalid_argument("Bitset size mismatch");
  }
  /// Zero bits beyond size_ in the last word.
  void trim() noexcept {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace latgossip
