#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace latgossip {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v) {
  char buf[64];
  if (v == 0.0) return "0";
  const double av = std::fabs(v);
  if (av >= 1e7 || av < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else if (v == std::floor(v) && av < 1e7) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < headers_.size()) rule.append(2, ' ');
  }
  out += rule;
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(const std::string& caption) const {
  std::printf("\n== %s ==\n%s", caption.c_str(), to_string().c_str());
  std::fflush(stdout);
}

}  // namespace latgossip
