#pragma once
// Lightweight statistics helpers for experiment harnesses and tests.

#include <cstddef>
#include <vector>

namespace latgossip {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: mean/stddev/min/max/median/percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Summarize a sample (copied and sorted internally).
Summary summarize(std::vector<double> values);

/// Percentile by linear interpolation on the sorted sample, q in [0, 1].
double percentile(const std::vector<double>& sorted_values, double q);

}  // namespace latgossip
