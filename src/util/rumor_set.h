#pragma once
// Interchangeable rumor-set representations.
//
// Rumor-set protocols (core/) carry one subset of [0, n) per node and
// spend their time on three operations: union a delivered payload into
// the local set (or_assign_changed), snapshot the local set into an
// immutable payload block (assign_and_count / copy-assign), and test
// membership. A dense Bitset is ideal while n is small — every set is
// n/8 bytes regardless of content — but an n-node all-pairs layout
// costs n²/8 bytes, which walls the simulator at ~65k nodes (ROADMAP
// item 2).
//
// This header factors the representation into a compile-time concept,
// RumorSetRep, modeled by three interchangeable types:
//
//  * Bitset           (util/bitset.h) — the unchanged dense fast path.
//  * SparseRumorSet   — sorted u32 vector for broadcast-style workloads
//                       where |set| ≪ n (k rumors spreading through a
//                       large graph); promotes itself to dense past the
//                       break-even point so adversarial growth degrades
//                       to Bitset behavior instead of O(k) inserts.
//  * CountRumorSet    — dense membership plus a saturation collapse for
//                       all-to-all: once a set holds every rumor its
//                       words are freed and every union/capture against
//                       it is O(1). Membership below saturation stays
//                       exact — a count alone cannot reproduce union
//                       results, so this is "counting mode" in the
//                       sense that only |set| drives the observables
//                       and a full set needs no words.
//
// All three are observationally identical: the engine-vs-oracle
// differential harness (check/differential.cpp) runs the same case
// under every representation and requires bit-identical SimResults and
// event fingerprints (the cross-representation satellite of ROADMAP
// item 2). Protocols are templated over the representation
// (core/push_pull.h BasicPushPullGossip<R> etc.) with Bitset-typedefs
// preserving the historical names, so the dense instantiation inlines
// exactly as before.

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/bitset.h"

namespace latgossip {

/// Compile-time contract every rumor-set representation satisfies.
/// Bitset models it natively; SparseRumorSet / CountRumorSet mirror the
/// subset of Bitset's API the protocols and the snapshot arena use.
template <typename R>
concept RumorSetRep =
    std::copyable<R> && requires(R r, const R& cr, std::size_t i) {
      R(i);                              // all-zero set over [0, i)
      r.reinit(i);                       // re-zero, possibly resizing
      r.clear();                         // re-zero in place
      r.set(i);                          // insert one element
      { cr.test(i) } -> std::convertible_to<bool>;
      { cr.size() } -> std::convertible_to<std::size_t>;
      { cr.count() } -> std::convertible_to<std::size_t>;
      { r.or_assign_changed(cr) } -> std::same_as<typename R::OrDelta>;
      { r.assign_and_count(cr) } -> std::convertible_to<std::size_t>;
      { cr == cr } -> std::convertible_to<bool>;
    };

/// The dense representation is the Bitset itself — zero adaptation, so
/// the historical protocol aliases instantiate to exactly the code that
/// shipped before this layer existed.
using DenseRumorSet = Bitset;

/// Sorted-vector sparse set over [0, size). Memory is 4 bytes per
/// element versus the dense 1 bit per node, so sparse wins while
/// |set| < size/32; once an instance grows past kPromoteNumerator *
/// size / kPromoteDenominator elements it promotes itself to a dense
/// Bitset and stays dense until the next reinit()/clear(). Promotion is
/// per-instance: in a k-source broadcast every set stays sparse
/// forever, while a worst-case all-to-all degrades to Bitset costs
/// instead of O(|set|) insertion churn.
class SparseRumorSet {
 public:
  using OrDelta = Bitset::OrDelta;

  SparseRumorSet() = default;
  explicit SparseRumorSet(std::size_t size) : size_(size) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Elements held before a sparse set of `size` promotes to dense
  /// (the 4-bytes-per-element vs size/8-bytes break-even, floored so
  /// tiny sets never bother promoting).
  static std::size_t promote_threshold(std::size_t size) noexcept {
    return std::max<std::size_t>(64, size / 32);
  }

  bool test(std::size_t i) const {
    check(i);
    if (dense_) return bits_.test(i);
    return std::binary_search(elems_.begin(), elems_.end(),
                              static_cast<std::uint32_t>(i));
  }

  void set(std::size_t i) {
    check(i);
    if (dense_) {
      if (!bits_.test(i)) {
        bits_.set(i);
        ++count_;
      }
      return;
    }
    const auto v = static_cast<std::uint32_t>(i);
    const auto it = std::lower_bound(elems_.begin(), elems_.end(), v);
    if (it != elems_.end() && *it == v) return;
    elems_.insert(it, v);
    maybe_promote();
  }

  void clear() noexcept {
    elems_.clear();
    dense_ = false;
    count_ = 0;
    bits_ = Bitset();
  }

  /// Re-zero under a (possibly different) universe size; drops back to
  /// sparse mode. Element storage capacity is kept (workspace reuse).
  void reinit(std::size_t size) {
    clear();
    size_ = size;
  }

  std::size_t count() const noexcept {
    return dense_ ? count_ : elems_.size();
  }

  bool all() const noexcept { return count() == size_; }

  /// In-place union with exact change accounting — the observational
  /// contract matched against Bitset::or_assign_changed by the
  /// cross-representation differential sweep. Precondition: same size.
  OrDelta or_assign_changed(const SparseRumorSet& other) {
    check_same(other);
    if (other.count() == 0) return OrDelta{};
    if (dense_) {
      if (other.dense_) {
        const OrDelta delta = bits_.or_assign_changed(other.bits_);
        count_ += delta.added;
        return delta;
      }
      std::size_t added = 0;
      for (const std::uint32_t v : other.elems_) {
        if (!bits_.test(v)) {
          bits_.set(v);
          ++added;
        }
      }
      count_ += added;
      return OrDelta{added > 0, added};
    }
    if (other.dense_) {
      promote();
      return or_assign_changed(other);
    }
    // Sparse ∪ sparse: merge the sorted element lists.
    const std::size_t before = elems_.size();
    std::vector<std::uint32_t> merged;
    merged.reserve(before + other.elems_.size());
    std::set_union(elems_.begin(), elems_.end(), other.elems_.begin(),
                   other.elems_.end(), std::back_inserter(merged));
    const std::size_t added = merged.size() - before;
    if (added == 0) return OrDelta{};
    elems_ = std::move(merged);
    maybe_promote();
    return OrDelta{true, added};
  }

  /// Overwrite this with `other` and return `other`'s cardinality (the
  /// snapshot arena's fused copy+count, see util/snapshot.h).
  std::size_t assign_and_count(const SparseRumorSet& other) {
    *this = other;
    return count();
  }

  bool operator==(const SparseRumorSet& other) const {
    if (size_ != other.size_) return false;
    if (count() != other.count()) return false;
    if (dense_ && other.dense_) return bits_ == other.bits_;
    // Mixed-mode compare: membership, not layout, defines equality.
    const SparseRumorSet& sparse = dense_ ? other : *this;
    const SparseRumorSet& any = dense_ ? *this : other;
    for (const std::uint32_t v : sparse.elems_)
      if (!any.test(v)) return false;
    return true;
  }

  /// Indices of all elements, ascending (tests / debugging).
  std::vector<std::size_t> to_indices() const {
    if (dense_) return bits_.to_indices();
    return {elems_.begin(), elems_.end()};
  }

  /// True while the instance is still in sorted-vector mode.
  bool is_sparse() const noexcept { return !dense_; }

 private:
  void check(std::size_t i) const {
    if (i >= size_)
      throw std::out_of_range("SparseRumorSet index out of range");
  }
  void check_same(const SparseRumorSet& other) const {
    if (size_ != other.size_)
      throw std::invalid_argument("SparseRumorSet size mismatch");
  }

  void maybe_promote() {
    if (elems_.size() > promote_threshold(size_)) promote();
  }

  void promote() {
    bits_.reinit(size_);
    for (const std::uint32_t v : elems_) bits_.set(v);
    count_ = elems_.size();
    elems_.clear();
    dense_ = true;
  }

  std::size_t size_ = 0;
  bool dense_ = false;
  std::vector<std::uint32_t> elems_;  ///< sorted; valid when !dense_
  Bitset bits_;                       ///< valid when dense_
  std::size_t count_ = 0;             ///< popcount mirror when dense_
};

/// Dense membership with a cached cardinality and a saturation
/// collapse. Below saturation this is a Bitset plus a count; the moment
/// a set holds all `size` elements its words are released and every
/// subsequent operation answers from the count alone — unions into or
/// from a full set are O(1), and snapshot captures of a full set copy
/// no words. In the late phase of an all-to-all run, where almost every
/// delivery lands on an already-complete node, that converts the O(n/64)
/// per-delivery union walk into a flag test.
class CountRumorSet {
 public:
  using OrDelta = Bitset::OrDelta;

  CountRumorSet() = default;
  explicit CountRumorSet(std::size_t size)
      : size_(size), bits_(size), full_(size == 0) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const {
    check(i);
    return full_ || bits_.test(i);
  }

  void set(std::size_t i) {
    check(i);
    if (full_) return;
    if (!bits_.test(i)) {
      bits_.set(i);
      ++count_;
      maybe_saturate();
    }
  }

  void clear() {
    full_ = size_ == 0;
    count_ = 0;
    bits_.reinit(size_);
  }

  void reinit(std::size_t size) {
    size_ = size;
    clear();
  }

  std::size_t count() const noexcept { return full_ ? size_ : count_; }
  bool all() const noexcept { return full_; }

  OrDelta or_assign_changed(const CountRumorSet& other) {
    check_same(other);
    if (full_) return OrDelta{};
    if (other.full_) {
      // Everything missing arrives at once; the receiver saturates.
      const std::size_t added = size_ - count_;
      saturate();
      return OrDelta{added > 0, added};
    }
    const OrDelta delta = bits_.or_assign_changed(other.bits_);
    count_ += delta.added;
    maybe_saturate();
    return delta;
  }

  std::size_t assign_and_count(const CountRumorSet& other) {
    *this = other;
    return count();
  }

  bool operator==(const CountRumorSet& other) const {
    if (size_ != other.size_ || count() != other.count()) return false;
    if (full_ || other.full_) return true;  // equal full counts
    return bits_ == other.bits_;
  }

  std::vector<std::size_t> to_indices() const {
    if (!full_) return bits_.to_indices();
    std::vector<std::size_t> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = i;
    return out;
  }

  /// True once the saturation collapse fired (words released).
  bool saturated() const noexcept { return full_; }

 private:
  void check(std::size_t i) const {
    if (i >= size_)
      throw std::out_of_range("CountRumorSet index out of range");
  }
  void check_same(const CountRumorSet& other) const {
    if (size_ != other.size_)
      throw std::invalid_argument("CountRumorSet size mismatch");
  }
  void maybe_saturate() {
    if (count_ == size_) saturate();
  }
  void saturate() {
    full_ = true;
    count_ = 0;
    bits_ = Bitset();  // release the words; membership is implied
  }

  std::size_t size_ = 0;
  Bitset bits_;            ///< valid when !full_
  std::size_t count_ = 0;  ///< popcount mirror when !full_
  bool full_ = false;
};

static_assert(RumorSetRep<Bitset>);
static_assert(RumorSetRep<SparseRumorSet>);
static_assert(RumorSetRep<CountRumorSet>);

/// Starting rumor sets where each node knows exactly its own id — the
/// representation-generic twin of the protocols' own_id_rumors().
template <RumorSetRep R>
std::vector<R> own_id_rumor_sets(std::size_t n) {
  std::vector<R> r(n, R(n));
  for (std::size_t u = 0; u < n; ++u) r[u].set(u);
  return r;
}

/// Warm the representation's payload storage ahead of a union into it
/// (the engine's one-delivery-ahead prefetch). Representations without
/// a flat word array (sparse mode) skip the hint.
template <typename R>
inline void prefetch_rumor_set(const R& r) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  if constexpr (requires { r.words(); }) {
    const auto w = r.words();
    __builtin_prefetch(w.data(), /*rw=*/1, /*locality=*/1);
    __builtin_prefetch(reinterpret_cast<const char*>(w.data()) + 64, 1, 1);
  } else {
    (void)r;
  }
#else
  (void)r;
#endif
}

// ---------------------------------------------------------------------------
// Runtime representation selection.

/// Which rumor-set representation a run should instantiate. kAuto picks
/// dense below kDenseNodeThreshold nodes and sparse at or above it.
enum class RumorRep : std::uint8_t { kDense, kSparse, kCount, kAuto };

/// Auto-selection crossover. Below this node count a dense rumor set is
/// at most 8 KiB (n/8 bytes) and word-parallel unions beat any sparse
/// structure; above it an all-dense layout costs more than n²/8 ≈ 512
/// MiB across nodes and sparse wins whenever |set| ≪ n (the million-
/// node broadcast regime). 65536 matches the largest topology the dense
/// path was ever benched at (BENCH_engine.json, DESIGN.md §5i).
inline constexpr std::size_t kDenseNodeThreshold = 65536;

constexpr std::string_view rumor_rep_name(RumorRep rep) noexcept {
  switch (rep) {
    case RumorRep::kDense: return "dense";
    case RumorRep::kSparse: return "sparse";
    case RumorRep::kCount: return "count";
    case RumorRep::kAuto: return "auto";
  }
  return "?";
}

/// Parse a --rumor-rep flag value; throws on unknown names.
inline RumorRep parse_rumor_rep(std::string_view name) {
  if (name == "dense") return RumorRep::kDense;
  if (name == "sparse") return RumorRep::kSparse;
  if (name == "count") return RumorRep::kCount;
  if (name == "auto") return RumorRep::kAuto;
  throw std::invalid_argument("unknown rumor representation: " +
                              std::string(name));
}

/// Resolve kAuto against a concrete node count; concrete choices pass
/// through unchanged.
constexpr RumorRep resolve_rumor_rep(RumorRep rep, std::size_t num_nodes) {
  if (rep != RumorRep::kAuto) return rep;
  return num_nodes < kDenseNodeThreshold ? RumorRep::kDense
                                         : RumorRep::kSparse;
}

/// Invoke `fn` with the representation type selected by `rep` (kAuto
/// resolved against `num_nodes`): fn.template operator()<R>() — the
/// runtime-flag-to-compile-time-type bridge used by the CLI and the
/// cross-representation differential harness.
template <typename Fn>
decltype(auto) with_rumor_rep(RumorRep rep, std::size_t num_nodes, Fn&& fn) {
  switch (resolve_rumor_rep(rep, num_nodes)) {
    case RumorRep::kSparse:
      return fn.template operator()<SparseRumorSet>();
    case RumorRep::kCount:
      return fn.template operator()<CountRumorSet>();
    case RumorRep::kDense:
    case RumorRep::kAuto:
      break;
  }
  return fn.template operator()<Bitset>();
}

}  // namespace latgossip
