#pragma once
// Regression helpers used by experiment harnesses to compare measured
// series against the theoretical growth predicted by the paper.

#include <vector>

namespace latgossip {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fit y = C * x^a by OLS in log-log space; returns {a, log C, R^2}.
/// Used to verify asymptotic shapes, e.g. "rounds grow linearly in m"
/// (Lemma 4) should yield an exponent near 1. All values must be > 0.
LinearFit loglog_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace latgossip
