#include "util/fit.h"

#include <cmath>
#include <stdexcept>

namespace latgossip {

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("linear_fit: degenerate x");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    f.r_squared = 1.0;  // constant y perfectly explained
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (f.slope * x[i] + f.intercept);
      ss_res += e * e;
    }
    f.r_squared = 1.0 - ss_res / ss_tot;
  }
  return f;
}

LinearFit loglog_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("loglog_fit: size mismatch");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0)
      throw std::invalid_argument("loglog_fit: values must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace latgossip
