#include "util/args.h"

#include <cstdlib>
#include <stdexcept>

namespace latgossip {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Args::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Args::allow_only(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    bool ok = false;
    for (const auto& k : known)
      if (k == name) {
        ok = true;
        break;
      }
    if (!ok) throw std::invalid_argument("unknown flag --" + name);
  }
}

}  // namespace latgossip
