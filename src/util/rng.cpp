#include "util/rng.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace latgossip {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample: k > n");
  // Floyd's algorithm: O(k) expected time, O(k) space.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = uniform(j + 1);
    if (chosen.count(t) != 0) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  // Return in shuffled order for callers that iterate prefix-first.
  shuffle(out);
  return out;
}

}  // namespace latgossip
