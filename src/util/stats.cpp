#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latgossip {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(const std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty())
    throw std::invalid_argument("percentile of empty sample");
  if (q <= 0.0) return sorted_values.front();
  if (q >= 1.0) return sorted_values.back();
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  Accumulator acc;
  for (double v : values) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(values, 0.5);
  s.p90 = percentile(values, 0.9);
  s.p99 = percentile(values, 0.99);
  return s;
}

}  // namespace latgossip
