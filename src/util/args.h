#pragma once
// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports --name=value plus boolean --flag; anything else is
// positional. allow_only() lets binaries reject typo'd flags.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace latgossip {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws std::invalid_argument if any parsed flag is not in `known`.
  void allow_only(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace latgossip
