#pragma once
// Copy-on-write payload snapshots for rumor-set protocols.
//
// Rumor sets are union-monotone, and the engine's payload semantics say
// capture_payload(u, r) must reflect u's state at round r (see
// sim/engine.h and DESIGN.md §5g). Because a snapshot is immutable once
// taken, a node whose rumor set has NOT changed since its last capture
// can hand out the *same* snapshot again — sharing is observationally
// indistinguishable from copy-at-capture. That turns the all-to-all hot
// path's two full n-bit Bitset heap copies per exchange into two
// reference-count bumps in steady state.
//
// Three pieces, each templated over the rumor-set representation R
// (util/rumor_set.h) — Bitset for the dense fast path, SparseRumorSet /
// CountRumorSet for the million-node regime — with the historical
// Bitset-instantiation names kept as aliases:
//  * BasicSnapshotArena<R> — owns ref-counted immutable R blocks;
//    blocks whose last reference dies are recycled through a free pool,
//    so once the pool covers the in-flight peak, captures allocate
//    nothing. Every block caches its cardinality at fill time, so
//    payload_bits() accounting never re-scans the contents.
//  * BasicSnapshotRef<R> — a cheap handle (copy = refcount bump, move =
//    pointer steal) protocols use as their Payload type. The referenced
//    set is immutable for the life of the handle.
//  * BasicSnapshotCache<R> — per-node "current snapshot" slots with a
//    dirty bit (an empty slot IS the dirty bit): shared() re-captures
//    only after invalidate(), fresh() always deep-copies (the reference
//    oracle's naive path, see sim/oracle.h).
//
// Lifetime: every snapshot ref must die before its arena. Protocols get
// this for free by declaring the cache/arena member before any member
// holding refs, and because run_gossip()'s delivery queue (which holds
// payload refs) is destroyed before the caller-owned protocol. The
// arena is single-threaded by design — one protocol instance, one
// trial, one thread (matching run_trials' isolation contract) — so the
// refcounts are plain integers.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/bitset.h"

namespace latgossip {

template <typename R>
class BasicSnapshotArena;
template <typename R>
class BasicSnapshotCache;

namespace snapshot_detail {

/// Cache-line aligned, metadata first: for rumor sets that fit Bitset's
/// inline words (≤512 bits) the whole block — refcount, cached count,
/// and words — spans exactly two 64-byte lines, so a delivery's
/// union-and-release touches two lines instead of a scattered three or
/// four. Blocks come out of contiguous slabs (below) for the same
/// reason.
template <typename R>
struct alignas(64) Block {
  std::size_t count = 0;  ///< cardinality of bits, cached at fill time
  std::uint32_t refs = 0;
  /// Set when the cache's node state changed while the cache held the
  /// only reference: the block's contents are out of date but nobody
  /// can observe them, so the next shared() refills this block in place
  /// instead of cycling a fresh one through the pool
  /// (BasicSnapshotCache).
  bool stale = false;
  BasicSnapshotArena<R>* arena = nullptr;
  R bits;
};

}  // namespace snapshot_detail

/// Shared handle to one immutable snapshot block. Default-constructed
/// refs are empty (used as the "dirty"/absent state); dereferencing an
/// empty ref is undefined.
template <typename R>
class BasicSnapshotRef {
 public:
  BasicSnapshotRef() = default;
  BasicSnapshotRef(const BasicSnapshotRef& other) noexcept
      : block_(other.block_) {
    if (block_ != nullptr) ++block_->refs;
  }
  BasicSnapshotRef(BasicSnapshotRef&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  BasicSnapshotRef& operator=(const BasicSnapshotRef& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      if (block_ != nullptr) ++block_->refs;
    }
    return *this;
  }
  BasicSnapshotRef& operator=(BasicSnapshotRef&& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~BasicSnapshotRef() { release(); }

  explicit operator bool() const noexcept { return block_ != nullptr; }

  /// The snapshot's contents. Immutable; valid while this ref lives.
  const R& bits() const noexcept { return block_->bits; }

  /// Cached cardinality of bits() — O(1), never re-scans the contents.
  std::size_t count() const noexcept { return block_->count; }

  /// Identity of the underlying block (tests use this to assert that
  /// unchanged nodes hand out the same snapshot, not a copy).
  const void* id() const noexcept { return block_; }

  /// Warm the block's cache lines (header + inline words). The engine's
  /// delivery loop calls this on the *next* delivery's payload while the
  /// current union runs, hiding the pointer-chase miss on blocks that
  /// went cold while queued (sim/engine.h).
  void prefetch() const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (block_ != nullptr) {
      __builtin_prefetch(block_, /*rw=*/0, /*locality=*/1);
      __builtin_prefetch(reinterpret_cast<const char*>(block_) + 64, 0, 1);
    }
#endif
  }

  void reset() noexcept { release(); }

 private:
  friend class BasicSnapshotArena<R>;
  friend class BasicSnapshotCache<R>;
  explicit BasicSnapshotRef(snapshot_detail::Block<R>* block) noexcept
      : block_(block) {
    ++block_->refs;
  }
  void release() noexcept {
    if (block_ != nullptr && --block_->refs == 0)
      block_->arena->recycle(block_);
    block_ = nullptr;
  }

  snapshot_detail::Block<R>* block_ = nullptr;
};

/// Pool of fixed-width snapshot blocks. Non-movable: live refs hold
/// back-pointers into it.
template <typename R>
class BasicSnapshotArena {
 public:
  /// Every snapshot from this arena holds `bits` bits.
  explicit BasicSnapshotArena(std::size_t bits) : bits_(bits) {}
  BasicSnapshotArena(const BasicSnapshotArena&) = delete;
  BasicSnapshotArena& operator=(const BasicSnapshotArena&) = delete;

  /// Snapshot `contents` into a pooled block (cardinality computed in
  /// the same pass as the copy) and return a ref to it.
  BasicSnapshotRef<R> capture(const R& contents) {
    snapshot_detail::Block<R>* block = acquire();
    block->count = block->bits.assign_and_count(contents);
    return BasicSnapshotRef<R>(block);
  }

  /// Same, with the cardinality already known (protocols that track
  /// rumor counts incrementally skip the fused re-count).
  BasicSnapshotRef<R> capture(const R& contents, std::size_t known_count) {
    snapshot_detail::Block<R>* block = acquire();
    block->bits = contents;
    block->count = known_count;
    return BasicSnapshotRef<R>(block);
  }

  /// Reset for a new trial. Precondition: every ref into this arena has
  /// died (all blocks recycled into the pool) — guaranteed at trial
  /// boundaries because the engine releases pending deliveries before
  /// run_gossip returns and BasicSnapshotCache::reset drops its slots
  /// first. Same width: keeps slabs and pool, so the next run's captures
  /// reuse every block already allocated (steady-state reuse allocates
  /// nothing; stale block contents are overwritten at capture). New
  /// width: drops everything and starts fresh.
  void reset(std::size_t bits) {
    if (bits == bits_) {
      assert(pool_.size() == allocated_ && "SnapshotArena::reset with refs");
      return;
    }
    slabs_.clear();
    pool_.clear();
    next_in_slab_ = kSlabBlocks;
    allocated_ = 0;
    bits_ = bits;
  }

  /// Blocks ever allocated (the steady-state ceiling: once the pool
  /// covers the in-flight peak this stops growing).
  std::size_t allocated_blocks() const noexcept { return allocated_; }
  /// Blocks currently sitting in the free pool.
  std::size_t pooled_blocks() const noexcept { return pool_.size(); }
  /// Total capture() calls (copies actually performed).
  std::uint64_t captures() const noexcept { return captures_; }

 private:
  friend class BasicSnapshotRef<R>;
  friend class BasicSnapshotCache<R>;

  snapshot_detail::Block<R>* acquire() {
    ++captures_;
    if (!pool_.empty()) {
      snapshot_detail::Block<R>* block = pool_.back();
      pool_.pop_back();
      block->stale = false;
      return block;
    }
    if (next_in_slab_ == kSlabBlocks) {
      slabs_.push_back(
          std::make_unique<snapshot_detail::Block<R>[]>(kSlabBlocks));
      next_in_slab_ = 0;
    }
    snapshot_detail::Block<R>* block = &slabs_.back()[next_in_slab_++];
    ++allocated_;
    block->bits = R(bits_);
    block->arena = this;
    return block;
  }

  /// Overwrite a stale block's contents in place. Only legal while the
  /// caller holds the block's single reference (nobody else can observe
  /// the contents changing). Counted as a capture: it performs the same
  /// copy a fresh block would.
  void refill(snapshot_detail::Block<R>* block, const R& contents,
              std::size_t known_count) {
    ++captures_;
    block->bits = contents;
    block->count = known_count;
    block->stale = false;
  }
  void refill(snapshot_detail::Block<R>* block, const R& contents) {
    ++captures_;
    block->count = block->bits.assign_and_count(contents);
    block->stale = false;
  }

  void recycle(snapshot_detail::Block<R>* block) { pool_.push_back(block); }

  /// Blocks live in contiguous fixed-size slabs (stable addresses, like
  /// a deque, but with slab-sized runs of adjacent cache lines).
  static constexpr std::size_t kSlabBlocks = 64;

  std::size_t bits_;
  std::vector<std::unique_ptr<snapshot_detail::Block<R>[]>> slabs_;
  std::size_t next_in_slab_ = kSlabBlocks;
  std::size_t allocated_ = 0;
  std::vector<snapshot_detail::Block<R>*> pool_;
  std::uint64_t captures_ = 0;
};

/// Per-node current-snapshot slots over a private arena. The dirty bit
/// is the slot itself: invalidate() empties it, shared() re-captures
/// only into an empty slot.
template <typename R>
class BasicSnapshotCache {
 public:
  /// `nodes` slots; every snapshot holds `bits` bits.
  BasicSnapshotCache(std::size_t nodes, std::size_t bits)
      : arena_(bits), cached_(nodes) {}

  /// The node's current snapshot, re-copied from `contents` iff the
  /// node's state changed since the last capture (invalidate()).
  /// Copy-on-write fast path: an unchanged node's snapshot is returned
  /// by refcount bump alone. A changed node whose previous snapshot is
  /// no longer referenced elsewhere refills the same block in place —
  /// one stable block per quiet node, instead of churning the pool.
  BasicSnapshotRef<R> shared(std::size_t node, const R& contents) {
    BasicSnapshotRef<R>& slot = cached_[node];
    if (!slot)
      slot = arena_.capture(contents);
    else if (slot.block_->stale)
      arena_.refill(slot.block_, contents);
    return slot;
  }
  BasicSnapshotRef<R> shared(std::size_t node, const R& contents,
                             std::size_t known_count) {
    BasicSnapshotRef<R>& slot = cached_[node];
    if (!slot)
      slot = arena_.capture(contents, known_count);
    else if (slot.block_->stale)
      arena_.refill(slot.block_, contents, known_count);
    return slot;
  }

  /// An always-fresh private deep copy — the reference oracle's naive
  /// capture path (never shared, never cached), so engine-vs-oracle
  /// differential runs prove snapshot sharing ≡ copy-at-capture.
  BasicSnapshotRef<R> fresh(const R& contents) {
    return arena_.capture(contents);
  }
  BasicSnapshotRef<R> fresh(const R& contents, std::size_t known_count) {
    return arena_.capture(contents, known_count);
  }

  /// Mark the node's state changed: the next shared() re-copies. If the
  /// cache holds the only reference to the node's snapshot, the block is
  /// kept and merely marked stale (refilled in place on the next
  /// shared()); if payload refs are still in flight, the block is
  /// dropped so their immutable view survives.
  void invalidate(std::size_t node) noexcept {
    BasicSnapshotRef<R>& slot = cached_[node];
    if (slot.block_ != nullptr) {
      if (slot.block_->refs == 1)
        slot.block_->stale = true;
      else
        slot.reset();
    }
  }

  /// Reset for a new trial: releases every cached slot (recycling the
  /// blocks), resizes to `nodes` slots, and resets the arena. With
  /// unchanged sizes the slot vector and the arena's slabs are reused
  /// as-is — the workspace-reuse steady state allocates nothing here.
  void reset(std::size_t nodes, std::size_t bits) {
    for (BasicSnapshotRef<R>& slot : cached_) slot.reset();
    cached_.resize(nodes);
    arena_.reset(bits);
  }

  const BasicSnapshotArena<R>& arena() const noexcept { return arena_; }

 private:
  BasicSnapshotArena<R> arena_;  ///< declared first: outlives the refs
  std::vector<BasicSnapshotRef<R>> cached_;
};

/// Historical names: the dense Bitset instantiation every pre-existing
/// protocol, test, and bench compiles against unchanged.
using SnapshotRef = BasicSnapshotRef<Bitset>;
using SnapshotArena = BasicSnapshotArena<Bitset>;
using SnapshotCache = BasicSnapshotCache<Bitset>;

}  // namespace latgossip
