#pragma once
// Deterministic pseudo-random number generation for latgossip.
//
// All randomized components of the library take an explicit seed so that
// every experiment is reproducible bit-for-bit across platforms. We use
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, rather than
// std::mt19937 + <random> distributions, because the standard
// distributions are not guaranteed to produce identical streams across
// implementations.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace latgossip {

/// Splitmix64 step; used for seeding and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's nearly-divisionless unbiased method.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform_double() < p; }

  /// Geometric: number of failures before the first success, p in (0, 1].
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    std::uint64_t trials = 0;
    while (!bernoulli(p)) ++trials;
    return trials;
  }

  /// Derive an independent child generator (stable under reordering).
  Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    (void)(*this)();  // advance parent so repeated forks differ
    return Rng(splitmix64(sm));
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's method).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace latgossip
