#include "store/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/flooding.h"
#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/fingerprint.h"
#include "obs/recorder.h"
#include "store/cached_trials.h"
#include "store/json.h"
#include "store/store.h"
#include "store/wire.h"
#include "util/rumor_set.h"

namespace latgossip {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_mean(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  out += buf;
}

std::string error_response(const std::string& what) {
  JsonValue msg = JsonValue::make_string(what);
  return "{\"ok\":false,\"error\":" + json_serialize(msg) + "}";
}

/// Deterministic graph construction from a request's "graph" object.
/// Returns the graph plus its canonical spec string (fixed field
/// order) — the single-entry cache key and the provenance echo.
struct BuiltGraph {
  WeightedGraph graph;
  std::string spec;
};

BuiltGraph build_graph(const JsonValue& spec) {
  const std::string family = spec.get_string("family", "er");
  const auto n = static_cast<std::size_t>(spec.get_i64("n", 64));
  const auto rows = static_cast<std::size_t>(spec.get_i64("rows", 4));
  const auto cols = static_cast<std::size_t>(spec.get_i64("cols", 4));
  const double p = spec.get_double("p", 0.1);
  const auto d = static_cast<std::size_t>(spec.get_i64("d", 4));
  const auto attach = static_cast<std::size_t>(spec.get_i64("attach", 2));
  const auto seed = spec.get_u64("seed", 1);
  const std::string lat = spec.get_string("lat", "unit");
  const Latency lat_lo = spec.get_i64("lat_lo", 1);
  const Latency lat_hi = spec.get_i64("lat_hi", 8);
  const Latency lat_l = spec.get_i64("l", 1);

  Rng rng(seed);
  WeightedGraph g;
  std::string canon = "family=" + family;
  if (family == "clique") {
    g = make_clique(n);
  } else if (family == "cycle") {
    g = make_cycle(n);
  } else if (family == "path") {
    g = make_path(n);
  } else if (family == "star") {
    g = make_star(n);
  } else if (family == "ring") {
    g = make_ring_streaming(n);
  } else if (family == "torus") {
    g = make_torus_streaming(rows, cols);
    canon += ",rows=" + std::to_string(rows) + ",cols=" + std::to_string(cols);
  } else if (family == "er") {
    g = make_erdos_renyi(n, p, rng);
    char buf[32];
    std::snprintf(buf, sizeof buf, ",p=%.6g", p);
    canon += buf;
  } else if (family == "regular") {
    g = make_random_regular(n, d, rng);
    canon += ",d=" + std::to_string(d);
  } else if (family == "ba") {
    g = make_barabasi_albert(n, attach, rng);
    canon += ",attach=" + std::to_string(attach);
  } else {
    throw std::invalid_argument("unknown graph family '" + family + "'");
  }
  if (family != "torus") canon += ",n=" + std::to_string(n);
  canon += ",seed=" + std::to_string(seed);

  if (lat == "unit") {
    // Latencies stay at the builder default of 1.
  } else if (lat == "uniform") {
    assign_uniform_latency(g, lat_l);
    canon += ",lat=uniform,l=" + std::to_string(lat_l);
  } else if (lat == "range") {
    assign_random_uniform_latency(g, lat_lo, lat_hi, rng);
    canon += ",lat=range," + std::to_string(lat_lo) + ".." +
             std::to_string(lat_hi);
  } else {
    throw std::invalid_argument("unknown latency model '" + lat + "'");
  }
  return BuiltGraph{std::move(g), std::move(canon)};
}

/// The daemon rebuilds at most one graph per distinct spec in a row —
/// warm traffic repeats one spec, so a single-entry cache removes graph
/// generation from the hit path entirely.
class GraphCache {
 public:
  const BuiltGraph& get(const JsonValue& spec_json) {
    const std::string raw = json_serialize(spec_json);
    if (raw != raw_spec_) {
      built_ = build_graph(spec_json);
      raw_spec_ = raw;
    }
    return built_;
  }

 private:
  std::string raw_spec_;
  BuiltGraph built_;
};

/// Outcome of one cell batch, serialization-ready.
struct CellOutcome {
  TrialAggregate agg;
  StoredBatchStats stats;
  std::vector<std::vector<std::uint32_t>> curves;  ///< spread_curve only
  std::size_t nodes = 0;
};

void append_completion_result(std::string& out, const CellOutcome& cell) {
  out += "{\"trials\":";
  append_u64(out, cell.agg.trials.size());
  out += ",\"completed\":";
  append_u64(out, cell.agg.num_completed);
  out += ",\"rounds_mean\":";
  append_mean(out, cell.agg.rounds.mean());
  out += ",\"rounds_min\":";
  append_mean(out, cell.agg.rounds.min());
  out += ",\"rounds_max\":";
  append_mean(out, cell.agg.rounds.max());
  out += ",\"activations_mean\":";
  append_mean(out, cell.agg.activations.mean());
  out += ",\"messages_mean\":";
  append_mean(out, cell.agg.messages_delivered.mean());
  out += ",\"fingerprint\":\"";
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, cell.agg.fingerprint);
  out += buf;
  out += "\"}";
}

void append_store_block(std::string& out, const StoredBatchStats& stats) {
  out += "{\"hits\":";
  append_u64(out, stats.hits);
  out += ",\"misses\":";
  append_u64(out, stats.misses);
  out += '}';
}

/// Per-round informed-node counts from a finished PushPullBroadcast:
/// curve[r] = |{v : inform_round(v) <= r}| for r in [0, result.rounds].
std::vector<std::uint32_t> informed_curve(const PushPullBroadcast& proto,
                                          std::size_t n, Round rounds) {
  std::vector<std::uint32_t> curve(static_cast<std::size_t>(rounds) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const Round r = proto.inform_round(v);
    if (r >= 0 && r <= rounds) ++curve[static_cast<std::size_t>(r)];
  }
  for (std::size_t i = 1; i < curve.size(); ++i) curve[i] += curve[i - 1];
  return curve;
}

/// Run one cell batch through the store. `want_curve` switches the cell
/// kind to "curve" and captures per-trial informed curves (from cache
/// meta on hits, from the live protocol on misses).
CellOutcome run_cell(ExperimentStore& store, const JsonValue& req,
                     GraphCache& graphs, std::size_t threads,
                     bool want_curve) {
  const JsonValue* graph_spec = req.get("graph");
  if (graph_spec == nullptr || !graph_spec->is_object())
    throw std::invalid_argument("missing \"graph\" object");
  const BuiltGraph& built = graphs.get(*graph_spec);
  const WeightedGraph& g = built.graph;
  const std::size_t n = g.num_nodes();

  const std::string proto_name = req.get_string("proto", "pushpull");
  const auto seed = req.get_u64("seed", 1);
  const auto trials = static_cast<std::size_t>(req.get_i64("trials", 1));
  const auto source = static_cast<NodeId>(req.get_u64("source", 0));
  const Round max_rounds = req.get_i64("max_rounds", 5'000'000);
  if (trials == 0 || trials > 1'000'000)
    throw std::invalid_argument("trials must be in [1, 1000000]");
  if (source >= n) throw std::invalid_argument("source out of range");
  if (want_curve && proto_name != "pushpull")
    throw std::invalid_argument("spread_curve supports proto=pushpull only");

  CellOutcome cell;
  cell.nodes = n;
  if (want_curve) cell.curves.resize(trials);

  const RumorRep rep = resolve_rumor_rep(
      parse_rumor_rep(req.get_string("rumor_rep", "auto")), n);

  StoreBinding binding;
  binding.store = &store;
  binding.cell.protocol =
      proto_name == "flooding"
          ? proto_name + "/" + std::string(rumor_rep_name(rep))
          : proto_name;
  binding.cell.graph = graph_digest(g);
  binding.cell.source = source;
  binding.cell.max_rounds = max_rounds;
  binding.cell.kind = want_curve ? "curve" : "sim";

  TrialWsFn trial;
  if (proto_name == "pushpull") {
    trial = [&, want_curve](std::size_t t, Rng rng,
                            TrialWorkspace& ws) -> SimResult {
      thread_local EventRecorder recorder;
      recorder.clear();
      NetworkView view(g, false);
      auto& proto = ws.slot<PushPullBroadcast>(view, source, rng);
      proto.reset(view, source, rng);
      SimOptions opts;
      opts.max_rounds = max_rounds;
      opts.workspace = &ws;
      opts.recorder = &recorder;
      SimResult result = run_gossip(g, proto, opts);
      result.fingerprint = recorder.fingerprint();
      if (want_curve) cell.curves[t] = informed_curve(proto, n, result.rounds);
      return result;
    };
  } else if (proto_name == "flooding") {
    trial = [&, rep](std::size_t, Rng, TrialWorkspace& ws) -> SimResult {
      thread_local EventRecorder recorder;
      recorder.clear();
      NetworkView view(g, false);
      SimOptions opts;
      opts.max_rounds = max_rounds;
      opts.workspace = &ws;
      opts.recorder = &recorder;
      SimResult result = with_rumor_rep(rep, n, [&]<RumorSetRep R>() {
        BasicRoundRobinFlooding<R> proto(view, GossipGoal::kAllToAll, source,
                                         own_id_rumor_sets<R>(n));
        return run_gossip(g, proto, opts);
      });
      result.fingerprint = recorder.fingerprint();
      return result;
    };
  } else {
    throw std::invalid_argument("serve supports proto pushpull|flooding, got '" +
                                proto_name + "'");
  }

  if (want_curve) {
    binding.meta_fn = [&cell](std::size_t t) {
      std::string meta = "{\"curve\":[";
      const std::vector<std::uint32_t>& curve = cell.curves[t];
      for (std::size_t i = 0; i < curve.size(); ++i) {
        if (i > 0) meta += ',';
        append_u64(meta, curve[i]);
      }
      meta += "]}";
      return meta;
    };
    binding.on_hit_meta = [&cell](std::size_t t, const std::string& meta) {
      const std::optional<JsonValue> doc = json_parse(meta);
      if (!doc) return;
      const JsonValue* curve = doc->get("curve");
      if (curve == nullptr || !curve->is_array()) return;
      cell.curves[t].reserve(curve->items().size());
      for (const JsonValue& v : curve->items())
        cell.curves[t].push_back(static_cast<std::uint32_t>(v.as_u64()));
    };
  }

  cell.agg = run_trials_stored(binding, &cell.stats, trials, threads, seed,
                               trial);
  return cell;
}

void append_curve_result(std::string& out, const CellOutcome& cell) {
  // Align trials on round index; a trial that finished early holds at
  // its final count (complete stays complete).
  std::size_t horizon = 0;
  for (const auto& curve : cell.curves)
    horizon = std::max(horizon, curve.size());
  out += "{\"trials\":";
  append_u64(out, cell.agg.trials.size());
  out += ",\"rounds\":";
  append_u64(out, horizon == 0 ? 0 : horizon - 1);
  const auto at = [](const std::vector<std::uint32_t>& c, std::size_t r) {
    if (c.empty()) return std::uint32_t{0};
    return r < c.size() ? c[r] : c.back();
  };
  for (const char* field : {"curve_min", "curve_mean", "curve_max"}) {
    out += ",\"";
    out += field;
    out += "\":[";
    for (std::size_t r = 0; r < horizon; ++r) {
      if (r > 0) out += ',';
      std::uint64_t lo = ~0ull, hi = 0, sum = 0;
      for (const auto& curve : cell.curves) {
        const std::uint64_t c = at(curve, r);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
        sum += c;
      }
      if (std::strcmp(field, "curve_min") == 0) {
        append_u64(out, lo);
      } else if (std::strcmp(field, "curve_max") == 0) {
        append_u64(out, hi);
      } else {
        append_mean(out, static_cast<double>(sum) /
                             static_cast<double>(cell.curves.size()));
      }
    }
    out += ']';
  }
  out += ",\"fingerprint\":\"";
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, cell.agg.fingerprint);
  out += buf;
  out += "\"}";
}

}  // namespace

std::string handle_request(ExperimentStore& store, const std::string& request,
                           std::size_t threads, bool* shutdown) {
  if (shutdown != nullptr) *shutdown = false;
  std::string parse_error;
  const std::optional<JsonValue> req = json_parse(request, &parse_error);
  if (!req || !req->is_object())
    return error_response("bad request: " +
                          (parse_error.empty() ? "not an object" : parse_error));
  const std::string op = req->get_string("op", "");
  // One cache per handler call chain: the static would leak graphs
  // across stores in tests, so keep it thread_local per server thread.
  thread_local GraphCache graphs;
  try {
    if (op == "ping") return "{\"ok\":true,\"op\":\"ping\"}";
    if (op == "shutdown") {
      if (shutdown != nullptr) *shutdown = true;
      return "{\"ok\":true,\"op\":\"shutdown\"}";
    }
    if (op == "stats") {
      const StoreStats s = store.stats();
      std::string out = "{\"ok\":true,\"op\":\"stats\",\"store\":{\"records\":";
      append_u64(out, s.records);
      out += ",\"hits\":";
      append_u64(out, s.hits);
      out += ",\"misses\":";
      append_u64(out, s.misses);
      out += ",\"inserts\":";
      append_u64(out, s.inserts);
      out += ",\"recovered_records\":";
      append_u64(out, s.recovered_records);
      out += "}}";
      return out;
    }
    if (op == "completion_time" || op == "spread_curve") {
      const bool want_curve = op == "spread_curve";
      const CellOutcome cell =
          run_cell(store, *req, graphs, threads, want_curve);
      std::string out = "{\"ok\":true,\"op\":\"" + op + "\",\"result\":";
      if (want_curve)
        append_curve_result(out, cell);
      else
        append_completion_result(out, cell);
      out += ",\"store\":";
      append_store_block(out, cell.stats);
      out += '}';
      return out;
    }
    if (op == "sweep") {
      const JsonValue* cells = req->get("cells");
      if (cells == nullptr || !cells->is_array())
        return error_response("sweep needs a \"cells\" array");
      if (cells->items().size() > 10'000)
        return error_response("sweep capped at 10000 cells per request");
      std::string out = "{\"ok\":true,\"op\":\"sweep\",\"results\":[";
      StoredBatchStats total;
      for (std::size_t i = 0; i < cells->items().size(); ++i) {
        if (i > 0) out += ',';
        const CellOutcome cell =
            run_cell(store, cells->items()[i], graphs, threads, false);
        append_completion_result(out, cell);
        total.hits += cell.stats.hits;
        total.misses += cell.stats.misses;
      }
      out += "],\"store\":";
      append_store_block(out, total);
      out += '}';
      return out;
    }
    return error_response("unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

int run_server(const ServeOptions& opts) {
  if (opts.store_dir.empty() || opts.socket_path.empty())
    throw std::invalid_argument("serve needs --store and --socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("socket path too long: " + opts.socket_path);
  std::memcpy(addr.sun_path, opts.socket_path.c_str(),
              opts.socket_path.size() + 1);

  ExperimentStore store(opts.store_dir);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "serve: cannot create socket\n");
    return 1;
  }
  ::unlink(opts.socket_path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 64) != 0) {
    std::fprintf(stderr, "serve: cannot bind/listen on %s: %s\n",
                 opts.socket_path.c_str(), std::strerror(errno));
    ::close(listener);
    return 1;
  }
  if (!opts.quiet) {
    std::printf("serving %s (%zu records) on %s\n", opts.store_dir.c_str(),
                store.size(), opts.socket_path.c_str());
    std::fflush(stdout);
  }

  bool shutdown = false;
  std::size_t requests = 0;
  while (!shutdown &&
         (opts.max_requests == 0 || requests < opts.max_requests)) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: accept failed: %s\n", std::strerror(errno));
      ::close(listener);
      ::unlink(opts.socket_path.c_str());
      return 1;
    }
    // Serve this connection until the client closes it.
    while (!shutdown &&
           (opts.max_requests == 0 || requests < opts.max_requests)) {
      const std::optional<std::string> request = read_frame(conn);
      if (!request) break;  // clean EOF or broken frame: drop the client
      ++requests;
      const std::string response =
          handle_request(store, *request, opts.threads, &shutdown);
      if (!opts.quiet) {
        // One provenance line per request: op + outcome, greppable.
        const std::optional<JsonValue> req = json_parse(*request);
        std::printf("req %zu %s -> %s\n", requests,
                    req ? req->get_string("op", "?").c_str() : "?",
                    response.compare(0, 11, "{\"ok\":true,") == 0 ? "ok"
                                                                 : "error");
        std::fflush(stdout);
      }
      if (!write_frame(conn, response)) break;
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(opts.socket_path.c_str());
  store.flush();
  if (!opts.quiet) {
    const StoreStats s = store.stats();
    std::printf("served %zu requests (hits %zu, misses %zu, records %zu)\n",
                requests, s.hits, s.misses, s.records);
  }
  return 0;
}

}  // namespace latgossip
