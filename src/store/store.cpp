#include "store/store.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "obs/export.h"  // json_escape
#include "store/json.h"

namespace latgossip {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string store_record_line(const StoreKey& key, const StoreRecord& rec) {
  std::string out = "{\"schema\":\"";
  out += ExperimentStore::kSchema;
  out += "\",\"key\":\"";
  out += key.hex();
  out += "\",\"result\":{\"rounds\":";
  append_i64(out, rec.result.rounds);
  out += ",\"completed\":";
  out += rec.result.completed ? "true" : "false";
  out += ",\"activations\":";
  append_u64(out, rec.result.activations);
  out += ",\"messages_delivered\":";
  append_u64(out, rec.result.messages_delivered);
  out += ",\"messages_dropped\":";
  append_u64(out, rec.result.messages_dropped);
  out += ",\"exchanges_rejected\":";
  append_u64(out, rec.result.exchanges_rejected);
  out += ",\"payload_bits\":";
  append_u64(out, rec.result.payload_bits);
  out += ",\"max_inflight\":";
  append_u64(out, rec.result.max_inflight);
  out += ",\"fingerprint\":\"";
  {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016" PRIx64, rec.result.fingerprint);
    out += buf;
  }
  out += "\"},\"wall_ms\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", rec.wall_ms);
    out += buf;
  }
  if (!rec.meta.empty()) {
    out += ",\"meta\":";
    out += rec.meta;  // already-serialized JSON object
  }
  out += '}';
  return out;
}

std::optional<std::pair<StoreKey, StoreRecord>> parse_store_record(
    std::string_view line) {
  const std::optional<JsonValue> doc = json_parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  if (doc->get_string("schema", "") != ExperimentStore::kSchema)
    return std::nullopt;
  const std::optional<StoreKey> key =
      StoreKey::from_hex(doc->get_string("key", ""));
  if (!key) return std::nullopt;
  const JsonValue* result = doc->get("result");
  if (result == nullptr || !result->is_object()) return std::nullopt;
  // Every result field is required: a record that lost one is damage,
  // not a schema variant.
  for (const char* field :
       {"rounds", "completed", "activations", "messages_delivered",
        "messages_dropped", "exchanges_rejected", "payload_bits",
        "max_inflight", "fingerprint"}) {
    if (result->get(field) == nullptr) return std::nullopt;
  }
  StoreRecord rec;
  rec.result.rounds = result->get_i64("rounds", 0);
  rec.result.completed = result->get_bool("completed", false);
  rec.result.activations =
      static_cast<std::size_t>(result->get_u64("activations", 0));
  rec.result.messages_delivered =
      static_cast<std::size_t>(result->get_u64("messages_delivered", 0));
  rec.result.messages_dropped =
      static_cast<std::size_t>(result->get_u64("messages_dropped", 0));
  rec.result.exchanges_rejected =
      static_cast<std::size_t>(result->get_u64("exchanges_rejected", 0));
  rec.result.payload_bits =
      static_cast<std::size_t>(result->get_u64("payload_bits", 0));
  rec.result.max_inflight =
      static_cast<std::size_t>(result->get_u64("max_inflight", 0));
  const std::string fp = result->get_string("fingerprint", "");
  if (fp.size() != 18 || fp.compare(0, 2, "0x") != 0) return std::nullopt;
  std::uint64_t fp_value = 0;
  for (std::size_t i = 2; i < fp.size(); ++i) {
    const char c = fp[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
    fp_value = (fp_value << 4) | digit;
  }
  rec.result.fingerprint = fp_value;
  rec.wall_ms = doc->get_double("wall_ms", 0.0);
  if (const JsonValue* meta = doc->get("meta");
      meta != nullptr && meta->is_object())
    rec.meta = json_serialize(*meta);
  return std::make_pair(*key, std::move(rec));
}

ExperimentStore::ExperimentStore(const std::string& dir) : dir_(dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("store: cannot create directory " + dir_ + ": " +
                             ec.message());
  replay_and_repair();
  log_ = std::fopen(log_path().c_str(), "a");
  if (log_ == nullptr)
    throw std::runtime_error("store: cannot open " + log_path() +
                             " for append");
}

ExperimentStore::~ExperimentStore() {
  if (log_ != nullptr) std::fclose(log_);
}

std::string ExperimentStore::log_path() const {
  return dir_ + "/store.v1.log";
}

void ExperimentStore::replay_and_repair() {
  std::ifstream in(log_path());
  if (!in) return;  // fresh store
  std::string line;
  // getline drops a trailing partial line's missing '\n' silently, so a
  // truncated final record shows up here as a parse failure — exactly
  // the recovery path.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto parsed = parse_store_record(line)) {
      index_[parsed->first] = std::move(parsed->second);
    } else {
      ++recovered_;
    }
  }
  in.close();
  if (recovered_ == 0) return;

  // Damage found: rewrite the log with only the valid records, through
  // a temp file + atomic rename so a crash mid-repair leaves either the
  // old damaged log (repaired again next open) or the new clean one —
  // never a half-written file under the live name.
  const std::string tmp = log_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw std::runtime_error("store: cannot write repair file " + tmp);
    for (const auto& [key, rec] : index_)
      out << store_record_line(key, rec) << '\n';
    out.flush();
    if (!out)
      throw std::runtime_error("store: repair write to " + tmp + " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, log_path(), ec);
  if (ec)
    throw std::runtime_error("store: cannot rename " + tmp + ": " +
                             ec.message());
  repaired_ = true;
}

std::optional<StoreRecord> ExperimentStore::lookup(const StoreKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

bool ExperimentStore::contains(const StoreKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(key) != index_.end();
}

bool ExperimentStore::insert(const StoreKey& key, const StoreRecord& rec) {
  // Serialize outside the lock; the append itself is one fwrite so
  // concurrent inserts interleave only at record granularity.
  std::string line = store_record_line(key, rec);
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  if (!index_.emplace(key, rec).second) return false;
  if (std::fwrite(line.data(), 1, line.size(), log_) != line.size() ||
      std::fflush(log_) != 0) {
    index_.erase(key);
    throw std::runtime_error("store: append to " + log_path() + " failed");
  }
  ++inserts_;
  return true;
}

void ExperimentStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (log_ != nullptr) std::fflush(log_);
}

std::size_t ExperimentStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

StoreStats ExperimentStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats s;
  s.records = index_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.recovered_records = recovered_;
  s.repaired = repaired_;
  return s;
}

}  // namespace latgossip
