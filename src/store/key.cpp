#include "store/key.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace latgossip {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Lane 0 uses the standard FNV-1a offset basis; lane 1 a distinct one
// so the lanes decorrelate (same update, different trajectory).
constexpr std::uint64_t kOffset0 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kOffset1 = 0x6c62272e07bb0142ULL;

inline void fnv_update(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

/// SplitMix64 finalizer — diffuses FNV's weak low bits.
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string StoreKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<StoreKey> StoreKey::from_hex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  StoreKey k;
  std::uint64_t* half = &k.hi;
  for (std::size_t i = 0; i < 32; ++i) {
    if (i == 16) half = &k.lo;
    const char c = s[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
    *half = (*half << 4) | digit;
  }
  return k;
}

KeyBuilder& KeyBuilder::add(std::string_view field, std::string_view value) {
  fields_.emplace_back(std::string(field), std::string(value));
  return *this;
}

KeyBuilder& KeyBuilder::add(std::string_view field, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  return add(field, std::string_view(buf));
}

KeyBuilder& KeyBuilder::add(std::string_view field, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  return add(field, std::string_view(buf));
}

StoreKey KeyBuilder::digest() const {
  // Canonical form: fields sorted by name, each serialized as
  // name 0x1F value 0x1E. The separators cannot occur in graph params
  // or protocol names, so distinct field sets cannot alias.
  std::vector<std::pair<std::string, std::string>> sorted = fields_;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i].first == sorted[i - 1].first)
      throw std::invalid_argument("KeyBuilder: duplicate field '" +
                                  sorted[i].first + "'");
  std::uint64_t h0 = kOffset0;
  std::uint64_t h1 = kOffset1;
  for (const auto& [name, value] : sorted) {
    const char us = '\x1f';
    const char rs = '\x1e';
    fnv_update(h0, name.data(), name.size());
    fnv_update(h0, &us, 1);
    fnv_update(h0, value.data(), value.size());
    fnv_update(h0, &rs, 1);
    fnv_update(h1, name.data(), name.size());
    fnv_update(h1, &us, 1);
    fnv_update(h1, value.data(), value.size());
    fnv_update(h1, &rs, 1);
    // Cross-feed the lanes so they never collapse to a shared
    // trajectory on pathological input.
    h1 ^= mix(h0);
  }
  return StoreKey{mix(h0), mix(h1)};
}

std::uint64_t graph_digest(const WeightedGraph& g) {
  std::uint64_t h = kOffset0;
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  fnv_update(h, &n, sizeof n);
  fnv_update(h, &m, sizeof m);
  for (const Edge& e : g.edges()) {
    const std::uint64_t u = e.u;
    const std::uint64_t v = e.v;
    const std::int64_t lat = e.latency;
    fnv_update(h, &u, sizeof u);
    fnv_update(h, &v, sizeof v);
    fnv_update(h, &lat, sizeof lat);
  }
  return mix(h);
}

StoreKey cell_key(const CellSpec& cell, std::uint64_t trial_seed_value) {
  KeyBuilder b;
  b.add("proto", std::string_view(cell.protocol));
  b.add("graph", cell.graph);
  b.add("source", static_cast<std::uint64_t>(cell.source));
  b.add("max_rounds", static_cast<std::int64_t>(cell.max_rounds));
  b.add("kind", std::string_view(cell.kind));
  b.add("faults", std::string_view(cell.faults));
  b.add("model", std::string_view(cell.model));
  b.add("trial_seed", trial_seed_value);
  return b.digest();
}

}  // namespace latgossip
