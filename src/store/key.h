#pragma once
// Canonical content-addressed keys for the experiment store.
//
// A store key names one computation: "this exact trial on this exact
// graph under this exact protocol". Two requirements shape the design:
//
//  * Canonical — the key must not depend on incidental details of who
//    built it. KeyBuilder therefore hashes a canonical serialization:
//    (field, value) pairs sorted by field name, joined with unambiguous
//    separators. Adding the same fields in any order yields the same
//    digest (pinned by tests/store_test.cpp golden digests).
//  * Content-addressed — the graph contributes by *content*, not by
//    file name or generator flags: graph_digest() hashes the node
//    count and the full (u, v, latency) edge list in edge-id order. A
//    regenerated file with one latency changed gets a different key; a
//    byte-identical graph reached through a different path shares the
//    cache entry (the CLI's --in=FILE runs and the serve daemon's
//    generated graphs meet in the same key space).
//
// The key covers everything that decides a trial's SimResult: protocol
// (including the rumor-set representation suffix — all representations
// are observationally identical, but the name documents what ran),
// graph content, source node, round cap, fault plan, the per-trial RNG
// seed, and a model-version tag. The tag is the "fingerprint-relevant
// build" knob: results are build-flag-invariant by the golden-
// fingerprint contract (DESIGN.md §5e), so keys deliberately exclude
// git hash and CXX flags — a rebuild must not cold the cache — and any
// future change that legitimately alters event streams bumps
// kStoreModelVersion instead. `latgossip run --store-verify` is the
// enforcement arm: it recomputes hits and asserts bit-identical
// results, catching a model change that forgot the bump.
//
// The digest is two independent 64-bit FNV-1a lanes with SplitMix64
// finalization — 128 bits, deterministic, dependency-free. Not
// cryptographic: this guards against accidental collision among
// experiment configurations, not an adversary.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace latgossip {

/// Bumped whenever an intentional engine/model change alters event
/// streams or SimResults for existing configurations — the store-wide
/// cache invalidation lever.
inline constexpr std::string_view kStoreModelVersion = "latgossip.model.v1";

/// 128-bit content-address. Value-type; hashes/compares cheaply.
struct StoreKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const StoreKey&) const = default;

  /// 32 lowercase hex chars, hi then lo — the on-disk and wire form.
  std::string hex() const;
  static std::optional<StoreKey> from_hex(std::string_view s);
};

struct StoreKeyHash {
  std::size_t operator()(const StoreKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Accumulates named fields and digests their canonical serialization.
/// Field order at add() time is irrelevant; duplicate field names are a
/// caller bug (digest() throws — silent last-wins would make two
/// different configurations collide).
class KeyBuilder {
 public:
  KeyBuilder& add(std::string_view field, std::string_view value);
  KeyBuilder& add(std::string_view field, std::uint64_t value);
  KeyBuilder& add(std::string_view field, std::int64_t value);

  StoreKey digest() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Content digest of a graph: node count, edge count, and every
/// (u, v, latency) in edge-id order. Edge ids are insertion order and
/// part of the model (protocols pick contacts by adjacency index), so
/// order-sensitivity here is correct, not an accident.
std::uint64_t graph_digest(const WeightedGraph& g);

/// Identity of one store cell minus the per-trial seed. `kind`
/// distinguishes records whose meta payload differs for the same
/// simulation ("sim" = bare SimResult, "curve" = SimResult + per-round
/// informed counts in meta).
struct CellSpec {
  std::string protocol;        ///< resolved name, e.g. "flooding/sparse"
  std::uint64_t graph = 0;     ///< graph_digest()
  NodeId source = 0;
  Round max_rounds = 0;
  std::string kind = "sim";
  std::string faults;          ///< serialized fault plan; "" = none
  std::string model{kStoreModelVersion};
};

/// The store key for trial-seed `trial_seed_value` of cell `cell`.
/// Pass the *derived* per-trial seed (sim/parallel.h trial_seed()), not
/// the batch seed — the cache is per cell, so a sweep resumed with a
/// different trial count still hits every cell it already computed.
StoreKey cell_key(const CellSpec& cell, std::uint64_t trial_seed_value);

}  // namespace latgossip
