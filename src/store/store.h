#pragma once
// Content-addressed experiment store (ROADMAP item 3).
//
// Maps a StoreKey (store/key.h — canonical hash of graph content,
// protocol, seed, fault plan, model version) to the full outcome of
// that computation: the SimResult including its event-stream
// fingerprint, the compute wall time, and an optional meta payload
// (e.g. a spread curve). Sweeps consult the store before computing a
// cell; `latgossip serve` answers many clients from one warm store.
//
// Layout (exemplar: Nix's libstore, radically simplified — one flat
// log instead of a narinfo/nar split, because values are tiny):
//
//   <dir>/store.v1.log   append-only JSONL, one record per line:
//     {"schema":"latgossip.store.v1","key":"<32 hex>","result":{…},
//      "wall_ms":…,"meta":{…}}
//
// The whole log is replayed into an in-memory index on open — records
// are ~300 bytes, so a million cells is ~300 MB of log and a few
// seconds of replay, fine for the current scale; a side index file
// becomes worthwhile only past that.
//
// Crash safety:
//  * inserts append one complete line with a single fwrite + flush, so
//    a crash can only ever truncate the final record;
//  * replay tolerates exactly that: an unparseable or truncated line is
//    dropped (counted in stats().recovered_records) and every valid
//    record is kept — including valid records *after* a corrupted line,
//    so one damaged sector does not orphan the rest of the log;
//  * when replay found damage, the log is rewritten with only the valid
//    records via temp file + atomic rename (repair-on-open), so damage
//    is paid for once, not re-skipped forever.
//
// Thread safety: lookup/insert/contains/stats are safe to call
// concurrently — TrialPool workers insert cells as they compute them
// (covered by the TSan CI leg). One writer process per store directory;
// concurrent *processes* are out of scope (the serve daemon is the
// multi-client story).

#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/metrics.h"
#include "store/key.h"

namespace latgossip {

/// The cached value of one computation.
struct StoreRecord {
  SimResult result;
  double wall_ms = 0.0;   ///< compute time at insert (provenance only)
  std::string meta;       ///< optional JSON object ("" = none)
};

struct StoreStats {
  std::size_t records = 0;            ///< cells in the index
  std::size_t hits = 0;               ///< lookup() found the key
  std::size_t misses = 0;             ///< lookup() did not
  std::size_t inserts = 0;            ///< successful insert() calls
  std::size_t recovered_records = 0;  ///< damaged lines dropped at open
  bool repaired = false;              ///< open() rewrote the log
};

class ExperimentStore {
 public:
  static constexpr std::string_view kSchema = "latgossip.store.v1";

  /// Opens (creating the directory if needed) and replays the log.
  /// Throws std::runtime_error when the directory cannot be created or
  /// the log cannot be opened for append.
  explicit ExperimentStore(const std::string& dir);
  ~ExperimentStore();

  ExperimentStore(const ExperimentStore&) = delete;
  ExperimentStore& operator=(const ExperimentStore&) = delete;

  /// The record for `key`, or nullopt. Counts a hit or a miss.
  std::optional<StoreRecord> lookup(const StoreKey& key);

  /// Presence check without touching the hit/miss counters.
  bool contains(const StoreKey& key) const;

  /// Insert `rec` under `key`: appends to the log and indexes it.
  /// Returns false (and writes nothing) if the key is already present —
  /// first writer wins, which is the right semantics for a
  /// content-addressed store (all writers computed the same value; the
  /// verify path exists to prove it). Throws on I/O failure.
  bool insert(const StoreKey& key, const StoreRecord& rec);

  /// Flush buffered appends to the OS.
  void flush();

  std::size_t size() const;
  StoreStats stats() const;
  const std::string& dir() const noexcept { return dir_; }
  std::string log_path() const;

 private:
  void replay_and_repair();

  mutable std::mutex mutex_;
  std::string dir_;
  std::FILE* log_ = nullptr;
  std::unordered_map<StoreKey, StoreRecord, StoreKeyHash> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t inserts_ = 0;
  std::size_t recovered_ = 0;
  bool repaired_ = false;
};

/// One serialized record line (no trailing newline) — exposed for the
/// server (which embeds results in responses) and tests.
std::string store_record_line(const StoreKey& key, const StoreRecord& rec);

/// Parse one log line. Returns nullopt on any damage: bad JSON, wrong
/// schema, malformed key, or missing result fields.
std::optional<std::pair<StoreKey, StoreRecord>> parse_store_record(
    std::string_view line);

}  // namespace latgossip
