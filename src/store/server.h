#pragma once
// `latgossip serve` — the query daemon over a content-addressed store.
//
// One process owns one ExperimentStore and answers completion-time,
// spread-curve, and batch-sweep queries from many clients over a Unix
// domain socket (length-prefixed JSON frames, store/wire.h). A query
// names a cell set — generated graph spec, protocol, batch seed, trial
// count — exactly the identity the store keys on; cells already in the
// store are answered from memory, the rest are computed on the shared
// TrialPool and inserted, so the first client to ask pays and everyone
// after reads. This is the "heavy traffic from many users"
// architecture of ROADMAP item 3: many clients, one warm cache,
// throughput measured in queries/sec (BENCH_store.json).
//
// Request ops (one JSON object per frame; see DESIGN.md §5j for the
// full field tables):
//
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"completion_time","graph":{…},"proto":"pushpull","seed":S,
//    "trials":T}
//   {"op":"spread_curve","graph":{…},"seed":S,"trials":T}
//   {"op":"sweep","cells":[{completion_time-style cell}, …]}
//   {"op":"shutdown"}
//
// Graph specs are generated server-side ({"family":"er","n":512,
// "p":0.03,"seed":1,"lat":"range","lat_lo":1,"lat_hi":8}) and keyed by
// *content* digest, so a CLI run over a byte-identical graph file
// shares cache entries with the daemon.
//
// Responses: {"ok":true,"op":…,"result":{…},"store":{"hits":…,
// "misses":…}} or {"ok":false,"error":"…"}. The per-query "store"
// block carries that query's hit/miss split — the observable the
// serve-smoke CI leg and the warm/cold bench assert on.
//
// Concurrency model: connections are accepted and served one request
// at a time; parallelism lives inside a request (TrialPool across a
// query's trials), which is the right shape while compute dominates.

#include <cstddef>
#include <string>

namespace latgossip {

class ExperimentStore;

struct ServeOptions {
  std::string store_dir;    ///< required
  std::string socket_path;  ///< required; stale socket files are replaced
  std::size_t threads = 0;  ///< compute threads on miss (0 = default)
  /// Stop after this many requests (0 = run until a shutdown op).
  /// Tests and the bench use it as a safety net.
  std::size_t max_requests = 0;
  bool quiet = false;  ///< suppress the per-request log line on stdout
};

/// Run the daemon until a shutdown op, max_requests, or a fatal socket
/// error. Returns 0 on clean shutdown, 1 on fatal error. Throws only
/// for unusable options (empty paths, store that cannot open).
int run_server(const ServeOptions& opts);

/// Handle one already-parsed request against an open store — the
/// transport-free core of the daemon, shared by run_server and the
/// in-process tests/bench. `threads` caps miss-compute parallelism.
/// Sets `*shutdown` when the request was a shutdown op.
std::string handle_request(ExperimentStore& store, const std::string& request,
                           std::size_t threads, bool* shutdown);

}  // namespace latgossip
