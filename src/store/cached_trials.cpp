#include "store/cached_trials.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace latgossip {

TrialAggregate run_trials_stored(const StoreBinding& binding,
                                 StoredBatchStats* stats_out,
                                 std::size_t num_trials, std::size_t threads,
                                 std::uint64_t seed, const TrialWsFn& trial,
                                 const ManifestSpec* manifest) {
  if (binding.store == nullptr)
    throw std::invalid_argument("run_trials_stored: no store bound");

  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
  std::atomic<std::size_t> verified{0};

  const TrialWsFn stored_trial = [&](std::size_t t, Rng rng,
                                     TrialWorkspace& ws) -> SimResult {
    const StoreKey key = cell_key(binding.cell, trial_seed(seed, t));
    if (std::optional<StoreRecord> cached = binding.store->lookup(key)) {
      if (!binding.verify) {
        hits.fetch_add(1, std::memory_order_relaxed);
        if (binding.on_hit_meta) binding.on_hit_meta(t, cached->meta);
        return cached->result;
      }
      SimResult computed = trial(t, std::move(rng), ws);
      if (computed != cached->result)
        throw std::runtime_error(
            "store verify FAILED for key " + key.hex() + " (trial " +
            std::to_string(t) +
            "): recomputed result differs from cached record — engine "
            "semantics changed without a kStoreModelVersion bump, or the "
            "store is stale/corrupt");
      hits.fetch_add(1, std::memory_order_relaxed);
      verified.fetch_add(1, std::memory_order_relaxed);
      // Meta intentionally not replayed: verify recomputed, so the
      // caller's side channels were filled by the live trial body.
      return computed;
    }
    const auto start = std::chrono::steady_clock::now();
    SimResult computed = trial(t, std::move(rng), ws);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    StoreRecord rec;
    rec.result = computed;
    rec.wall_ms = wall_ms;
    if (binding.meta_fn) rec.meta = binding.meta_fn(t);
    binding.store->insert(key, rec);
    misses.fetch_add(1, std::memory_order_relaxed);
    return computed;
  };

  const TrialAggregate agg =
      run_trials(num_trials, threads, seed, stored_trial, manifest);
  if (stats_out != nullptr) {
    stats_out->hits = hits.load(std::memory_order_relaxed);
    stats_out->misses = misses.load(std::memory_order_relaxed);
    stats_out->verified = verified.load(std::memory_order_relaxed);
  }
  return agg;
}

}  // namespace latgossip
