#include "store/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace latgossip {

const JsonValue* JsonValue::get(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

std::int64_t JsonValue::get_i64(std::string_view key,
                                std::int64_t def) const noexcept {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_integer() ? v->as_i64() : def;
}

std::uint64_t JsonValue::get_u64(std::string_view key,
                                 std::uint64_t def) const noexcept {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_integer() ? v->as_u64() : def;
}

double JsonValue::get_double(std::string_view key, double def) const noexcept {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_number() ? v->as_double() : def;
}

bool JsonValue::get_bool(std::string_view key, bool def) const noexcept {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : def;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view def) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string(def);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.boolean_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(i);
  v.integer_ = i;
  v.integral_ = true;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-capped so a
/// malicious "[[[[…" request frame cannot blow the server's stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr)
        *error = error_ + " at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr)
        *error = "trailing garbage at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_null(JsonValue& out) {
    if (!parse_literal("null")) return false;
    out = JsonValue::make_null();
    return true;
  }

  bool parse_bool(JsonValue& out) {
    if (text_[pos_] == 't') {
      if (!parse_literal("true")) return false;
      out = JsonValue::make_bool(true);
    } else {
      if (!parse_literal("false")) return false;
      out = JsonValue::make_bool(false);
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out = JsonValue::make_integer(i);
        return true;
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str())
      return fail("bad number");
    out = JsonValue::make_number(d);
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point; the exporter only ever
          // emits \u00xx for control bytes, but accept the full plane.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    eat('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (eat(']')) {
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (eat(']')) break;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
    out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    eat('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (eat('}')) {
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat('}')) break;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
    out = JsonValue::make_object(std::move(members));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

namespace {

void serialize_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void serialize_value(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: {
      char buf[32];
      if (v.is_integer())
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v.as_i64()));
      else
        std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
      out += buf;
      break;
    }
    case JsonValue::Kind::kString: serialize_string(out, v.as_string()); break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        serialize_value(out, item);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, value] : v.members()) {
        if (!first) out += ',';
        first = false;
        serialize_string(out, name);
        out += ':';
        serialize_value(out, value);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_value(out, value);
  return out;
}

}  // namespace latgossip
