#pragma once
// Store-backed trial batches: run_trials() with a cache in front.
//
// run_trials_stored() is a drop-in wrapper around sim/parallel.h
// run_trials(): every trial first derives its cell key (CellSpec +
// per-trial seed) and looks it up in the ExperimentStore. A hit returns
// the cached SimResult without computing — the trial body never runs —
// and a miss computes, inserts, and returns. Because trial identity is
// (cell, trial seed) and aggregation stays in trial order, a batch with
// any mix of hits and misses aggregates bit-identically to a batch
// computed from scratch (proven by tests/store_test.cpp).
//
// Verify mode is the trust-but-verify arm: hits are recomputed anyway
// and the fresh SimResult — event-stream fingerprint included — must
// equal the cached one bit for bit; a mismatch throws with the cell key
// in the message. This is how a model change that forgot to bump
// kStoreModelVersion gets caught (store/key.h).
//
// Caveat for callers: the trial body must stamp result.fingerprint
// (record with an EventRecorder) if verify-grade caching is wanted —
// a zero fingerprint verifies only the SimResult counters. The CLI
// forces recording on whenever --store is active for exactly this
// reason.
//
// Concurrency: lookups and inserts happen on TrialPool workers; the
// store serializes internally (store/store.h). Counters here are
// atomics folded into StoredBatchStats after the pool drains.

#include <cstdint>
#include <functional>

#include "sim/parallel.h"
#include "store/key.h"
#include "store/store.h"

namespace latgossip {

/// Binding of one batch to a store: where to look, what cell identity,
/// whether to recompute hits.
struct StoreBinding {
  ExperimentStore* store = nullptr;  ///< required
  CellSpec cell;                     ///< identity minus the trial seed
  bool verify = false;               ///< recompute hits, assert identical

  /// Optional meta payload round-trip (e.g. spread curves). On a miss,
  /// `meta_fn(trial)` runs after the trial body and its return value
  /// (a serialized JSON object, or "") is stored alongside the result.
  /// On a hit, `on_hit_meta(trial, meta)` replays the cached payload so
  /// the caller can fill per-trial side channels without computing.
  /// Both run on worker threads; use pre-sized per-trial slots.
  std::function<std::string(std::size_t trial)> meta_fn;
  std::function<void(std::size_t trial, const std::string& meta)> on_hit_meta;
};

/// Hit/miss accounting for one batch.
struct StoredBatchStats {
  std::size_t hits = 0;      ///< cells answered from the store
  std::size_t misses = 0;    ///< cells computed and inserted
  std::size_t verified = 0;  ///< hits recomputed and proven identical
};

/// run_trials() with the store consulted per trial. `stats_out`
/// (optional) receives the batch's hit/miss/verified counts. Throws
/// std::runtime_error when verify finds a divergent cached record.
TrialAggregate run_trials_stored(const StoreBinding& binding,
                                 StoredBatchStats* stats_out,
                                 std::size_t num_trials, std::size_t threads,
                                 std::uint64_t seed, const TrialWsFn& trial,
                                 const ManifestSpec* manifest = nullptr);

}  // namespace latgossip
