#pragma once
// Length-prefixed JSON framing for the latgossip serve protocol.
//
// One frame = 4-byte little-endian u32 payload length + that many bytes
// of UTF-8 JSON. Requests and responses are each exactly one frame; a
// connection carries any number of request/response pairs and closes
// from the client side (a clean EOF between frames). The length prefix
// exists so neither side needs a streaming JSON parser, and the 64 MB
// cap bounds what a broken or hostile client can make the daemon
// buffer.
//
// Blocking I/O with full-read/full-write loops; short reads/writes and
// EINTR are handled, SIGPIPE is avoided via MSG_NOSIGNAL. POSIX-only,
// like the Unix-socket transport it frames.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace latgossip {

/// Upper bound on one frame's payload (request or response).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Write one frame. Returns false on any I/O error (including a
/// payload over kMaxFrameBytes or a peer that hung up).
bool write_frame(int fd, std::string_view payload);

/// Read one frame. nullopt on clean EOF at a frame boundary, on a
/// malformed/oversized length prefix, or on any I/O error.
std::optional<std::string> read_frame(int fd);

/// Client one-shot: connect to the Unix socket at `socket_path`, send
/// `request` as a frame, read one response frame. Throws
/// std::runtime_error with context on connect/protocol failure.
std::string query_server(const std::string& socket_path,
                         const std::string& request);

}  // namespace latgossip
