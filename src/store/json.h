#pragma once
// Minimal JSON document parser for the experiment store and the serve
// wire protocol.
//
// The rest of the codebase only ever *emits* JSON (hand-built strings in
// obs/export and bench/run_bench); the store is the first subsystem that
// has to read it back: log replay on open, requests arriving over the
// serve socket, and cached spread-curve payloads. This is a small
// recursive-descent parser for exactly that — no streaming, no SAX, no
// allocator cleverness. Documents are parsed into a JsonValue tree;
// objects keep insertion order (round-trip friendly) and lookups are
// linear, which is fine at the handful-of-fields scale of store records
// and query requests.
//
// Integers are kept exact: a number token with no '.', 'e' or 'E' is
// stored as int64 (as well as double), so 64-bit counters survive a
// parse → reserialize round trip bit-for-bit. Fingerprints avoid the
// issue entirely — they travel as "0x…" hex strings, same as in run
// manifests.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace latgossip {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return boolean_; }
  double as_double() const noexcept { return number_; }
  /// True iff the source token was an integer literal (no fraction or
  /// exponent) that fits in int64 — the exact-round-trip path.
  bool is_integer() const noexcept { return is_number() && integral_; }
  std::int64_t as_i64() const noexcept { return integer_; }
  std::uint64_t as_u64() const noexcept {
    return static_cast<std::uint64_t>(integer_);
  }
  const std::string& as_string() const noexcept { return string_; }

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Object member by key, or nullptr (also for non-objects). Linear
  /// scan; store records and requests have < 20 fields.
  const JsonValue* get(std::string_view key) const noexcept;

  // Typed member accessors with defaults — the shape every store/server
  // read site wants ("field if present and of this type, else default").
  std::int64_t get_i64(std::string_view key, std::int64_t def) const noexcept;
  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const noexcept;
  double get_double(std::string_view key, double def) const noexcept;
  bool get_bool(std::string_view key, bool def) const noexcept;
  std::string get_string(std::string_view key, std::string_view def) const;

  // Construction (parser + tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_integer(std::int64_t i);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool boolean_ = false;
  bool integral_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON document (leading/trailing whitespace
/// allowed, trailing garbage rejected). Returns nullopt on any syntax
/// error; `error`, when non-null, receives a one-line description with
/// a byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

/// Compact (no-whitespace) serialization. Integer-literal numbers
/// round-trip exactly; other doubles print with %.17g.
std::string json_serialize(const JsonValue& value);

}  // namespace latgossip
