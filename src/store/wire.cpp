#include "store/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace latgossip {

namespace {

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// 1 = read len bytes, 0 = clean EOF before any byte, -1 = error/short.
int read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(len & 0xff);
  header[1] = static_cast<unsigned char>((len >> 8) & 0xff);
  header[2] = static_cast<unsigned char>((len >> 16) & 0xff);
  header[3] = static_cast<unsigned char>((len >> 24) & 0xff);
  return write_all(fd, header, sizeof header) &&
         write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  unsigned char header[4];
  if (read_all(fd, header, sizeof header) != 1) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) return std::nullopt;
  std::string payload(len, '\0');
  if (len > 0 && read_all(fd, payload.data(), len) != 1) return std::nullopt;
  return payload;
}

std::string query_server(const std::string& socket_path,
                         const std::string& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to " + socket_path + ": " +
                             std::strerror(err));
  }
  if (!write_frame(fd, request)) {
    ::close(fd);
    throw std::runtime_error("request write to " + socket_path + " failed");
  }
  std::optional<std::string> response = read_frame(fd);
  ::close(fd);
  if (!response)
    throw std::runtime_error("no response from " + socket_path);
  return std::move(*response);
}

}  // namespace latgossip
