#pragma once
// Seeded random-case generation for the model-conformance framework.
//
// A TestCase is a fully materialized property-test input: an explicit
// edge list (so the shrinker can drop nodes/edges and reduce latencies
// directly), a protocol choice, a seed for all protocol/fault
// randomness, and the engine-model knobs the case exercises. Cases are
// generated from a single RNG, so a (profile, seed) pair reproduces the
// exact case — latgossip_check prints the case seed of any failure.
//
// Composite protocols (unified, EID, T(k)) own their SimOptions
// internally, so the fault/blocking/jitter knobs apply only to the
// simple protocols; random_case() keeps them off elsewhere.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/dynamics_spec.h"
#include "util/rng.h"

namespace latgossip {

enum class CheckProto : std::uint8_t {
  kPushPull = 0,    ///< PushPullBroadcast (single-source rumor)
  kPushOnly,        ///< PushOnlyBroadcast
  kFlooding,        ///< RoundRobinFlooding, single-source goal
  kGossipAllToAll,  ///< PushPullGossip, all-to-all goal (rumor sets)
  kGossipLocal,     ///< PushPullGossip, local-broadcast goal (rumor sets)
  kUnified,         ///< run_unified (both branches)
  kEid,             ///< run_general_eid (guess-and-double + check)
  kTk,              ///< run_tk_schedule
  kCount,
};

const char* check_proto_name(CheckProto p);
bool check_proto_is_composite(CheckProto p);

/// Fault injection knobs (simple protocols only).
struct FaultSpec {
  std::size_t crash_count = 0;  ///< nodes crashed at crash_round
  Round crash_round = 0;
  double drop_probability = 0.0;

  bool any() const {
    return crash_count > 0 || drop_probability > 0.0;
  }
};

struct TestCase {
  CheckProto proto = CheckProto::kPushPull;
  std::size_t num_nodes = 0;
  std::vector<Edge> edges;  ///< explicit and shrinkable; EdgeId == index
  std::uint64_t seed = 1;   ///< protocol + fault + jitter randomness
  NodeId source = 0;        ///< broadcast source (simple protocols)
  Latency tk_estimate = 1;  ///< T(k) schedule parameter

  // Engine-model knobs (simple protocols only).
  bool blocking = false;
  std::size_t max_incoming_per_round = 0;
  Latency jitter_spread = 0;
  Round max_rounds = 2000;
  FaultSpec faults;
  /// Dynamic scenario (sim/dynamics_spec.h): drift / churn / adversary,
  /// all off by default. Simple protocols only, like the knobs above —
  /// case_valid() rejects composite cases with any knob set.
  DynamicSpec dynamics;
};

/// Knobs for random_case(); the long-run sweep widens these.
struct CaseProfile {
  std::size_t min_nodes = 2;
  std::size_t max_nodes = 14;
  Latency max_latency = 9;
  bool allow_faults = true;
  bool allow_model_variants = true;  ///< blocking / in-degree / jitter
  bool allow_dynamics = true;        ///< drift / churn / adversary families
  bool composites = true;            ///< include unified / EID / T(k)
};

/// One random case. Uses only `rng`; deterministic given its state.
TestCase random_case(Rng& rng, const CaseProfile& profile = {});

/// Build the CSR graph from the explicit edge list. Throws on invalid
/// edge lists (the shrinker filters candidates with case_valid first).
WeightedGraph materialize_graph(const TestCase& tc);

/// Structurally sound: >= 1 node, endpoints in range, latencies >= 1,
/// no duplicate/self-loop edges, source in range, connected. Every
/// generated case and every accepted shrink candidate satisfies this.
bool case_valid(const TestCase& tc);

/// One-line human-readable spec ("pushpull n=7 m=9 seed=42 drop=0.1 …").
std::string describe(const TestCase& tc);

/// Full reproducible dump: spec line(s) plus the graph in graph/io
/// format. latgossip_check writes this as the failure artifact.
void write_case(std::ostream& out, const TestCase& tc);

}  // namespace latgossip
