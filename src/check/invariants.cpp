#include "check/invariants.h"

#include <sstream>

#include "sim/oracle.h"

namespace latgossip {
namespace {

bool is_loss(EventKind k) {
  return k == EventKind::kDrop || k == EventKind::kCrashDrop;
}

}  // namespace

std::vector<std::string> check_invariants(const InvariantInput& in,
                                          const std::string& label) {
  std::vector<std::string> failures;
  auto fail = [&](const std::string& what) {
    failures.push_back(label + ": " + what);
  };
  const WeightedGraph& g = *in.graph;
  const EventRecorder& rec = *in.recorder;

  // --- accounting: recorder counts vs SimResult counters --------------
  if (!in.multi_phase) {
    std::ostringstream os;
    if (rec.activations() != in.result.activations) {
      os << "recorder saw " << rec.activations() << " activations, SimResult "
         << in.result.activations;
      fail(os.str());
    }
    if (rec.deliveries() != in.result.messages_delivered)
      fail("recorder delivery count != SimResult.messages_delivered");
    if (rec.drops() != in.result.messages_dropped)
      fail("recorder drop count != SimResult.messages_dropped");
  }

  // --- per-event latency conformance ----------------------------------
  for (const Event& e : rec.events()) {
    const EventKind k = e.kind();
    if (k != EventKind::kDelivery && !is_loss(k)) continue;
    const EdgeId edge = e.edge();
    if (edge == kInvalidEdge || edge >= g.num_edges()) {
      fail("delivery/drop event carries an invalid edge id");
      continue;
    }
    const Round elapsed = e.round() - e.start();
    if (in.jitter_active) {
      if (elapsed < 1) {
        fail("jittered delivery completed in < 1 round");
        break;
      }
    } else if (elapsed != g.latency(edge)) {
      std::ostringstream os;
      os << "delivery over edge " << edge << " took " << elapsed
         << " rounds, edge latency is " << g.latency(edge);
      fail(os.str());
      break;
    }
  }

  // --- churn absence ---------------------------------------------------
  // Absent nodes are out of the network: a delivery touching an absent
  // endpoint should have been a crash-drop, and an absent node must not
  // initiate. Absence is re-derived through the oracle-side brute-force
  // interpreter, independent of whichever engine produced the stream.
  if (in.dynamics != nullptr && in.dynamics->churn_active()) {
    const DynamicSpec& dyn = *in.dynamics;
    for (const Event& e : rec.events()) {
      if (e.kind() == EventKind::kDelivery) {
        if (oracle_detail::oracle_node_absent(dyn, e.a(), e.round()) ||
            oracle_detail::oracle_node_absent(dyn, e.b(), e.round())) {
          std::ostringstream os;
          os << "delivery touching a churn-absent endpoint at round "
             << e.round();
          fail(os.str());
          break;
        }
      } else if (e.kind() == EventKind::kActivation) {
        if (oracle_detail::oracle_node_absent(dyn, e.a(), e.round())) {
          std::ostringstream os;
          os << "churn-absent node " << e.a() << " initiated at round "
             << e.round();
          fail(os.str());
          break;
        }
      }
    }
  }

  // --- stream shape (single-phase runs only) --------------------------
  if (!in.multi_phase && !rec.empty()) {
    if (!rec.round_monotone())
      fail("event stream is not round-monotone within a single run");
    if (rec.max_round() > in.result.rounds) {
      std::ostringstream os;
      os << "event at round " << rec.max_round() << " past the run end ("
         << in.result.rounds << ")";
      fail(os.str());
    }
  }

  // --- informed-set monotonicity (single-source broadcast) ------------
  if (in.inform_round != nullptr) {
    const std::vector<Round>& inf = *in.inform_round;
    if (in.source < inf.size() && inf[in.source] != 0)
      fail("broadcast source not informed at round 0");
    for (const Event& e : rec.events()) {
      if (e.kind() != EventKind::kDelivery) continue;
      const NodeId to = e.a();
      const NodeId from = e.b();
      if (to >= inf.size() || from >= inf.size()) continue;
      // Sender informed when the payload snapshot was taken => the
      // receiver must be informed no later than the delivery round.
      const bool sender_knew = inf[from] >= 0 && inf[from] <= e.start();
      if (sender_knew && (inf[to] < 0 || inf[to] > e.round())) {
        std::ostringstream os;
        os << "node " << to << " received the rumor from informed node "
           << from << " at round " << e.round()
           << " but its inform round is " << inf[to];
        fail(os.str());
        break;
      }
    }
    // Every informed non-source node must be justified by a delivery
    // from a then-informed sender landing exactly at its inform round.
    for (NodeId u = 0; u < inf.size(); ++u) {
      if (u == in.source || inf[u] < 0) continue;
      bool justified = false;
      for (const Event& e : rec.events()) {
        if (e.kind() != EventKind::kDelivery || e.a() != u) continue;
        const NodeId from = e.b();
        if (from < inf.size() && inf[from] >= 0 && inf[from] <= e.start() &&
            e.round() == inf[u]) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        std::ostringstream os;
        os << "node " << u << " claims inform round " << inf[u]
           << " without a matching delivery from an informed sender";
        fail(os.str());
        break;
      }
    }
  }

  return failures;
}

}  // namespace latgossip
