#pragma once
// Differential execution: run one TestCase through the optimized engine
// (sim/engine.h) and the naive reference oracle (sim/oracle.h) and
// compare every observable — SimResult counters, the order-insensitive
// event-stream fingerprint, protocol outcomes (composites) — then apply
// the model invariants (check/invariants.h) to both runs.
//
// Simple protocols are instantiated twice from the same seed and driven
// by run_gossip() vs run_gossip_oracle() directly. Composite algorithms
// (unified, EID, T(k)) are run end-to-end twice, the second time under a
// ScopedOracleEngine so every internal dispatch_gossip() lands on the
// oracle; because both engines consume protocol and fault randomness in
// exactly the same order when they conform, whole-composite outcomes
// must match bit for bit.
//
// Stateful hooks (FaultPlan's drop RNG, jitter's RNG) cannot be shared
// across the two runs; each side gets its own identically-seeded copy.

#include <cstdint>
#include <string>
#include <vector>

#include "check/case_gen.h"
#include "sim/metrics.h"
#include "sim/oracle.h"

namespace latgossip {

struct DiffReport {
  bool ok = true;
  std::vector<std::string> failures;  ///< empty iff ok
  SimResult engine_result;
  SimResult oracle_result;
  std::uint64_t engine_fingerprint = 0;
  std::uint64_t oracle_fingerprint = 0;
};

/// Execute `tc` on both engines and compare. `bug` (tests only) plants a
/// deliberate model deviation in the oracle so the shrinker self-test
/// has a divergence to minimize.
DiffReport run_differential(const TestCase& tc,
                            const oracle_detail::ModelBug& bug = {});

}  // namespace latgossip
