#include "check/case_gen.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/latency_models.h"
#include "sim/dynamics.h"

namespace latgossip {
namespace {

enum class Family : std::uint8_t {
  kPath = 0,
  kCycle,
  kStar,
  kClique,
  kGrid,
  kBinaryTree,
  kErdosRenyi,
  kRandomRegular,
  kRingOfCliques,
  kDumbbell,
  kCount,
};

WeightedGraph random_topology(Rng& rng, const CaseProfile& profile,
                              std::size_t n) {
  const auto family =
      static_cast<Family>(rng.uniform(static_cast<std::uint64_t>(Family::kCount)));
  switch (family) {
    case Family::kPath:
      return make_path(n);
    case Family::kCycle:
      return n >= 3 ? make_cycle(n) : make_path(n);
    case Family::kStar:
      return make_star(n);
    case Family::kClique:
      return make_clique(n);
    case Family::kGrid: {
      std::size_t rows = 2 + rng.uniform(3);
      while (rows > 1 && rows * 2 > n) --rows;
      if (rows <= 1) return make_path(n);
      const std::size_t cols = n / rows;
      const bool wrap = rows >= 3 && cols >= 3 && rng.bernoulli(0.3);
      return make_grid(rows, cols, wrap);
    }
    case Family::kBinaryTree:
      return make_binary_tree(n);
    case Family::kErdosRenyi: {
      const double p = 0.25 + 0.5 * rng.uniform_double();
      return make_erdos_renyi(n, p, rng, 256);
    }
    case Family::kRandomRegular: {
      std::size_t d = 2 + rng.uniform(3);
      if (d >= n) d = n - 1;
      if ((n * d) % 2 != 0) {
        if (d + 1 < n) ++d; else --d;
      }
      if (d == 0) return make_path(n);
      return make_random_regular(n, d, rng, 512);
    }
    case Family::kRingOfCliques: {
      const std::size_t cliques = 3 + rng.uniform(2);
      const std::size_t size = std::max<std::size_t>(2, n / cliques);
      return make_ring_of_cliques(cliques, size);
    }
    case Family::kDumbbell: {
      const std::size_t size = std::max<std::size_t>(2, n / 3);
      return make_dumbbell(size, 1 + rng.uniform(3));
    }
    case Family::kCount:
      break;
  }
  return make_path(n);
  (void)profile;
}

// Dynamic-scenario topology families (ISSUE: drifting ER, churning
// ring/torus, adversarial-schedule star/path): each scenario gets the
// graph shapes where its behavior is most distinctive, instead of a
// uniform draw over all ten families.
WeightedGraph dynamic_topology(Rng& rng, int scenario, std::size_t n) {
  switch (scenario) {
    case 0: {  // drifting Erdős–Rényi
      const double p = 0.3 + 0.4 * rng.uniform_double();
      return make_erdos_renyi(n, p, rng, 256);
    }
    case 1: {  // churning ring / torus
      if (n >= 9 && rng.bernoulli(0.5)) {
        const std::size_t cols = n / 3;
        return make_grid(3, cols, /*wrap=*/true);
      }
      return n >= 3 ? make_cycle(n) : make_path(n);
    }
    default:  // adversarial-schedule star / path
      return rng.bernoulli(0.5) ? make_star(n) : make_path(n);
  }
}

void random_latencies(Rng& rng, const CaseProfile& profile, WeightedGraph& g) {
  switch (rng.uniform(4)) {
    case 0:
      break;  // unit latencies as generated
    case 1:
      assign_random_uniform_latency(g, 1, profile.max_latency, rng);
      break;
    case 2:
      assign_two_level_latency(g, 1, profile.max_latency,
                               0.3 + 0.4 * rng.uniform_double(), rng);
      break;
    default:
      assign_uniform_latency(
          g, 1 + static_cast<Latency>(
                     rng.uniform(static_cast<std::uint64_t>(profile.max_latency))));
      break;
  }
}

}  // namespace

const char* check_proto_name(CheckProto p) {
  switch (p) {
    case CheckProto::kPushPull: return "pushpull";
    case CheckProto::kPushOnly: return "pushonly";
    case CheckProto::kFlooding: return "flooding";
    case CheckProto::kGossipAllToAll: return "gossip_a2a";
    case CheckProto::kGossipLocal: return "gossip_local";
    case CheckProto::kUnified: return "unified";
    case CheckProto::kEid: return "eid";
    case CheckProto::kTk: return "tk";
    case CheckProto::kCount: break;
  }
  return "?";
}

bool check_proto_is_composite(CheckProto p) {
  return p == CheckProto::kUnified || p == CheckProto::kEid ||
         p == CheckProto::kTk;
}

TestCase random_case(Rng& rng, const CaseProfile& profile) {
  TestCase tc;
  // Non-composite protocols are the contiguous prefix [0, kUnified).
  const std::uint64_t proto_pool = static_cast<std::uint64_t>(
      profile.composites ? CheckProto::kCount : CheckProto::kUnified);
  tc.proto = static_cast<CheckProto>(rng.uniform(proto_pool));

  // Dynamic scenario (drift / churn / adversary), simple protocols
  // only; chosen before the topology so each scenario can steer the
  // graph family (drifting ER, churning ring/torus, adversarial
  // star/path).
  int dyn_scenario = -1;
  if (profile.allow_dynamics && !check_proto_is_composite(tc.proto) &&
      rng.bernoulli(0.25))
    dyn_scenario = static_cast<int>(rng.uniform(3));

  const std::size_t span = profile.max_nodes - profile.min_nodes + 1;
  const std::size_t n = profile.min_nodes + rng.uniform(span);
  WeightedGraph g = dyn_scenario >= 0 ? dynamic_topology(rng, dyn_scenario, n)
                                      : random_topology(rng, profile, n);
  random_latencies(rng, profile, g);
  tc.num_nodes = g.num_nodes();
  tc.edges = g.edges();
  tc.seed = rng() | 1;  // nonzero
  tc.source = static_cast<NodeId>(rng.uniform(tc.num_nodes));
  tc.tk_estimate = 1 + static_cast<Latency>(rng.uniform(8));

  if (dyn_scenario >= 0) {
    DynamicSpec& d = tc.dynamics;
    d.seed = rng() | 1;
    switch (dyn_scenario) {
      case 0:
        d.drift_step = static_cast<std::uint32_t>(16u << rng.uniform(4));
        d.drift_bound = rng.bernoulli(0.5) ? 2048 : 4096;
        break;
      case 1:
        d.churn_prob = 0.3 + 0.4 * rng.uniform_double();
        d.churn_window = 6 + static_cast<Round>(rng.uniform(10));
        d.churn_absence = 2 + static_cast<Round>(rng.uniform(8));
        d.churn_mode = static_cast<std::uint8_t>(rng.uniform(3));
        d.churn_spare = tc.source;
        break;
      default:
        d.adv_slow = 2048 + static_cast<std::uint32_t>(rng.uniform(2049));
        d.adv_source = tc.source;
        break;
    }
  }

  if (!check_proto_is_composite(tc.proto)) {
    // Give non-terminating (faulted) runs a bounded but roomy horizon.
    tc.max_rounds =
        500 + static_cast<Round>(tc.num_nodes) * 8 * g.max_latency();
    if (profile.allow_model_variants) {
      tc.blocking = rng.bernoulli(0.15);
      if (rng.bernoulli(0.15))
        tc.max_incoming_per_round = 1 + rng.uniform(2);
      if (rng.bernoulli(0.2))
        tc.jitter_spread = 1 + static_cast<Latency>(rng.uniform(3));
    }
    if (profile.allow_faults && rng.bernoulli(0.4)) {
      if (rng.bernoulli(0.6) && tc.num_nodes > 2)
        tc.faults.crash_count = 1 + rng.uniform(std::min<std::uint64_t>(
                                        2, tc.num_nodes - 2));
      tc.faults.crash_round = static_cast<Round>(rng.uniform(10));
      if (rng.bernoulli(0.6))
        tc.faults.drop_probability = 0.05 + 0.3 * rng.uniform_double();
      if (!tc.faults.any()) tc.faults.crash_count = 0;
    }
  }
  return tc;
}

WeightedGraph materialize_graph(const TestCase& tc) {
  GraphBuilder b(tc.num_nodes);
  for (const Edge& e : tc.edges) b.add_edge(e.u, e.v, e.latency);
  return b.build();
}

bool case_valid(const TestCase& tc) {
  if (tc.num_nodes == 0) return false;
  if (tc.source >= tc.num_nodes) return false;
  if (tc.tk_estimate < 1) return false;
  // Composite protocols own their SimOptions internally, so every
  // engine-model knob must stay off for them — enforced here (not by
  // generator convention alone) so a future case family can't silently
  // hand a composite a fault/jitter/dynamics knob it would ignore on
  // one side of the differential check but not the other.
  if (check_proto_is_composite(tc.proto)) {
    if (tc.blocking || tc.max_incoming_per_round > 0 ||
        tc.jitter_spread > 0 || tc.faults.any() || tc.dynamics.any())
      return false;
  }
  if (!dynamic_spec_error(tc.dynamics, tc.num_nodes).empty()) return false;
  GraphBuilder b(tc.num_nodes);
  for (const Edge& e : tc.edges) {
    if (e.u >= tc.num_nodes || e.v >= tc.num_nodes || e.u == e.v ||
        e.latency < 1 || b.has_edge(e.u, e.v))
      return false;
    b.add_edge(e.u, e.v, e.latency);
  }
  return b.build().is_connected();
}

std::string describe(const TestCase& tc) {
  std::ostringstream out;
  out << check_proto_name(tc.proto) << " n=" << tc.num_nodes
      << " m=" << tc.edges.size() << " seed=" << tc.seed
      << " source=" << tc.source;
  if (tc.proto == CheckProto::kTk) out << " k=" << tc.tk_estimate;
  if (tc.blocking) out << " blocking";
  if (tc.max_incoming_per_round > 0)
    out << " max_in=" << tc.max_incoming_per_round;
  if (tc.jitter_spread > 0) out << " jitter=" << tc.jitter_spread;
  if (tc.faults.crash_count > 0)
    out << " crashes=" << tc.faults.crash_count << "@"
        << tc.faults.crash_round;
  if (tc.faults.drop_probability > 0.0)
    out << " drop=" << tc.faults.drop_probability;
  if (tc.dynamics.any())
    out << " dynamics[" << describe_dynamics(tc.dynamics) << "]";
  return out.str();
}

void write_case(std::ostream& out, const TestCase& tc) {
  out << "# latgossip conformance counterexample\n"
      << "# " << describe(tc) << "\n"
      << "# proto=" << check_proto_name(tc.proto) << " seed=" << tc.seed
      << " source=" << tc.source << " tk=" << tc.tk_estimate
      << " blocking=" << (tc.blocking ? 1 : 0)
      << " max_incoming=" << tc.max_incoming_per_round
      << " jitter=" << tc.jitter_spread << " max_rounds=" << tc.max_rounds
      << " crashes=" << tc.faults.crash_count << "@" << tc.faults.crash_round
      << " drop=" << tc.faults.drop_probability << "\n";
  if (tc.dynamics.any()) {
    const DynamicSpec& d = tc.dynamics;
    out << "# dynamics drift=" << d.drift_step << "/" << d.drift_bound
        << " churn=" << d.churn_prob << " window=" << d.churn_window
        << " absence=" << d.churn_absence
        << " mode=" << static_cast<int>(d.churn_mode)
        << " spare=" << d.churn_spare << " adv=" << d.adv_slow
        << " adv_source=" << d.adv_source << " dseed=" << d.seed << "\n";
  }
  write_graph(out, materialize_graph(tc));
}

}  // namespace latgossip
