#pragma once
// Model invariants checked on every differential run — properties that
// must hold for ANY conforming engine execution, independent of which
// engine produced it. Violations are reported as human-readable failure
// strings (empty vector == all invariants hold).
//
// Checked here:
//  * accounting: the recorder's per-kind event counts equal the
//    SimResult's activation / delivery / drop counters;
//  * latency conformance: every delivery or drop event completes
//    exactly latency(edge) rounds after its initiation round (>= 1
//    when jitter rewrites latencies);
//  * stream shape: within one single-phase run the event stream is
//    round-monotone and never extends past SimResult::rounds;
//  * informed-set monotonicity (single-source broadcast only): the
//    source is informed at round 0, every other informed node is
//    justified by a delivery whose sender was informed when the
//    payload snapshot was taken, and an informed sender's delivery
//    always leaves the receiver informed.

#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/recorder.h"
#include "sim/dynamics_spec.h"
#include "sim/metrics.h"

namespace latgossip {

struct InvariantInput {
  const WeightedGraph* graph = nullptr;
  SimResult result;
  const EventRecorder* recorder = nullptr;
  /// Jitter rewrites per-exchange latencies; the exact-latency check
  /// degrades to completion-after-initiation.
  bool jitter_active = false;
  /// Composite runs (EID, T(k), unified) restart rounds per phase and
  /// accumulate SimResults across internal runs; the stream-shape and
  /// accounting checks only apply to single-phase runs.
  bool multi_phase = false;
  /// Per-node inform round from a single-source broadcast protocol
  /// (PushPullBroadcast::inform_round), -1 = never informed. Null skips
  /// the monotonicity check.
  const std::vector<Round>* inform_round = nullptr;
  NodeId source = 0;
  /// Dynamic scenario the run was driven under (null = none). Enables
  /// the churn-absence invariants: no delivery may touch an absent
  /// endpoint, and no absent node may initiate an activation (absence
  /// re-derived via the oracle-side brute-force interpreter).
  const DynamicSpec* dynamics = nullptr;
};

/// Run every applicable invariant; returns the failures (empty == ok).
/// `label` prefixes each failure string ("engine" / "oracle").
std::vector<std::string> check_invariants(const InvariantInput& in,
                                          const std::string& label);

}  // namespace latgossip
