#include "check/relabel.h"

#include <stdexcept>

#include "graph/builder.h"
#include "obs/fingerprint.h"
#include "util/rng.h"

namespace latgossip {

SymmetricPushPull::SymmetricPushPull(const NetworkView& view, NodeId source,
                                     std::uint64_t seed,
                                     std::vector<NodeId> tags)
    : view_(view),
      seed_(seed),
      tags_(std::move(tags)),
      informed_(view.num_nodes(), false) {
  if (tags_.size() != view.num_nodes())
    throw std::invalid_argument("SymmetricPushPull: tag count != n");
  if (!informed_.empty()) {
    informed_[source] = true;
    informed_count_ = 1;
  }
}

std::optional<Contact> SymmetricPushPull::select_contact(NodeId u, Round r) {
  const auto adj = view_.neighbors(u);
  if (adj.empty()) return std::nullopt;
  const std::uint64_t tag_u = tags_[u];
  const HalfEdge* pick = nullptr;
  std::uint64_t best_score = 0;
  for (const HalfEdge& h : adj) {
    const std::uint64_t score =
        fp_hash3(seed_, static_cast<std::uint64_t>(r),
                 (tag_u << 32) | tags_[h.to]);
    // Tag tie-break keeps the choice a pure function of the tags even
    // if two scores collide (slice order must never matter).
    if (pick == nullptr || score > best_score ||
        (score == best_score && tags_[h.to] < tags_[pick->to])) {
      pick = &h;
      best_score = score;
    }
  }
  return Contact{pick->to, pick->edge};
}

SymmetricPushPull::Payload SymmetricPushPull::capture_payload(NodeId u,
                                                              Round) const {
  return informed_[u];
}

void SymmetricPushPull::deliver(NodeId u, NodeId, Payload payload, EdgeId,
                                Round, Round) {
  if (payload && !informed_[u]) {
    informed_[u] = true;
    ++informed_count_;
  }
}

bool SymmetricPushPull::done(Round) const {
  return informed_count_ == informed_.size();
}

std::vector<NodeId> identity_permutation(std::size_t n) {
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  return perm;
}

std::vector<NodeId> random_permutation(std::size_t n, Rng& rng) {
  std::vector<NodeId> perm = identity_permutation(n);
  rng.shuffle(perm);
  return perm;
}

std::vector<NodeId> inverse_permutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[perm[i]] = static_cast<NodeId>(i);
  return inv;
}

WeightedGraph relabel_nodes(const WeightedGraph& g,
                            const std::vector<NodeId>& perm) {
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : g.edges())
    b.add_edge(perm[e.u], perm[e.v], e.latency);
  return b.build();
}

WeightedGraph permute_edge_ids(const WeightedGraph& g,
                               const std::vector<EdgeId>& perm) {
  if (perm.size() != g.num_edges())
    throw std::invalid_argument("permute_edge_ids: bad permutation size");
  GraphBuilder b(g.num_nodes());
  for (const EdgeId old_id : perm) {
    const Edge& e = g.edge(old_id);
    b.add_edge(e.u, e.v, e.latency);
  }
  return b.build();
}

std::uint64_t remapped_fingerprint(const EventRecorder& rec,
                                   const std::vector<NodeId>* node_map,
                                   const std::vector<EdgeId>* edge_map) {
  Fingerprint fp;
  for (const Event& e : rec.events()) {
    const EventKind kind = e.kind();
    NodeId a = e.a();
    NodeId b = e.b();
    EdgeId edge = e.edge();
    const bool phase =
        kind == EventKind::kPhaseBegin || kind == EventKind::kPhaseEnd;
    if (!phase) {
      if (node_map != nullptr) {
        if (a < node_map->size()) a = (*node_map)[a];
        if (b < node_map->size()) b = (*node_map)[b];
      }
      if (edge_map != nullptr && edge < edge_map->size())
        edge = (*edge_map)[edge];
    }
    // Same per-event packing as EventRecorder::refresh_stats().
    fp.add(fp_hash3(
        (static_cast<std::uint64_t>(e.round()) << 3) |
            static_cast<std::uint64_t>(kind),
        (static_cast<std::uint64_t>(a) << 32) | b,
        (static_cast<std::uint64_t>(edge) << 32) |
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(e.start()))));
  }
  return fp.digest();
}

}  // namespace latgossip
