#pragma once
// Symmetry property tests: a conforming engine + protocol pair must not
// care what the nodes or edges are *called*.
//
// Production randomized protocols are NOT node-relabel-invariant — they
// consume one shared RNG in node-id iteration order, so renaming nodes
// reorders the draws. Node-relabel invariance is therefore checked with
// SymmetricPushPull, a push–pull variant whose contact choice is a pure
// function of (seed, round, original labels): running it on a relabeled
// graph with the inverse permutation as its label tags must reproduce
// the base run exactly — same SimResult and the same event-stream
// fingerprint after mapping node ids back.
//
// Edge-ID permutation invariance, in contrast, holds for the production
// protocols themselves (uniform push–pull, EID): adjacency slices are
// sorted by neighbor id regardless of edge insertion order, so
// re-inserting the same edges in a different order changes only the
// EdgeId labels in the event stream. relabel_property_test checks
// SimResult equality plus fingerprint equality modulo an edge-id remap.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {

/// Push–pull whose neighbor choice is label-covariant: node u picks the
/// neighbor v maximizing fp_hash3(seed, round, (tag[u] << 32) | tag[v])
/// over its adjacency slice, where tag[] carries the *original* labels.
/// With identity tags this is a deterministic seeded push-pull; with
/// tags = the inverse of a relabeling permutation, the relabeled run
/// makes exactly the choices the base run made.
class SymmetricPushPull {
 public:
  using Payload = bool;

  SymmetricPushPull(const NetworkView& view, NodeId source,
                    std::uint64_t seed, std::vector<NodeId> tags);

  static std::size_t payload_bits(const Payload&) { return 1; }

  std::optional<Contact> select_contact(NodeId u, Round r);
  Payload capture_payload(NodeId u, Round r) const;
  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId e, Round start,
               Round now);
  bool done(Round r) const;

  bool informed(NodeId u) const { return informed_[u]; }

 private:
  NetworkView view_;
  std::uint64_t seed_;
  std::vector<NodeId> tags_;
  std::vector<bool> informed_;
  std::size_t informed_count_ = 0;
};

/// Identity permutation / a uniformly random one.
std::vector<NodeId> identity_permutation(std::size_t n);
std::vector<NodeId> random_permutation(std::size_t n, Rng& rng);
std::vector<NodeId> inverse_permutation(const std::vector<NodeId>& perm);

/// `g` with node u renamed perm[u]. Edges are re-added in the SAME
/// insertion order, so EdgeIds are preserved and only node fields of
/// the event stream change.
WeightedGraph relabel_nodes(const WeightedGraph& g,
                            const std::vector<NodeId>& perm);

/// `g` with the edge list re-inserted in the order perm[0], perm[1], …
/// (new EdgeId i == old EdgeId perm[i]); topology and latencies are
/// untouched, only the edge labels move.
WeightedGraph permute_edge_ids(const WeightedGraph& g,
                               const std::vector<EdgeId>& perm);

/// Recompute the recorder's order-insensitive digest with node ids
/// mapped through `node_map` and edge ids through `edge_map` (either
/// may be null for identity). Phase events carry interned name ids, not
/// node ids, and are folded unmapped.
std::uint64_t remapped_fingerprint(const EventRecorder& rec,
                                   const std::vector<NodeId>* node_map,
                                   const std::vector<EdgeId>* edge_map);

}  // namespace latgossip
