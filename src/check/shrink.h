#pragma once
// Counterexample shrinker: given a TestCase on which a failure predicate
// holds (typically "the engines diverge"), greedily minimize it while
// preserving the failure. Passes, applied to fixpoint under an attempt
// budget:
//
//   * drop a node (remapping ids and the source);
//   * drop an edge;
//   * reduce an edge latency to 1, or halve it;
//   * disable model knobs (blocking, in-degree cap, jitter, faults) and
//     shrink the T(k) estimate;
//   * replace the seed with a small constant and move the source to 0.
//
// Every candidate must stay case_valid() (connected, duplicate-free,
// latencies >= 1) — the predicate is only consulted on sound cases, so
// shrinking can never manufacture a bogus "failure" out of an invalid
// input.

#include <cstddef>
#include <functional>

#include "check/case_gen.h"

namespace latgossip {

struct ShrinkStats {
  std::size_t attempts = 0;  ///< predicate evaluations
  std::size_t accepted = 0;  ///< candidates that kept the failure
};

/// Minimize `original` (on which `fails` must return true) under
/// `fails`, evaluating it at most `max_attempts` times. Returns the
/// smallest failing case found.
TestCase shrink_case(const TestCase& original,
                     const std::function<bool(const TestCase&)>& fails,
                     ShrinkStats* stats = nullptr,
                     std::size_t max_attempts = 4000);

}  // namespace latgossip
