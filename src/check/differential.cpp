#include "check/differential.h"

#include <optional>
#include <sstream>
#include <utility>

#include "check/invariants.h"
#include "core/eid.h"
#include "core/flooding.h"
#include "core/push_only.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/tk_schedule.h"
#include "core/unified.h"
#include "obs/metrics.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace latgossip {
namespace {

constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kJitterSeedSalt = 0xda3e39cb94b95bdbULL;

/// Everything one simple-protocol run produces that the comparison and
/// the invariant checks need afterwards.
struct RunArtifacts {
  SimResult result;
  EventRecorder recorder;
  std::vector<Round> inform_round;  ///< push-pull only
  bool has_inform = false;
};

/// One simple-protocol execution. Engine and oracle sides each call this
/// with their own identically-seeded protocol, fault plan, and jitter —
/// stateful hooks cannot be shared across runs (the drop hook consumes
/// its RNG per call, so the second run would see a different stream).
RunArtifacts run_simple_once(const TestCase& tc, const WeightedGraph& g,
                             bool use_oracle,
                             const oracle_detail::ModelBug& bug) {
  RunArtifacts a;
  SimOptions opts;
  opts.max_rounds = tc.max_rounds;
  opts.blocking = tc.blocking;
  opts.max_incoming_per_round = tc.max_incoming_per_round;
  opts.recorder = &a.recorder;

  FaultPlan plan(tc.num_nodes, tc.seed ^ kFaultSeedSalt);
  if (tc.faults.crash_count > 0)
    plan.crash_random_nodes(tc.faults.crash_count, tc.faults.crash_round,
                            tc.source);
  if (tc.faults.drop_probability > 0.0)
    plan.set_link_drop_probability(tc.faults.drop_probability);
  if (tc.faults.any()) plan.apply(opts);
  if (tc.jitter_spread > 0)
    opts.latency_jitter =
        make_uniform_jitter(tc.jitter_spread, tc.seed ^ kJitterSeedSalt);
  // Each side builds its own DynamicPlan from the same spec: the
  // adversary's touched set and the drift caches are per-run state, and
  // the oracle side only ever reads the declarative spec() anyway.
  std::optional<DynamicPlan> dyn_plan;
  if (tc.dynamics.any()) {
    dyn_plan.emplace(tc.num_nodes, g.num_edges(), tc.dynamics);
    dyn_plan->apply(opts);
  }

  NetworkView view(g, /*latencies_known=*/false);
  auto drive = [&](auto& proto) {
    return use_oracle ? run_gossip_oracle(g, proto, opts, bug)
                      : run_gossip(g, proto, opts);
  };
  switch (tc.proto) {
    case CheckProto::kPushPull: {
      PushPullBroadcast proto(view, tc.source, Rng(tc.seed));
      a.result = drive(proto);
      a.inform_round.resize(tc.num_nodes);
      for (NodeId u = 0; u < tc.num_nodes; ++u)
        a.inform_round[u] = proto.inform_round(u);
      a.has_inform = true;
      break;
    }
    case CheckProto::kPushOnly: {
      PushOnlyBroadcast proto(view, tc.source, Rng(tc.seed));
      a.result = drive(proto);
      break;
    }
    case CheckProto::kFlooding: {
      RoundRobinFlooding proto(view, GossipGoal::kSingleSource, tc.source,
                               own_id_rumors(tc.num_nodes));
      a.result = drive(proto);
      break;
    }
    // Rumor-set goals exercise the copy-on-write snapshot payload path
    // (util/snapshot.h) against the oracle's naive deep-copy captures —
    // any stale or aliased snapshot shows up as a divergence here.
    case CheckProto::kGossipAllToAll: {
      PushPullGossip proto(view, GossipGoal::kAllToAll, tc.source,
                           PushPullGossip::own_id_rumors(tc.num_nodes),
                           Rng(tc.seed));
      a.result = drive(proto);
      break;
    }
    case CheckProto::kGossipLocal: {
      PushPullGossip proto(view, GossipGoal::kLocalBroadcast, tc.source,
                           PushPullGossip::own_id_rumors(tc.num_nodes),
                           Rng(tc.seed));
      a.result = drive(proto);
      break;
    }
    default:
      throw std::logic_error("run_simple_once: composite protocol");
  }
  a.result.fingerprint = a.recorder.fingerprint();
  return a;
}

/// True for the protocols whose payloads are rumor sets — the ones the
/// representation layer (util/rumor_set.h) re-parameterizes.
bool proto_carries_rumor_sets(CheckProto proto) {
  return proto == CheckProto::kFlooding ||
         proto == CheckProto::kGossipAllToAll ||
         proto == CheckProto::kGossipLocal;
}

/// Engine-only rerun of a rumor-set case under representation R, with
/// the identical seeds, fault plan, and jitter as run_simple_once. The
/// cross-representation half of the differential contract: every
/// representation must reproduce the dense run's SimResult and event
/// fingerprint bit for bit.
template <RumorSetRep R>
SimResult run_rumor_rep_once(const TestCase& tc, const WeightedGraph& g) {
  EventRecorder recorder;
  SimOptions opts;
  opts.max_rounds = tc.max_rounds;
  opts.blocking = tc.blocking;
  opts.max_incoming_per_round = tc.max_incoming_per_round;
  opts.recorder = &recorder;

  FaultPlan plan(tc.num_nodes, tc.seed ^ kFaultSeedSalt);
  if (tc.faults.crash_count > 0)
    plan.crash_random_nodes(tc.faults.crash_count, tc.faults.crash_round,
                            tc.source);
  if (tc.faults.drop_probability > 0.0)
    plan.set_link_drop_probability(tc.faults.drop_probability);
  if (tc.faults.any()) plan.apply(opts);
  if (tc.jitter_spread > 0)
    opts.latency_jitter =
        make_uniform_jitter(tc.jitter_spread, tc.seed ^ kJitterSeedSalt);
  std::optional<DynamicPlan> dyn_plan;
  if (tc.dynamics.any()) {
    dyn_plan.emplace(tc.num_nodes, g.num_edges(), tc.dynamics);
    dyn_plan->apply(opts);
  }

  NetworkView view(g, /*latencies_known=*/false);
  SimResult result;
  switch (tc.proto) {
    case CheckProto::kFlooding: {
      BasicRoundRobinFlooding<R> proto(view, GossipGoal::kSingleSource,
                                       tc.source,
                                       own_id_rumor_sets<R>(tc.num_nodes));
      result = run_gossip(g, proto, opts);
      break;
    }
    case CheckProto::kGossipAllToAll: {
      BasicPushPullGossip<R> proto(view, GossipGoal::kAllToAll, tc.source,
                                   own_id_rumor_sets<R>(tc.num_nodes),
                                   Rng(tc.seed));
      result = run_gossip(g, proto, opts);
      break;
    }
    case CheckProto::kGossipLocal: {
      BasicPushPullGossip<R> proto(view, GossipGoal::kLocalBroadcast,
                                   tc.source,
                                   own_id_rumor_sets<R>(tc.num_nodes),
                                   Rng(tc.seed));
      result = run_gossip(g, proto, opts);
      break;
    }
    default:
      throw std::logic_error("run_rumor_rep_once: not a rumor-set protocol");
  }
  result.fingerprint = recorder.fingerprint();
  return result;
}

template <typename T>
void compare_field(DiffReport& rep, const char* name, const T& engine,
                   const T& oracle) {
  if (engine == oracle) return;
  std::ostringstream os;
  os << name << " diverged: engine=" << engine << " oracle=" << oracle;
  rep.failures.push_back(os.str());
}

void compare_sim_results(DiffReport& rep, const SimResult& e,
                         const SimResult& o) {
  compare_field(rep, "rounds", e.rounds, o.rounds);
  compare_field(rep, "completed", e.completed, o.completed);
  compare_field(rep, "activations", e.activations, o.activations);
  compare_field(rep, "messages_delivered", e.messages_delivered,
                o.messages_delivered);
  compare_field(rep, "messages_dropped", e.messages_dropped,
                o.messages_dropped);
  compare_field(rep, "exchanges_rejected", e.exchanges_rejected,
                o.exchanges_rejected);
  compare_field(rep, "payload_bits", e.payload_bits, o.payload_bits);
  compare_field(rep, "max_inflight", e.max_inflight, o.max_inflight);
  compare_field(rep, "fingerprint", e.fingerprint, o.fingerprint);
}

/// Compare a non-dense representation's run against the dense engine
/// run, prefixing any divergence with the representation's name. (The
/// diverging value prints on the "engine=" side of the message.)
void compare_rep_results(DiffReport& rep, const char* rep_name,
                         const SimResult& dense, const SimResult& alt) {
  const std::size_t before = rep.failures.size();
  compare_sim_results(rep, alt, dense);
  for (std::size_t i = before; i < rep.failures.size(); ++i)
    rep.failures[i] = std::string(rep_name) + " rep " + rep.failures[i];
}

void apply_invariants(DiffReport& rep, const InvariantInput& in,
                      const std::string& label) {
  for (std::string& f : check_invariants(in, label))
    rep.failures.push_back(std::move(f));
}

DiffReport diff_simple(const TestCase& tc, const WeightedGraph& g,
                       const oracle_detail::ModelBug& bug) {
  DiffReport rep;
  const RunArtifacts engine = run_simple_once(tc, g, /*use_oracle=*/false, {});
  const RunArtifacts oracle = run_simple_once(tc, g, /*use_oracle=*/true, bug);
  rep.engine_result = engine.result;
  rep.oracle_result = oracle.result;
  rep.engine_fingerprint = engine.result.fingerprint;
  rep.oracle_fingerprint = oracle.result.fingerprint;
  compare_sim_results(rep, engine.result, oracle.result);

  // Cross-representation leg: replay rumor-set cases under the sparse
  // and counting representations; both must match the dense engine run
  // exactly (same SimResult, same event fingerprint).
  if (proto_carries_rumor_sets(tc.proto)) {
    compare_rep_results(rep, "sparse", engine.result,
                        run_rumor_rep_once<SparseRumorSet>(tc, g));
    compare_rep_results(rep, "count", engine.result,
                        run_rumor_rep_once<CountRumorSet>(tc, g));
  }

  for (const RunArtifacts* side : {&engine, &oracle}) {
    InvariantInput in;
    in.graph = &g;
    in.result = side->result;
    in.recorder = &side->recorder;
    // Drift and the adversary perturb delivered latencies the same way
    // jitter does, so the latency-conformance invariant degrades to its
    // weaker (>= 1) form for them.
    in.jitter_active = tc.jitter_spread > 0 || tc.dynamics.affects_latency();
    in.dynamics = tc.dynamics.any() ? &tc.dynamics : nullptr;
    // Rejoin-with-reset can un-inform a node, so inform-round
    // monotonicity only survives under retain-mode churn.
    const bool resets_possible =
        tc.dynamics.churn_active() && tc.dynamics.churn_mode != 0;
    if (side->has_inform && !resets_possible)
      in.inform_round = &side->inform_round;
    in.source = tc.source;
    apply_invariants(rep, in, side == &engine ? "engine" : "oracle");
  }
  rep.ok = rep.failures.empty();
  return rep;
}

/// Run a composite algorithm once; `body(obs)` does the actual call and
/// returns its outcome struct. The oracle side wraps the call in a
/// ScopedOracleEngine so every internal dispatch_gossip() is rerouted.
template <typename Body>
auto run_composite_once(bool use_oracle, EventRecorder& rec, Body&& body) {
  ObsContext obs{&rec, nullptr};
  std::optional<ScopedOracleEngine> guard;
  if (use_oracle) guard.emplace();
  return body(&obs);
}

void composite_invariants(DiffReport& rep, const WeightedGraph& g,
                          const EventRecorder& rec, const std::string& label) {
  InvariantInput in;
  in.graph = &g;
  in.recorder = &rec;
  in.multi_phase = true;
  apply_invariants(rep, in, label);
}

DiffReport diff_composite(const TestCase& tc, const WeightedGraph& g) {
  DiffReport rep;
  EventRecorder engine_rec;
  EventRecorder oracle_rec;

  switch (tc.proto) {
    case CheckProto::kUnified: {
      auto body = [&](ObsContext* obs) {
        Rng rng(tc.seed);
        UnifiedOptions uo;
        uo.obs = obs;
        return run_unified(g, uo, rng);
      };
      const UnifiedOutcome e = run_composite_once(false, engine_rec, body);
      const UnifiedOutcome o = run_composite_once(true, oracle_rec, body);
      compare_field(rep, "push_pull_rounds", e.push_pull_rounds,
                    o.push_pull_rounds);
      compare_field(rep, "push_pull_completed", e.push_pull_completed,
                    o.push_pull_completed);
      compare_field(rep, "spanner_rounds", e.spanner_rounds, o.spanner_rounds);
      compare_field(rep, "spanner_completed", e.spanner_completed,
                    o.spanner_completed);
      compare_field(rep, "unified_rounds", e.unified_rounds, o.unified_rounds);
      compare_field(rep, "winner", static_cast<int>(e.winner),
                    static_cast<int>(o.winner));
      compare_field(rep, "completed", e.completed, o.completed);
      break;
    }
    case CheckProto::kEid: {
      auto body = [&](ObsContext* obs) {
        Rng rng(tc.seed);
        return run_general_eid(g, /*n_hat=*/0, rng, /*initial_guess=*/1, obs);
      };
      const GeneralEidOutcome e = run_composite_once(false, engine_rec, body);
      const GeneralEidOutcome o = run_composite_once(true, oracle_rec, body);
      rep.engine_result = e.sim;
      rep.oracle_result = o.sim;
      compare_sim_results(rep, e.sim, o.sim);
      compare_field(rep, "final_estimate", e.final_estimate, o.final_estimate);
      compare_field(rep, "attempts", e.attempts, o.attempts);
      compare_field(rep, "success", e.success, o.success);
      compare_field(rep, "checks_unanimous", e.checks_unanimous,
                    o.checks_unanimous);
      if (e.rumors != o.rumors)
        rep.failures.push_back("final rumor sets diverged");
      break;
    }
    case CheckProto::kTk: {
      auto body = [&](ObsContext* obs) {
        return run_tk_schedule(g, tc.tk_estimate, own_id_rumors(tc.num_nodes),
                               obs);
      };
      const TkOutcome e = run_composite_once(false, engine_rec, body);
      const TkOutcome o = run_composite_once(true, oracle_rec, body);
      rep.engine_result = e.sim;
      rep.oracle_result = o.sim;
      compare_sim_results(rep, e.sim, o.sim);
      compare_field(rep, "all_to_all", e.all_to_all, o.all_to_all);
      if (e.rumors != o.rumors)
        rep.failures.push_back("final rumor sets diverged");
      break;
    }
    default:
      throw std::logic_error("diff_composite: simple protocol");
  }

  rep.engine_fingerprint = engine_rec.fingerprint();
  rep.oracle_fingerprint = oracle_rec.fingerprint();
  compare_field(rep, "event fingerprint", rep.engine_fingerprint,
                rep.oracle_fingerprint);
  composite_invariants(rep, g, engine_rec, "engine");
  composite_invariants(rep, g, oracle_rec, "oracle");
  rep.ok = rep.failures.empty();
  return rep;
}

}  // namespace

DiffReport run_differential(const TestCase& tc,
                            const oracle_detail::ModelBug& bug) {
  const WeightedGraph g = materialize_graph(tc);
  if (check_proto_is_composite(tc.proto)) {
    // The bug knob only exists on the direct oracle entry point; the
    // shrinker self-test (its only user) sticks to simple protocols.
    return diff_composite(tc, g);
  }
  return diff_simple(tc, g, bug);
}

}  // namespace latgossip
