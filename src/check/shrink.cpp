#include "check/shrink.h"

#include <algorithm>
#include <cstdint>
#include <optional>

namespace latgossip {
namespace {

/// `tc` with node `v` removed: incident edges dropped, higher ids
/// shifted down, source remapped. Never called with v == source.
TestCase without_node(const TestCase& tc, NodeId v) {
  TestCase c = tc;
  c.num_nodes = tc.num_nodes - 1;
  c.edges.clear();
  for (const Edge& e : tc.edges) {
    if (e.u == v || e.v == v) continue;
    Edge ne = e;
    if (ne.u > v) --ne.u;
    if (ne.v > v) --ne.v;
    c.edges.push_back(ne);
  }
  if (c.source > v) --c.source;
  // Node-id-keyed dynamics fields shift with the removal (a spare or
  // adversary source above v keeps naming the same node).
  if (c.dynamics.churn_spare > v) --c.dynamics.churn_spare;
  if (c.dynamics.adv_source > v) --c.dynamics.adv_source;
  return c;
}

/// Bypass a degree-2 node: splice its two incident edges into one
/// direct edge (latency = the larger of the two), then remove it. This
/// is what lets the shrinker collapse long paths, where plain node
/// removal would always disconnect the graph. Returns nullopt when v is
/// not an interior degree-2 node or the splice edge already exists.
std::optional<TestCase> bypass_node(const TestCase& tc, NodeId v) {
  NodeId ends[2];
  Latency lats[2];
  std::size_t incident = 0;
  for (const Edge& e : tc.edges) {
    if (e.u != v && e.v != v) continue;
    if (incident == 2) return std::nullopt;
    ends[incident] = e.u == v ? e.v : e.u;
    lats[incident] = e.latency;
    ++incident;
  }
  if (incident != 2 || ends[0] == ends[1]) return std::nullopt;
  for (const Edge& e : tc.edges)
    if ((e.u == ends[0] && e.v == ends[1]) ||
        (e.u == ends[1] && e.v == ends[0]))
      return std::nullopt;
  TestCase c = tc;
  c.edges.push_back(Edge{ends[0], ends[1], std::max(lats[0], lats[1])});
  return without_node(c, v);
}

}  // namespace

TestCase shrink_case(const TestCase& original,
                     const std::function<bool(const TestCase&)>& fails,
                     ShrinkStats* stats, std::size_t max_attempts) {
  TestCase best = original;
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;

  auto budget_left = [&] { return st.attempts < max_attempts; };
  auto attempt = [&](const TestCase& cand) {
    if (!budget_left()) return false;
    if (!case_valid(cand)) return false;
    ++st.attempts;
    if (!fails(cand)) return false;
    ++st.accepted;
    best = cand;
    return true;
  };

  bool improved = true;
  while (improved && budget_left()) {
    improved = false;

    // Node removal. On success the ids shift, so the index is NOT
    // advanced — position v now names a different node.
    for (NodeId v = 0; v < best.num_nodes && budget_left();) {
      if (v == best.source || best.num_nodes <= 2) {
        ++v;
        continue;
      }
      if (attempt(without_node(best, v)))
        improved = true;
      else
        ++v;
    }

    // Degree-2 bypass: collapse interior path nodes plain removal
    // cannot touch without disconnecting the graph.
    for (NodeId v = 0; v < best.num_nodes && budget_left();) {
      if (v == best.source || best.num_nodes <= 2) {
        ++v;
        continue;
      }
      const std::optional<TestCase> c = bypass_node(best, v);
      if (c && attempt(*c))
        improved = true;
      else
        ++v;
    }

    // Edge removal (same index discipline).
    for (std::size_t i = 0; i < best.edges.size() && budget_left();) {
      TestCase c = best;
      c.edges.erase(c.edges.begin() + static_cast<std::ptrdiff_t>(i));
      if (attempt(c))
        improved = true;
      else
        ++i;
    }

    // Latency reduction: to 1 first, halving as the fallback.
    for (std::size_t i = 0; i < best.edges.size() && budget_left(); ++i) {
      if (best.edges[i].latency <= 1) continue;
      TestCase c = best;
      c.edges[i].latency = 1;
      if (attempt(c)) {
        improved = true;
        continue;
      }
      c = best;
      c.edges[i].latency = best.edges[i].latency / 2;
      if (attempt(c)) improved = true;
    }

    // Knob disabling + parameter minimization.
    auto try_mutation = [&](auto&& mutate) {
      TestCase c = best;
      mutate(c);
      if (attempt(c)) improved = true;
    };
    if (best.blocking) try_mutation([](TestCase& c) { c.blocking = false; });
    if (best.max_incoming_per_round > 0)
      try_mutation([](TestCase& c) { c.max_incoming_per_round = 0; });
    if (best.jitter_spread > 0)
      try_mutation([](TestCase& c) { c.jitter_spread = 0; });
    if (best.faults.drop_probability > 0.0)
      try_mutation([](TestCase& c) { c.faults.drop_probability = 0.0; });
    if (best.faults.crash_count > 0)
      try_mutation([](TestCase& c) { c.faults.crash_count = 0; });
    // Dynamics knobs: try disabling each schedule outright, then the
    // cheaper churn-mode downgrade (reset/mixed -> retain).
    if (best.dynamics.drift_active())
      try_mutation([](TestCase& c) { c.dynamics.drift_step = 0; });
    if (best.dynamics.churn_active())
      try_mutation([](TestCase& c) { c.dynamics.churn_prob = 0.0; });
    if (best.dynamics.adv_active())
      try_mutation([](TestCase& c) { c.dynamics.adv_slow = 1024; });
    if (best.dynamics.churn_active() && best.dynamics.churn_mode != 0)
      try_mutation([](TestCase& c) { c.dynamics.churn_mode = 0; });
    if (best.tk_estimate > 1)
      try_mutation([](TestCase& c) { c.tk_estimate = 1; });
    if (best.source != 0) try_mutation([](TestCase& c) { c.source = 0; });
    for (std::uint64_t s : {std::uint64_t{1}, std::uint64_t{2},
                            std::uint64_t{3}}) {
      if (best.seed == s) continue;
      try_mutation([s](TestCase& c) { c.seed = s; });
    }
  }

  return best;
}

}  // namespace latgossip
