#pragma once
// Event tracing for simulation runs: records every edge activation (and
// through a per-round probe, the protocol's progress curve) for
// debugging and for spread-curve figures.
//
// Usage:
//   SimTrace trace;
//   SimOptions opts;
//   trace.attach(opts);                      // record activations
//   run_gossip(g, proto, opts);
//   trace.to_csv();                          // round,initiator,responder,edge
//
// The trace must outlive the run (the installed callback references it).
// attach() composes with an existing on_activation observer.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"

namespace latgossip {

class SimTrace {
 public:
  struct Activation {
    Round round;
    NodeId initiator;
    NodeId responder;
    EdgeId edge;
  };

  /// Install the recording hook into `opts`, chaining any observer that
  /// is already present.
  void attach(SimOptions& opts) {
    auto previous = std::move(opts.on_activation);
    opts.on_activation = [this, previous = std::move(previous)](
                             NodeId u, NodeId v, EdgeId e, Round r) {
      events_.push_back(Activation{r, u, v, e});
      if (previous) previous(u, v, e, r);
    };
  }

  const std::vector<Activation>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Number of activations in round r.
  std::size_t activations_in_round(Round r) const {
    std::size_t c = 0;
    for (const Activation& a : events_)
      if (a.round == r) ++c;
    return c;
  }

  /// Activations per edge (indexable by EdgeId up to the max edge seen).
  std::vector<std::size_t> per_edge_counts(std::size_t num_edges) const {
    std::vector<std::size_t> counts(num_edges, 0);
    for (const Activation& a : events_)
      if (a.edge < num_edges) ++counts[a.edge];
    return counts;
  }

  /// CSV rendering: "round,initiator,responder,edge" per line.
  std::string to_csv() const {
    std::string out = "round,initiator,responder,edge\n";
    for (const Activation& a : events_) {
      out += std::to_string(a.round);
      out += ',';
      out += std::to_string(a.initiator);
      out += ',';
      out += std::to_string(a.responder);
      out += ',';
      out += std::to_string(a.edge);
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Activation> events_;
};

}  // namespace latgossip
