#pragma once
// DEPRECATED shim: SimTrace is now a thin wrapper over the structured
// event recorder (obs/recorder.h). New code should use EventRecorder
// directly (set SimOptions::recorder) plus obs/export.h for CSV /
// Chrome-trace serialization; this header preserves the historical
// activation-log API for existing callers.
//
// Usage (unchanged):
//   SimTrace trace;
//   SimOptions opts;
//   trace.attach(opts);                      // record via opts.recorder
//   run_gossip(g, proto, opts);
//   trace.to_csv();                          // round,initiator,responder,edge
//
// Lifetime contract (see SimOptions in sim/engine.h): the trace must
// outlive every run made with the options it attached to; attach()
// asserts (debug builds) when a trace is re-attached without clear(),
// and SimOptions::reset_observers() detaches a dead trace.

#include <cassert>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "sim/engine.h"

namespace latgossip {

class SimTrace {
 public:
  struct Activation {
    Round round;
    NodeId initiator;
    NodeId responder;
    EdgeId edge;
  };

  /// Install the recorder into `opts`. Unlike the old callback chain,
  /// recording is a separate engine channel, so an existing
  /// on_activation observer keeps firing untouched.
  void attach(SimOptions& opts) {
    assert(!attached_ && "SimTrace: attach() without clear(); the previous "
                         "SimOptions still points at this trace");
    attached_ = true;
    opts.recorder = &recorder_;
  }

  /// The underlying structured recorder (all event kinds, fingerprint).
  const EventRecorder& recorder() const { return recorder_; }

  /// Activation events only, in recording order (materialized lazily).
  const std::vector<Activation>& events() const {
    if (cache_.size() != recorder_.activations()) {
      cache_.clear();
      cache_.reserve(recorder_.activations());
      for (const Event& e : recorder_.events())
        if (e.kind() == EventKind::kActivation)
          cache_.push_back(Activation{e.round(), e.a(), e.b(), e.edge()});
    }
    return cache_;
  }

  /// Number of recorded activations.
  std::size_t size() const { return recorder_.activations(); }

  void clear() {
    recorder_.clear();
    cache_.clear();
    attached_ = false;
  }

  /// Number of activations in round r (indexed; see EventRecorder).
  std::size_t activations_in_round(Round r) const {
    return recorder_.activations_in_round(r);
  }

  /// Activations per edge (indexable by EdgeId up to the max edge seen).
  std::vector<std::size_t> per_edge_counts(std::size_t num_edges) const {
    return recorder_.per_edge_counts(num_edges);
  }

  /// CSV rendering: "round,initiator,responder,edge" per line.
  std::string to_csv() const { return activations_to_csv(recorder_); }

 private:
  EventRecorder recorder_;
  mutable std::vector<Activation> cache_;
  bool attached_ = false;
};

}  // namespace latgossip
