#pragma once
// Failure injection for the simulator (the paper's conclusion:
// "push-pull is relatively robust to failures, while our other
// approaches are not. An interesting direction would be to find tight
// bounds and to develop robust fault-tolerant algorithms.").
//
// A FaultPlan owns the random state and schedules; install it into
// SimOptions with apply(). The plan must outlive every run_gossip()
// call made with those options (the installed callbacks reference it) —
// see the observer lifetime contract on SimOptions in sim/engine.h.
// apply() asserts (debug builds) on re-apply without an intervening
// detach(); detach() — or SimOptions::reset_observers() — removes the
// hooks so the options object can safely outlive the plan.

#include <cassert>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {

class FaultPlan {
 public:
  explicit FaultPlan(std::size_t num_nodes, std::uint64_t seed = 0)
      : crash_round_(num_nodes, kNever), rng_(seed) {}

  /// Node u stops initiating and receiving from round `at` on.
  void crash_node(NodeId u, Round at) {
    if (u >= crash_round_.size())
      throw std::out_of_range("FaultPlan: node id out of range");
    if (at < 0) throw std::invalid_argument("FaultPlan: negative round");
    crash_round_[u] = at;
  }

  /// Crash `count` distinct uniformly random nodes at round `at`,
  /// never crashing `spare` (e.g. the broadcast source).
  void crash_random_nodes(std::size_t count, Round at, NodeId spare) {
    const std::size_t n = crash_round_.size();
    if (count + 1 > n)
      throw std::invalid_argument("FaultPlan: too many crashes");
    std::size_t done = 0;
    while (done < count) {
      const auto v = static_cast<NodeId>(rng_.uniform(n));
      if (v == spare || crash_round_[v] != kNever) continue;
      crash_round_[v] = at;
      ++done;
    }
  }

  /// Every payload delivery is independently lost with probability p.
  void set_link_drop_probability(double p) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("FaultPlan: p out of [0,1]");
    drop_probability_ = p;
  }

  bool crashed(NodeId u, Round r) const { return crash_round_[u] <= r; }

  /// Install the hooks. The plan must outlive the simulation run.
  /// Asserts (debug) if already applied: a second apply() usually means
  /// a stale SimOptions still references this plan — detach() first.
  void apply(SimOptions& opts) {
    assert(!applied_ && "FaultPlan: apply() twice without detach()");
    applied_ = true;
    opts.is_crashed = [this](NodeId u, Round r) { return crashed(u, r); };
    if (drop_probability_ > 0.0) {
      opts.drop_delivery = [this](NodeId, NodeId, EdgeId, Round, Round) {
        return rng_.bernoulli(drop_probability_);
      };
    }
  }

  /// Remove this plan's hooks from `opts`, making it safe for the
  /// options to outlive the plan (and re-arming apply()).
  void detach(SimOptions& opts) {
    opts.is_crashed = nullptr;
    opts.drop_delivery = nullptr;
    applied_ = false;
  }

  std::size_t num_crashed_by(Round r) const {
    std::size_t c = 0;
    for (Round cr : crash_round_)
      if (cr <= r) ++c;
    return c;
  }

 private:
  static constexpr Round kNever = std::numeric_limits<Round>::max();

  std::vector<Round> crash_round_;
  double drop_probability_ = 0.0;
  Rng rng_;
  bool applied_ = false;
};

/// Uniform latency jitter: each exchange's latency is the nominal value
/// plus an integer uniform in [-spread, +spread], clamped to >= 1
/// (footnote 1: latencies fluctuate with network quality). The returned
/// callable owns its RNG; copy it into SimOptions::latency_jitter.
inline std::function<Latency(EdgeId, Latency)> make_uniform_jitter(
    Latency spread, std::uint64_t seed) {
  if (spread < 0) throw std::invalid_argument("jitter: negative spread");
  return [rng = Rng(seed), spread](EdgeId, Latency nominal) mutable {
    const Latency delta = rng.uniform_int(-spread, spread);
    return std::max<Latency>(1, nominal + delta);
  };
}

}  // namespace latgossip
