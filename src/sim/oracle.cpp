#include "sim/oracle.h"

namespace latgossip {

namespace {
// Depth, not a flag: differential drivers nest guards when they wrap a
// composite runner that wraps another one.
thread_local int g_oracle_depth = 0;
}  // namespace

bool oracle_engine_active() noexcept { return g_oracle_depth > 0; }

ScopedOracleEngine::ScopedOracleEngine() noexcept { ++g_oracle_depth; }
ScopedOracleEngine::~ScopedOracleEngine() { --g_oracle_depth; }

namespace oracle_detail {

std::optional<EdgeId> scan_for_edge(const WeightedGraph& g, NodeId u,
                                    NodeId v) {
  for (const HalfEdge& h : g.neighbors(u))
    if (h.to == v) return h.edge;
  return std::nullopt;
}

bool scan_adjacency_for(const WeightedGraph& g, NodeId u, NodeId v,
                        EdgeId e) {
  for (const HalfEdge& h : g.neighbors(u))
    if (h.to == v && h.edge == e) return true;
  return false;
}

}  // namespace oracle_detail

}  // namespace latgossip
