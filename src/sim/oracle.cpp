#include "sim/oracle.h"

#include <algorithm>

#include "util/rng.h"

namespace latgossip {

namespace {
// Depth, not a flag: differential drivers nest guards when they wrap a
// composite runner that wraps another one.
thread_local int g_oracle_depth = 0;
}  // namespace

bool oracle_engine_active() noexcept { return g_oracle_depth > 0; }

ScopedOracleEngine::ScopedOracleEngine() noexcept { ++g_oracle_depth; }
ScopedOracleEngine::~ScopedOracleEngine() { --g_oracle_depth; }

namespace oracle_detail {

std::optional<EdgeId> scan_for_edge(const WeightedGraph& g, NodeId u,
                                    NodeId v) {
  for (const HalfEdge& h : g.neighbors(u))
    if (h.to == v) return h.edge;
  return std::nullopt;
}

bool scan_adjacency_for(const WeightedGraph& g, NodeId u, NodeId v,
                        EdgeId e) {
  for (const HalfEdge& h : g.neighbors(u))
    if (h.to == v && h.edge == e) return true;
  return false;
}

namespace {

/// One node's churn schedule re-derived from scratch (the contract in
/// sim/dynamics_spec.h), independent of DynamicPlan's precomputed
/// interval table.
struct OracleChurn {
  bool leaves = false;
  Round leave = 0;
  Round absence = 0;
  bool reset = false;
};

OracleChurn oracle_churn_of(const DynamicSpec& spec, NodeId u) {
  OracleChurn c;
  if (!spec.churn_active() || u == spec.churn_spare) return c;
  Rng rng(spec.seed ^ (0xc2b2ae3d27d4eb4fULL * (std::uint64_t{u} + 1)));
  c.leaves = rng.bernoulli(spec.churn_prob);
  c.leave = 1 + static_cast<Round>(
                    rng.uniform(static_cast<std::uint64_t>(spec.churn_window)));
  c.absence =
      1 + static_cast<Round>(
              rng.uniform(static_cast<std::uint64_t>(spec.churn_absence)));
  c.reset =
      spec.churn_mode == 1 || (spec.churn_mode == 2 && rng.bernoulli(0.5));
  return c;
}

}  // namespace

std::uint64_t oracle_drift_factor(const DynamicSpec& spec, EdgeId e, Round r) {
  // Recomputed from round 0 on every query — no incremental cache.
  std::uint64_t f = 1024;
  const std::uint64_t lo = 1024ULL * 1024ULL / spec.drift_bound;
  for (Round t = 1; t <= r; ++t) {
    std::uint64_t h = spec.seed ^
                      (0x9e3779b97f4a7c15ULL * (std::uint64_t{e} + 1)) ^
                      (static_cast<std::uint64_t>(t) * 0xbf58476d1ce4e5b9ULL);
    const bool up = (splitmix64(h) & 1) != 0;
    f = f * (up ? 1024 + spec.drift_step : 1024 - spec.drift_step) / 1024;
    f = std::clamp<std::uint64_t>(f, lo, spec.drift_bound);
  }
  return f;
}

bool oracle_node_absent(const DynamicSpec& spec, NodeId u, Round r,
                        Round absence_bias) {
  const OracleChurn c = oracle_churn_of(spec, u);
  if (!c.leaves) return false;
  return r >= c.leave && r < c.leave + c.absence + absence_bias;
}

bool oracle_node_resets_at(const DynamicSpec& spec, NodeId u, Round r,
                           Round absence_bias) {
  const OracleChurn c = oracle_churn_of(spec, u);
  return c.leaves && c.reset && r == c.leave + c.absence + absence_bias;
}

}  // namespace oracle_detail

}  // namespace latgossip
