#pragma once
// Simulation outcome metrics shared by all protocol runs.

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace latgossip {

struct SimResult {
  Round rounds = 0;                   ///< round at which the run ended
  bool completed = false;             ///< done() became true
  std::size_t activations = 0;        ///< exchanges initiated
  std::size_t messages_delivered = 0; ///< payload deliveries (2/exchange)
  std::size_t messages_dropped = 0;   ///< deliveries lost to faults
  std::size_t exchanges_rejected = 0; ///< bounced by the in-degree cap
  std::size_t payload_bits = 0;       ///< total bits sent (see engine.h)
  std::size_t max_inflight = 0;       ///< peak concurrent deliveries
  /// Order-insensitive digest of the run's event stream (0 when no
  /// recorder was attached). The engine never writes this; the caller
  /// that owns the EventRecorder stamps it after the run (see
  /// obs/fingerprint.h), so multi-phase protocols carry one digest for
  /// the whole event stream rather than per-phase fragments.
  std::uint64_t fingerprint = 0;

  bool operator==(const SimResult&) const = default;

  /// Merge a sequential phase into a running total.
  SimResult& accumulate(const SimResult& phase) {
    rounds += phase.rounds;
    completed = phase.completed;
    activations += phase.activations;
    messages_delivered += phase.messages_delivered;
    messages_dropped += phase.messages_dropped;
    exchanges_rejected += phase.exchanges_rejected;
    payload_bits += phase.payload_bits;
    if (phase.max_inflight > max_inflight) max_inflight = phase.max_inflight;
    fingerprint += phase.fingerprint;  // commutative merge; usually 0
    return *this;
  }
};

}  // namespace latgossip
