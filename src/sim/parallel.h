#pragma once
// Deterministic multi-threaded trial runner.
//
// Every experiment in EXPERIMENTS.md is a Monte-Carlo sweep (dozens of
// seeds per configuration) and trials are embarrassingly parallel, but
// naive parallelism breaks reproducibility: thread scheduling would
// change which trial consumes which random numbers and the order in
// which results are aggregated. run_trials() fixes both:
//
//  * each trial's RNG is derived from (seed, trial index) alone by
//    SplitMix64 seed-splitting — no shared random state, so trial t sees
//    the same stream no matter which thread runs it;
//  * workers accumulate results in per-thread arenas (no false sharing
//    on adjacent slots of a shared vector); after the join the arenas
//    are scattered into trial-order slots and the util/stats
//    accumulators are filled sequentially in trial order — bit-identical
//    aggregates for any thread count (covered by
//    tests/parallel_test.cpp).
//
// The trial callback must be thread-safe: treat everything it captures
// (typically the graph) as const and keep all mutable state local.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/metrics.h"
#include "sim/workspace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace latgossip {

/// Aggregate over a batch of independent simulation trials. `trials` is
/// indexed by trial number; the accumulators summarize it in that order.
struct TrialAggregate {
  std::vector<SimResult> trials;
  Accumulator rounds;
  Accumulator activations;
  Accumulator messages_delivered;
  Accumulator payload_bits;
  std::size_t num_completed = 0;
  /// Per-trial wall time (not deterministic; excluded from equality
  /// checks and used only for manifests).
  std::vector<double> wall_ms;
  /// Commutative merge of every trial's SimResult::fingerprint — equal
  /// across thread counts iff each trial's event stream is (the
  /// event-granular determinism check; 0 when trials don't record).
  std::uint64_t fingerprint = 0;

  double mean_rounds() const noexcept { return rounds.mean(); }
  bool all_completed() const noexcept {
    return num_completed == trials.size();
  }
};

/// Optional JSONL manifest emission for a trial batch: one record per
/// trial, appended to `path` in trial order after the pool drains.
/// `metrics_json_snapshot(t)` (optional) supplies the already-serialized
/// per-trial metrics object — the trial callback typically fills a
/// pre-sized vector<string> slot per trial, exp_spread_curve-style.
struct ManifestSpec {
  std::string path;
  RunInfo info;
  std::function<std::string(std::size_t trial)> metrics_json_snapshot;
};

/// RNG seed for trial `trial` of a batch rooted at `seed` (SplitMix64
/// seed-splitting; distinct for every (seed, trial) pair in practice).
std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t trial) noexcept;

/// The default worker count used when run_trials is called with
/// threads == 0: the LATGOSSIP_THREADS environment variable when set to
/// a positive integer, else std::thread::hardware_concurrency() (at
/// least 1). Computed once and cached — hardware_concurrency() is a
/// syscall on some platforms, and the env var is read at first use only.
std::size_t default_concurrency() noexcept;

/// Worker count a run_trials call will actually use before the
/// num_trials cap: `threads` as given (explicit counts are honored
/// exactly), default_concurrency() for 0 — and 1 when called from a
/// TrialPool worker thread, so a trial whose body itself calls
/// run_trials degrades to sequential execution on that worker instead
/// of oversubscribing the pool (or deadlocking on it).
std::size_t resolve_threads(std::size_t threads) noexcept;

namespace detail {
/// Uncached default_concurrency computation (tests point it at a
/// scratch environment; production code wants the cached wrapper).
std::size_t read_default_concurrency() noexcept;
}  // namespace detail

/// One trial: gets its index and a private RNG, returns the SimResult.
using TrialFn = std::function<SimResult(std::size_t trial, Rng rng)>;

/// One trial with reusable scratch: additionally receives the executing
/// worker's persistent TrialWorkspace (sim/workspace.h). The workspace
/// outlives the trial and the run_trials call — heavyweight state parked
/// in it (engines, protocols, arenas) is recycled by later trials on the
/// same worker. Contract: the trial must reset anything it reuses so its
/// results depend only on (trial, rng); see the workspace header.
using TrialWsFn =
    std::function<SimResult(std::size_t trial, Rng rng, TrialWorkspace& ws)>;

/// Run `num_trials` independent trials across `threads` worker threads
/// (0 = default_concurrency(); capped at num_trials) and aggregate.
/// Parallel batches execute on the shared persistent TrialPool
/// (sim/pool.h) — no per-call thread spawn/join. Results are
/// bit-identical for any thread count — including the event-stream
/// fingerprint when trials record. Exceptions thrown by a trial are
/// rethrown on the calling thread after the batch drains. When
/// `manifest` is given, one JSONL run-manifest record per trial is
/// appended to manifest->path (see obs/export.h).
TrialAggregate run_trials(std::size_t num_trials, std::size_t threads,
                          std::uint64_t seed, const TrialWsFn& make_trial,
                          const ManifestSpec* manifest = nullptr);

/// Workspace-less convenience overload (the trial manages all its own
/// state). Identical semantics; the worker's workspace is still there,
/// the trial just doesn't see it.
TrialAggregate run_trials(std::size_t num_trials, std::size_t threads,
                          std::uint64_t seed, const TrialFn& make_trial,
                          const ManifestSpec* manifest = nullptr);

}  // namespace latgossip
