// Declarative description of a dynamic scenario: per-round edge-latency
// drift, node churn (leave/rejoin), and an adversarial latency schedule
// that slows the current frontier cut.
//
// A DynamicSpec is pure data — it fully determines every schedule below,
// so the engine-side DynamicPlan (sim/dynamics.h) and the oracle-side
// brute-force interpreters (sim/oracle.cpp) can be coded independently
// and still agree bit-for-bit. The derivation contracts are therefore
// part of this header's documented interface:
//
// Drift (active when drift_step > 0):
//   Each edge e performs a bounded multiplicative walk on a fixed-point
//   factor f(e, r), scaled by 1024. f(e, 0) = 1024. For each round
//   t = 1..r:
//     h   = seed ^ (0x9e3779b97f4a7c15ULL * (e + 1))
//             ^ (uint64_t(t) * 0xbf58476d1ce4e5b9ULL)
//     bit = splitmix64(h) & 1        // h passed as a local lvalue
//     f  *= (bit ? 1024 + drift_step : 1024 - drift_step) / 1024
//   after each step f is clamped to
//     [1024 * 1024 / drift_bound, drift_bound].
//   The effective latency of a contact over e at round r is
//   max(1, lat * f(e, r) / 1024), applied AFTER jitter.
//
// Churn (active when churn_prob > 0):
//   Each node u != churn_spare derives its schedule from
//   Rng(seed ^ (0xc2b2ae3d27d4eb4fULL * (u + 1))), drawing in order:
//     leaves  = bernoulli(churn_prob)
//     leave   = 1 + uniform(churn_window)
//     absence = 1 + uniform(churn_absence)
//     reset   = churn_mode == 1 || (churn_mode == 2 && bernoulli(0.5))
//   (all four draws happen even when !leaves, so schedules are
//   insensitive to draw short-circuiting). A leaving node is absent for
//   rounds r in [leave, leave + absence). Absent nodes initiate no
//   contacts, and any delivery to or from an absent endpoint is dropped
//   exactly like a delivery touching a crashed node. If reset, the
//   node's protocol state is re-initialised at round leave + absence —
//   at the top of the round, BEFORE deliveries, in ascending node id.
//
// Adversary (active when adv_slow > 1024):
//   The adversary tracks the "touched" set T, initially {adv_source},
//   adding the receiver of every successful delivery. When a contact is
//   selected at round r and exactly one endpoint is in T (the edge
//   crosses the current frontier cut), its latency is multiplied by
//   adv_slow / 1024 (after jitter and drift). This targets the paper's
//   guessing-game lower bound: the frontier edges that would spread the
//   rumor are exactly the slowed ones.
//
// Composition order per contact: base latency -> jitter -> drift
// (clamped to >= 1 by itself, as above) -> adversary (adv_slow >= 1024
// never takes a latency below 1) -> final engine clamp to >= 1.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace latgossip {

struct DynamicSpec {
  // --- edge-latency drift ---
  std::uint32_t drift_step = 0;      // per-round step, x1024 (0 = off); < 1024
  std::uint32_t drift_bound = 2048;  // factor clamp, x1024; in [1024, 1024*1024]

  // --- node churn ---
  double churn_prob = 0.0;     // per-node leave probability (0 = off)
  Round churn_window = 0;      // latest leave round; >= 1 when active
  Round churn_absence = 1;     // max absence duration; >= 1
  std::uint8_t churn_mode = 0; // 0 = retain state, 1 = reset, 2 = per-node mix
  NodeId churn_spare = 0;      // never churned (conventionally the source)

  // --- adversarial frontier slowdown ---
  std::uint32_t adv_slow = 1024;  // x1024 multiplier (1024 = off); <= 1024*1024
  NodeId adv_source = 0;          // initial member of the touched set

  std::uint64_t seed = 1;  // master seed for every schedule above

  bool drift_active() const noexcept { return drift_step > 0; }
  bool churn_active() const noexcept { return churn_prob > 0.0; }
  bool adv_active() const noexcept { return adv_slow > 1024; }
  bool any() const noexcept {
    return drift_active() || churn_active() || adv_active();
  }
  // True when the scenario perturbs delivery latencies (drift or
  // adversary); churn alone leaves every delivered contact's latency
  // conformant to the latency model.
  bool affects_latency() const noexcept {
    return drift_active() || adv_active();
  }
};

}  // namespace latgossip
