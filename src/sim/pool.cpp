#include "sim/pool.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sim/workspace.h"

namespace latgossip {

namespace {

/// Set for the lifetime of every pool worker thread (any pool instance).
thread_local bool t_pool_worker = false;

/// Per-thread workspace stack: one workspace per trial-nesting level.
/// Lives in the thread, not the pool, so the main thread's sequential
/// runs and every pool worker reuse state across run_trials() calls.
thread_local std::vector<std::unique_ptr<TrialWorkspace>> t_workspaces;
thread_local std::size_t t_trial_depth = 0;

}  // namespace

TrialWorkspace& trial_workspace() {
  while (t_workspaces.size() <= t_trial_depth)
    t_workspaces.push_back(std::make_unique<TrialWorkspace>());
  return *t_workspaces[t_trial_depth];
}

namespace detail {
TrialDepthScope::TrialDepthScope() noexcept { ++t_trial_depth; }
TrialDepthScope::~TrialDepthScope() noexcept { --t_trial_depth; }
}  // namespace detail

TrialPool::TrialPool(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_locked(workers);
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& th : threads_) th.join();
}

std::size_t TrialPool::workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

bool TrialPool::on_worker_thread() noexcept { return t_pool_worker; }

TrialPool& TrialPool::global() {
  // Zero workers until the first parallel batch asks for some; grows to
  // the largest parallelism ever requested and keeps those threads (and
  // their thread-local workspaces) for the life of the process.
  static TrialPool pool(0);
  return pool;
}

void TrialPool::spawn_locked(std::size_t target_workers) {
  while (threads_.size() < target_workers) {
    const std::size_t index = threads_.size();
    threads_.emplace_back([this, index] { worker_main(index); });
  }
}

void TrialPool::run(
    std::size_t num_tasks, std::size_t parallelism,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("TrialPool: more than 2^32 tasks");
  parallelism = std::max<std::size_t>(1, std::min(parallelism, num_tasks));

  Job job;
  job.fn = &fn;
  job.participants = parallelism;
  job.unfinished.store(num_tasks, std::memory_order_relaxed);
  job.deques = std::vector<Deque>(parallelism);
  // Initial distribution: contiguous near-equal slices. Slices only
  // shrink from here (owner claims from the bottom, thieves halve the
  // top), so load imbalance self-corrects without a shared counter.
  for (std::size_t w = 0; w < parallelism; ++w) {
    const std::uint64_t lo = num_tasks * w / parallelism;
    const std::uint64_t hi = num_tasks * (w + 1) / parallelism;
    job.deques[w].range.store(pack(lo, hi), std::memory_order_relaxed);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // One batch at a time per pool; concurrent callers queue here.
  finished_.wait(lock, [&] { return job_ == nullptr; });
  spawn_locked(parallelism);
  job_ = &job;
  ++generation_;
  lock.unlock();
  wake_.notify_all();

  lock.lock();
  finished_.wait(lock, [&] {
    return job.unfinished.load(std::memory_order_acquire) == 0 && busy_ == 0;
  });
  job_ = nullptr;
  lock.unlock();
  // Wake any queued run() caller waiting for the job slot.
  finished_.notify_all();

  if (job.error) std::rethrow_exception(job.error);
}

void TrialPool::worker_main(std::size_t index) {
  t_pool_worker = true;
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    Job* job = job_;
    if (job == nullptr || index >= job->participants) continue;
    ++busy_;
    lock.unlock();
    work_on(*job, index);
    lock.lock();
    --busy_;
    // The last worker out observes unfinished == 0; waking the caller
    // from under the mutex closes the lost-wakeup window.
    finished_.notify_all();
  }
}

void TrialPool::work_on(Job& job, std::size_t worker) {
  // Run tasks [lo, hi); after a failure the remaining claims are
  // drained unexecuted so `unfinished` still reaches zero.
  const auto execute = [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t t = lo; t < hi; ++t) {
      if (!job.abort.load(std::memory_order_acquire)) {
        try {
          (*job.fn)(static_cast<std::size_t>(t), worker);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(job.error_mutex);
            if (!job.error) job.error = std::current_exception();
          }
          job.abort.store(true, std::memory_order_release);
        }
      }
      job.unfinished.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  Deque& own = job.deques[worker];
  while (true) {
    // 1. Claim a chunk from the bottom of the local deque. Chunk size
    // remaining/4 (≥1): with slices pre-split per worker this is the
    // `global_remaining / workers / 4` rule — big enough that short
    // trials don't serialize on the deque word, small enough that the
    // tail still balances via stealing.
    std::uint64_t p = own.range.load(std::memory_order_acquire);
    bool claimed = false;
    while (lo_of(p) < hi_of(p)) {
      const std::uint64_t lo = lo_of(p);
      const std::uint64_t hi = hi_of(p);
      const std::uint64_t n = std::max<std::uint64_t>(1, (hi - lo) / 4);
      if (own.range.compare_exchange_weak(p, pack(lo + n, hi),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        execute(lo, lo + n);
        claimed = true;
        break;
      }
    }
    if (claimed) continue;

    // 2. Own deque empty: steal the upper half of a victim's range and
    // deposit it as the new local slice (itself stealable in turn).
    // Only the owner ever refills its deque, so the plain store cannot
    // race a successful thief CAS.
    bool stole = false;
    for (std::size_t k = 1; k < job.participants && !stole; ++k) {
      Deque& victim = job.deques[(worker + k) % job.participants];
      std::uint64_t vp = victim.range.load(std::memory_order_acquire);
      while (lo_of(vp) < hi_of(vp)) {
        const std::uint64_t lo = lo_of(vp);
        const std::uint64_t hi = hi_of(vp);
        const std::uint64_t half = (hi - lo + 1) / 2;
        if (victim.range.compare_exchange_weak(vp, pack(lo, hi - half),
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          own.range.store(pack(hi - half, hi), std::memory_order_release);
          stole = true;
          break;
        }
      }
    }
    if (!stole) return;  // every deque empty — batch is drained
  }
}

}  // namespace latgossip
