#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/fingerprint.h"

namespace latgossip {

std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t trial) noexcept {
  // Decorrelate the batch seed from the trial index with one golden-ratio
  // multiply, then finalize with a SplitMix64 step. The +1 keeps trial 0
  // from passing the seed through unmixed.
  std::uint64_t state = seed ^ ((trial + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TrialAggregate run_trials(std::size_t num_trials, std::size_t threads,
                          std::uint64_t seed, const TrialFn& make_trial,
                          const ManifestSpec* manifest) {
  TrialAggregate agg;
  agg.trials.resize(num_trials);
  agg.wall_ms.resize(num_trials, 0.0);
  if (num_trials == 0) return agg;

  threads = std::min(resolve_threads(threads), num_trials);
  if (threads <= 1) {
    for (std::size_t t = 0; t < num_trials; ++t) {
      const auto start = std::chrono::steady_clock::now();
      agg.trials[t] = make_trial(t, Rng(trial_seed(seed, t)));
      const auto stop = std::chrono::steady_clock::now();
      agg.wall_ms[t] =
          std::chrono::duration<double, std::milli>(stop - start).count();
    }
  } else {
    // Work-stealing over trial indices. Workers append into per-thread
    // arenas instead of writing the shared pre-sized `trials`/`wall_ms`
    // vectors directly: adjacent SimResult/double slots claimed by
    // different workers share cache lines, and the resulting false
    // sharing throttles scaling exactly when trials are short. Results
    // are placed into their trial-order slots after the join, so
    // aggregation stays bit-identical for any thread count.
    struct TrialSlot {
      std::size_t trial;
      SimResult result;
      double wall_ms;
    };
    std::vector<std::vector<TrialSlot>> arenas(threads);
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto worker = [&](std::size_t w) {
      std::vector<TrialSlot>& mine = arenas[w];
      mine.reserve(num_trials / threads + 1);
      while (true) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= num_trials) return;
        try {
          const auto start = std::chrono::steady_clock::now();
          SimResult r = make_trial(t, Rng(trial_seed(seed, t)));
          const auto stop = std::chrono::steady_clock::now();
          mine.push_back(TrialSlot{
              t, std::move(r),
              std::chrono::duration<double, std::milli>(stop - start)
                  .count()});
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          next.store(num_trials, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker, i);
    for (auto& th : pool) th.join();
    if (error) std::rethrow_exception(error);
    for (std::vector<TrialSlot>& arena : arenas)
      for (TrialSlot& slot : arena) {
        agg.trials[slot.trial] = std::move(slot.result);
        agg.wall_ms[slot.trial] = slot.wall_ms;
      }
  }

  // Sequential aggregation in trial order: thread-count independent.
  for (const SimResult& r : agg.trials) {
    agg.rounds.add(static_cast<double>(r.rounds));
    agg.activations.add(static_cast<double>(r.activations));
    agg.messages_delivered.add(static_cast<double>(r.messages_delivered));
    agg.payload_bits.add(static_cast<double>(r.payload_bits));
    agg.fingerprint =
        fingerprint_merge_digests(agg.fingerprint, r.fingerprint);
    if (r.completed) ++agg.num_completed;
  }

  if (manifest != nullptr) {
    for (std::size_t t = 0; t < num_trials; ++t) {
      const std::string metrics_snapshot =
          manifest->metrics_json_snapshot ? manifest->metrics_json_snapshot(t)
                                          : std::string();
      if (!append_jsonl(manifest->path,
                        manifest_record(manifest->info, t,
                                        trial_seed(seed, t), agg.trials[t],
                                        agg.wall_ms[t], metrics_snapshot)))
        throw std::runtime_error("run_trials: cannot write manifest " +
                                 manifest->path);
    }
  }
  return agg;
}

}  // namespace latgossip
