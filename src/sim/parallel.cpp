#include "sim/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "obs/fingerprint.h"
#include "sim/pool.h"

namespace latgossip {

std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t trial) noexcept {
  // Decorrelate the batch seed from the trial index with one golden-ratio
  // multiply, then finalize with a SplitMix64 step. The +1 keeps trial 0
  // from passing the seed through unmixed.
  std::uint64_t state = seed ^ ((trial + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

namespace detail {
std::size_t read_default_concurrency() noexcept {
  if (const char* env = std::getenv("LATGOSSIP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace detail

std::size_t default_concurrency() noexcept {
  static const std::size_t cached = detail::read_default_concurrency();
  return cached;
}

std::size_t resolve_threads(std::size_t threads) noexcept {
  // A batch dispatched from inside a pool worker must not wait on the
  // pool that is running it: degrade nested batches to sequential.
  if (TrialPool::on_worker_thread()) return 1;
  return threads == 0 ? default_concurrency() : threads;
}

namespace {

/// Run trial `t`: time it, hand it the given workspace (under a depth
/// scope so nested batches see their own workspaces), stamp the
/// workspace's trial counter.
std::pair<SimResult, double> run_one_trial(const TrialWsFn& make_trial,
                                           std::uint64_t seed, std::size_t t,
                                           TrialWorkspace& ws) {
  const auto start = std::chrono::steady_clock::now();
  SimResult result;
  {
    const detail::TrialDepthScope depth_scope;
    result = make_trial(t, Rng(trial_seed(seed, t)), ws);
  }
  const auto stop = std::chrono::steady_clock::now();
  ws.note_trial();
  return {std::move(result),
          std::chrono::duration<double, std::milli>(stop - start).count()};
}

}  // namespace

TrialAggregate run_trials(std::size_t num_trials, std::size_t threads,
                          std::uint64_t seed, const TrialWsFn& make_trial,
                          const ManifestSpec* manifest) {
  TrialAggregate agg;
  agg.trials.resize(num_trials);
  agg.wall_ms.resize(num_trials, 0.0);
  if (num_trials == 0) return agg;

  threads = std::min(resolve_threads(threads), num_trials);
  if (threads <= 1) {
    // Sequential batches run inline on the caller, against the caller's
    // own persistent workspace — no pool involvement, so nested batches
    // on pool workers recycle the worker's state just like top-level
    // sequential runs on the main thread.
    for (std::size_t t = 0; t < num_trials; ++t) {
      auto [result, wall_ms] =
          run_one_trial(make_trial, seed, t, trial_workspace());
      agg.trials[t] = std::move(result);
      agg.wall_ms[t] = wall_ms;
    }
  } else {
    // Parallel batches run on the shared persistent pool (sim/pool.h):
    // no thread spawn/join per call, and each worker's thread-local
    // workspace survives into the next batch. Workers append into
    // per-worker arenas instead of writing the shared pre-sized
    // `trials`/`wall_ms` vectors directly: adjacent SimResult/double
    // slots claimed by different workers share cache lines, and the
    // resulting false sharing throttles scaling exactly when trials are
    // short. Results are placed into their trial-order slots after the
    // batch drains, so aggregation stays bit-identical for any thread
    // count (and any work-stealing schedule).
    struct TrialSlot {
      std::size_t trial;
      SimResult result;
      double wall_ms;
    };
    std::vector<std::vector<TrialSlot>> arenas(threads);
    for (auto& arena : arenas) arena.reserve(num_trials / threads + 1);
    TrialPool::global().run(
        num_trials, threads, [&](std::size_t t, std::size_t w) {
          auto [result, wall_ms] =
              run_one_trial(make_trial, seed, t, trial_workspace());
          arenas[w].push_back(TrialSlot{t, std::move(result), wall_ms});
        });
    for (std::vector<TrialSlot>& arena : arenas)
      for (TrialSlot& slot : arena) {
        agg.trials[slot.trial] = std::move(slot.result);
        agg.wall_ms[slot.trial] = slot.wall_ms;
      }
  }

  // Sequential aggregation in trial order: thread-count independent.
  for (const SimResult& r : agg.trials) {
    agg.rounds.add(static_cast<double>(r.rounds));
    agg.activations.add(static_cast<double>(r.activations));
    agg.messages_delivered.add(static_cast<double>(r.messages_delivered));
    agg.payload_bits.add(static_cast<double>(r.payload_bits));
    agg.fingerprint =
        fingerprint_merge_digests(agg.fingerprint, r.fingerprint);
    if (r.completed) ++agg.num_completed;
  }

  if (manifest != nullptr) {
    // Stamp what the batch actually ran on (post-override, post-cap):
    // the caller's RunInfo only knows what was *requested*.
    RunInfo info = manifest->info;
    info.threads_effective = threads;
    if (const char* env = std::getenv("LATGOSSIP_THREADS"))
      info.threads_env = env;
    for (std::size_t t = 0; t < num_trials; ++t) {
      const std::string metrics_snapshot =
          manifest->metrics_json_snapshot ? manifest->metrics_json_snapshot(t)
                                          : std::string();
      if (!append_jsonl(manifest->path,
                        manifest_record(info, t,
                                        trial_seed(seed, t), agg.trials[t],
                                        agg.wall_ms[t], metrics_snapshot)))
        throw std::runtime_error("run_trials: cannot write manifest " +
                                 manifest->path);
    }
  }
  return agg;
}

TrialAggregate run_trials(std::size_t num_trials, std::size_t threads,
                          std::uint64_t seed, const TrialFn& make_trial,
                          const ManifestSpec* manifest) {
  return run_trials(
      num_trials, threads, seed,
      TrialWsFn([&make_trial](std::size_t t, Rng rng, TrialWorkspace&) {
        return make_trial(t, std::move(rng));
      }),
      manifest);
}

}  // namespace latgossip
