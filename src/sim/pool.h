#pragma once
// Persistent work-stealing thread pool for Monte-Carlo trial batches.
//
// The previous run_trials spawned fresh std::threads per call and fed
// them from a single shared fetch_add counter. Both hurt exactly when
// trials are short: thread spawn/join is tens of microseconds per
// worker per call, and one-at-a-time claims serialize every worker on
// the counter's cache line. The TrialPool replaces them with
//
//  * persistent workers, started lazily on first parallel batch and
//    reused by every later run_trials() call (their thread-local
//    TrialWorkspaces — sim/workspace.h — survive with them, which is
//    what makes cross-call engine reuse possible);
//  * per-worker deques of task indices in the Chase-Lev spirit: each
//    worker starts with a contiguous slice of [0, num_tasks), claims a
//    chunk of max(1, remaining/4) indices at a time from its own end,
//    and when empty steals the upper half of a victim's remaining
//    range. Each deque is one cache-line-aligned packed {lo, hi}
//    atomic, so owner claims and thief steals are single CAS
//    operations and never touch another worker's line in steady state.
//
// Determinism: a task's index alone decides its RNG seed and its slot
// in the result array (sim/parallel.h), so claiming order — chunked,
// stolen, or otherwise — cannot affect results. The pool only decides
// *where* a task runs, never *what* it computes.
//
// Oversubscription: dispatching from inside a pool worker (a trial
// whose body calls run_trials) would deadlock-or-thrash; on_worker_
// thread() lets resolve_threads() degrade nested batches to sequential
// execution on the worker itself. The global pool grows on demand to
// the largest parallelism any caller requested, but run_trials only
// asks for min(threads, num_trials) workers.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latgossip {

class TrialPool {
 public:
  /// A pool with exactly `workers` persistent worker threads (at least
  /// one). Caller-owned pools are for tests and embedders that want a
  /// fixed worker count regardless of hardware; library code shares
  /// global().
  explicit TrialPool(std::size_t workers);

  /// Clean shutdown: signals every worker, joins them all. Must not be
  /// called while a run() is in flight.
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Worker threads currently alive.
  std::size_t workers() const;

  /// Execute tasks 0..num_tasks-1 on up to `parallelism` pool workers
  /// (the pool grows on demand; the calling thread blocks but does not
  /// execute tasks). `fn(task, worker)` runs on a worker thread;
  /// `worker` is that worker's stable index in [0, parallelism) —
  /// per-worker result arenas key off it. Blocks until every task
  /// completed or one threw; the first exception is rethrown here after
  /// all workers have stopped. Tasks claimed after a failure are
  /// skipped. Concurrent run() calls on one pool serialize.
  void run(std::size_t num_tasks, std::size_t parallelism,
           const std::function<void(std::size_t task, std::size_t worker)>& fn);

  /// The process-wide pool shared by run_trials(). Started lazily on
  /// the first parallel batch; destroyed at process exit.
  static TrialPool& global();

  /// True on a TrialPool worker thread (any pool). resolve_threads()
  /// returns 1 here so nested run_trials calls degrade to sequential
  /// instead of oversubscribing the pool.
  static bool on_worker_thread() noexcept;

 private:
  /// One worker's claimable range of task indices, packed {lo:32, hi:32}
  /// into a single atomic so owner claims (lo += chunk) and steals
  /// (hi -= half) are each one CAS. Padded to a cache line: in steady
  /// state a worker's claims touch no other worker's deque.
  struct alignas(64) Deque {
    std::atomic<std::uint64_t> range{0};
  };

  /// One dispatched batch. Workers read everything but `error` through
  /// the job pointer published under mutex_.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::vector<Deque> deques;  ///< one per participating worker
    std::size_t participants = 0;
    std::atomic<std::size_t> unfinished{0};  ///< tasks not yet run/skipped
    std::atomic<bool> abort{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_main(std::size_t index);
  void work_on(Job& job, std::size_t worker);
  void spawn_locked(std::size_t target_workers);

  static std::uint64_t pack(std::uint64_t lo, std::uint64_t hi) {
    return (lo << 32) | hi;
  }
  static std::uint64_t lo_of(std::uint64_t p) { return p >> 32; }
  static std::uint64_t hi_of(std::uint64_t p) { return p & 0xffffffffu; }

  mutable std::mutex mutex_;
  std::condition_variable wake_;      ///< workers: new job or shutdown
  std::condition_variable finished_;  ///< caller: job drained
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;          ///< current job, guarded by mutex_
  std::uint64_t generation_ = 0;  ///< bumped per dispatched job
  std::size_t busy_ = 0;        ///< workers still inside work_on
  bool stop_ = false;
};

}  // namespace latgossip
