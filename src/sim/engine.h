#pragma once
// Round-driven simulator for the paper's communication model (Section 1):
//
//  * time proceeds in synchronous rounds;
//  * in each round every node may initiate one bidirectional exchange
//    with one chosen neighbor;
//  * an exchange over an edge of latency ℓ completes ℓ rounds later, at
//    which point each endpoint receives the other's payload as of the
//    initiation round (see DESIGN.md "payload snapshot semantics");
//  * communication is non-blocking: a node may initiate a new exchange
//    every round while earlier ones are still in flight.
//
// Model variations discussed by the paper are supported as options:
//  * blocking communication (Appendix E: the T(k) algorithm "works even
//    when nodes ... wait till the acknowledgement of the previous
//    message") — at most one outstanding self-initiated exchange;
//  * bounded in-degree (Conclusion, citing Daum et al.): a cap on how
//    many incoming initiations a node accepts per round;
//  * node crashes and lossy links (Conclusion: "push-pull is relatively
//    robust to failures, while our other approaches are not") — see
//    sim/faults.h;
//  * latency jitter (footnote 1: "due to fluctuations in network
//    quality ... a node cannot necessarily predict the latency").
//
// The engine is generic over a Protocol type (duck-typed, checked by the
// GossipProtocol concept below) so payloads stay strongly typed and
// allocation-free where possible.
//
// Hot-path design (see DESIGN.md "Engine internals & performance"):
//  * deliveries live in a calendar queue — a power-of-two ring of
//    buckets covering the latency horizon; buckets are cleared but
//    never deallocated between rounds, so steady state allocates
//    nothing;
//  * the four std::function hooks are hoisted out of the per-event loop
//    by a compile-time policy: run_gossip() dispatches to a NoHooks
//    instantiation when no hook is installed and to the dynamic path
//    otherwise, so hook-free runs pay zero test-and-branch per event;
//  * protocols that already know which half-edge they picked can return
//    a Contact{node, edge} and skip the per-activation find_edge() hash
//    lookup; the plain NodeId return stays supported;
//  * payloads are obtained through the PayloadTraits hook below:
//    rumor-set protocols capture copy-on-write snapshot handles
//    (util/snapshot.h) so scheduling an exchange is allocation-free in
//    steady state, while bool/struct payloads keep the plain by-value
//    path (DESIGN.md §5g).

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "obs/recorder.h"
#include "sim/dynamics_spec.h"
#include "sim/metrics.h"
#include "sim/workspace.h"

namespace latgossip {

/// What a protocol is allowed to see of the network. In the
/// unknown-latency model (Sections 3 and 4) a protocol can enumerate its
/// neighbors but must learn latencies by timing exchanges; in the
/// known-latency model (Section 5) `latency()` is available.
class NetworkView {
 public:
  NetworkView(const WeightedGraph& g, bool latencies_known)
      : graph_(&g), latencies_known_(latencies_known) {}

  std::size_t num_nodes() const { return graph_->num_nodes(); }
  std::size_t degree(NodeId u) const { return graph_->degree(u); }
  std::span<const HalfEdge> neighbors(NodeId u) const {
    return graph_->neighbors(u);
  }
  bool latencies_known() const { return latencies_known_; }

  /// Latency of an edge; only callable in the known-latency model.
  Latency latency(EdgeId e) const {
    if (!latencies_known_)
      throw std::logic_error(
          "protocol queried a latency in the unknown-latency model");
    return graph_->latency(e);
  }

  const WeightedGraph& graph() const { return *graph_; }

 private:
  const WeightedGraph* graph_;
  bool latencies_known_;
};

/// A contact choice that names the connecting edge as well as the peer.
/// Protocols that pick a neighbor straight out of neighbors(u) already
/// hold the HalfEdge, so returning both lets the engine skip the
/// find_edge() hash lookup on every activation.
struct Contact {
  NodeId node = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

namespace detail {

template <typename P>
concept SelectsByContact = requires(P p, NodeId u, Round r) {
  { p.select_contact(u, r) } -> std::convertible_to<std::optional<Contact>>;
};

template <typename P>
concept SelectsByNodeId = requires(P p, NodeId u, Round r) {
  { p.select_contact(u, r) } -> std::convertible_to<std::optional<NodeId>>;
};

}  // namespace detail

/// Requirements on a protocol driven by run_gossip():
///  - Payload: the information carried by one direction of an exchange.
///  - select_contact(u, r): the neighbor u initiates with in round r —
///    either a NodeId (the engine resolves the edge via find_edge) or a
///    Contact{node, edge} (no hash lookup; the engine validates that the
///    edge really joins u and node) — or nullopt to stay silent.
///  - capture_payload(u, r): snapshot of u's transmitted state.
///  - deliver(u, peer, payload, edge, start, now): u receives peer's
///    snapshot from the exchange initiated at `start`, completing `now`.
///  - done(r): global termination predicate, checked after deliveries.
///
/// Optionally a protocol may expose
///    static std::size_t payload_bits(const Payload&)
/// for message-size accounting (Conclusion: push-pull works with small
/// messages, the spanner algorithm does not); without it every payload
/// counts as one bit.
template <typename P>
concept GossipProtocol =
    requires(P p, const P cp, NodeId u, Round r, typename P::Payload pay,
             EdgeId e) {
      typename P::Payload;
      { p.capture_payload(u, r) } -> std::same_as<typename P::Payload>;
      { p.deliver(u, u, std::move(pay), e, r, r) };
      { cp.done(r) } -> std::convertible_to<bool>;
    } &&
    (detail::SelectsByContact<P> || detail::SelectsByNodeId<P>);

/// Payload-traits hook: how a driver obtains payload snapshots from a
/// protocol. The Delivery records below hold `P::Payload` by value, so
/// protocols whose Payload is a cheap shared handle (util/snapshot.h:
/// copy = refcount bump) schedule and deliver without touching the
/// heap, while `bool`/struct payloads keep today's by-value path with
/// zero overhead — the hook costs nothing when unspecialized.
///
/// capture() is the production path (run_gossip). capture_private() is
/// the reference path (run_gossip_oracle): a protocol whose
/// capture_payload() returns shared copy-on-write snapshots may expose
///     Payload capture_payload_copy(NodeId u, Round r)
/// returning an always-fresh private deep copy; the oracle then stays
/// on naive full copies, so every engine-vs-oracle differential case
/// (src/check/) doubles as a proof that snapshot sharing is
/// observationally equivalent to copy-at-capture. Protocols without
/// the extra method are captured identically on both sides.
template <typename P>
struct PayloadTraits {
  static typename P::Payload capture(P& proto, NodeId u, Round r) {
    return proto.capture_payload(u, r);
  }
  static typename P::Payload capture_private(P& proto, NodeId u, Round r) {
    if constexpr (requires {
                    {
                      proto.capture_payload_copy(u, r)
                    } -> std::same_as<typename P::Payload>;
                  }) {
      return proto.capture_payload_copy(u, r);
    } else {
      return proto.capture_payload(u, r);
    }
  }
};

namespace detail {

/// Payloads that expose prefetch() (SnapshotRef: warm the snapshot
/// block's cache lines) get prefetched one delivery ahead in the due
/// loop; for everything else this compiles to nothing. Protocols may
/// additionally expose prefetch_deliver(NodeId) to warm the receiver's
/// per-node state (the union destination) the same way.
template <typename P>
inline void prefetch_payload(const typename P::Payload& pay) {
  if constexpr (requires { pay.prefetch(); }) pay.prefetch();
}

template <typename P>
inline void prefetch_receiver(const P& proto, NodeId to) {
  if constexpr (requires { proto.prefetch_deliver(to); })
    proto.prefetch_deliver(to);
}

template <typename P>
std::size_t payload_bits_of(const typename P::Payload& pay) {
  if constexpr (requires {
                  { P::payload_bits(pay) } -> std::convertible_to<std::size_t>;
                }) {
    return P::payload_bits(pay);
  } else {
    return 1;
  }
}

}  // namespace detail

/// Engine-side interface of a dynamic scenario (sim/dynamics_spec.h
/// documents the semantics; sim/dynamics.h provides the concrete
/// DynamicPlan). The engine consults it only on the hooked path:
///  - resets_at(r) runs at the top of round r, BEFORE deliveries:
///    each listed node's protocol state is re-initialised (rejoin with
///    reset) via detail::reset_protocol_node, in the returned
///    (ascending id) order;
///  - absent(u, r) removes u from the network for round r: u initiates
///    nothing and any delivery touching u is dropped like a crash;
///  - adjust_latency runs after jitter, before the >= 1 clamp — drift
///    and the adversarial frontier slowdown compose here;
///  - note_delivery(to, r) reports every successful delivery so the
///    adversary can track the touched set.
/// Like every other observer, the hook's owner must outlive the run.
class DynamicsHook {
 public:
  virtual ~DynamicsHook() = default;
  /// The declarative spec this hook implements; the oracle reads only
  /// this and re-derives every schedule with independent code.
  virtual const DynamicSpec& spec() const noexcept = 0;
  virtual bool absent(NodeId u, Round r) const noexcept = 0;
  virtual Latency adjust_latency(NodeId u, NodeId peer, EdgeId e, Latency lat,
                                 Round r) = 0;
  virtual void note_delivery(NodeId to, Round r) = 0;
  virtual std::span<const NodeId> resets_at(Round r) const = 0;
};

/// Observer lifetime contract: every hook below (and the recorder
/// pointer) references state owned by its installer — a SimTrace, a
/// FaultPlan, an EventRecorder, or a capturing lambda. The owner must
/// outlive every run_gossip() call made with these options. If an
/// observer dies first, call reset_observers() before reusing the
/// options object; SimTrace asserts (debug builds) when it is
/// re-attached without being cleared, which catches the most common
/// reuse-after-move footgun.
struct SimOptions {
  Round max_rounds = 1'000'000;
  /// Stop (as incomplete) once no exchange is in flight and no node
  /// selects a contact. Protocols with a natural quiescent end (RR
  /// broadcast, probes) rely on this; superround protocols (DTG) must
  /// disable it.
  bool stop_when_idle = true;
  /// Blocking communication: a node may not initiate while one of its
  /// own initiations is still outstanding (Appendix E's stricter model).
  bool blocking = false;
  /// Cap on accepted incoming initiations per node per round; excess
  /// exchanges fail entirely (neither side receives anything). 0 = off.
  std::size_t max_incoming_per_round = 0;
  /// Observer invoked at every edge activation (initiator, responder,
  /// edge, round); the guessing-game reduction (Lemma 3) listens here.
  std::function<void(NodeId, NodeId, EdgeId, Round)> on_activation;
  /// Fault hooks (see sim/faults.h for a convenient builder):
  /// crashed nodes neither initiate nor receive from their crash round.
  std::function<bool(NodeId, Round)> is_crashed;
  /// Per-delivery loss: drop the payload traveling to `to` from `from`.
  std::function<bool(NodeId to, NodeId from, EdgeId, Round start, Round now)>
      drop_delivery;
  /// Per-exchange latency override (jitter). Receives the edge and its
  /// nominal latency; the result is clamped to >= 1.
  std::function<Latency(EdgeId, Latency)> latency_jitter;
  /// Structured event recorder (obs/recorder.h): activations,
  /// deliveries, and drops are appended through this raw pointer — no
  /// std::function hop. Not owned; must outlive the run. One recorder
  /// per concurrent trial (the recorder is not thread-safe).
  EventRecorder* recorder = nullptr;
  /// Reusable per-thread scratch (sim/workspace.h). When set, the engine
  /// keeps its calendar-queue state in a workspace slot instead of run-
  /// local vectors, so back-to-back runs on similar graphs allocate
  /// nothing (DESIGN.md §5h). Not owned; never alters results — every
  /// reused structure is reset to its fresh-run state before use, and
  /// pending payloads are released before run_gossip returns. run_trials
  /// hands each trial its worker's workspace; direct callers may pass
  /// trial_workspace() themselves.
  TrialWorkspace* workspace = nullptr;
  /// Dynamic scenario (churn / latency drift / adversarial schedules);
  /// see DynamicsHook above and sim/dynamics.h. Not owned; must outlive
  /// the run. DynamicPlan::apply() installs it.
  DynamicsHook* dynamics = nullptr;

  /// True iff any dynamic hook (or the recorder) is installed;
  /// hook-free runs take the compile-time NoHooks fast path through the
  /// event loop.
  bool any_hooks() const {
    return static_cast<bool>(on_activation) || static_cast<bool>(is_crashed) ||
           static_cast<bool>(drop_delivery) ||
           static_cast<bool>(latency_jitter) || recorder != nullptr ||
           dynamics != nullptr;
  }

  /// Detach every observer: clears all four hooks, the recorder
  /// pointer, and the dynamics hook. Call when an installed observer's
  /// owner may die before the next run_gossip() with this options
  /// object.
  void reset_observers() {
    on_activation = nullptr;
    is_crashed = nullptr;
    drop_delivery = nullptr;
    latency_jitter = nullptr;
    recorder = nullptr;
    dynamics = nullptr;
  }
};

namespace detail {

/// One scheduled payload leg, parameterized on the protocol's payload
/// type so EngineState below can persist buckets across runs.
template <typename PayloadT>
struct EngineDelivery {
  NodeId to;
  NodeId from;
  EdgeId edge;
  Round start;
  bool to_initiator;  ///< true for the response leg (unblocks `to`)
  PayloadT payload;
};

/// The engine's per-run storage, extracted so a TrialWorkspace can keep
/// it alive between runs: the calendar queue (power-of-two ring of
/// delivery buckets) plus the blocking / bounded-in-degree bookkeeping
/// vectors. prepare() restores the exact fresh-run state while keeping
/// every allocation whose capacity still fits — in the trial-sweep
/// steady state (same graph shape run after run) it allocates nothing.
/// One state per payload type per workspace; protocols sharing a payload
/// type share the state, which is safe because runs on one workspace are
/// sequential (in_use guards the one exception: a run nested inside
/// another run's hook falls back to run-local state).
template <typename PayloadT>
class EngineState {
 public:
  using Delivery = EngineDelivery<PayloadT>;

  std::vector<std::vector<Delivery>> slots;
  std::vector<Round> slot_due;
  std::size_t capacity = 0;
  std::size_t mask = 0;
  std::vector<std::size_t> outstanding;    ///< blocking model
  std::vector<Round> incoming_stamp;       ///< bounded in-degree
  std::vector<std::size_t> incoming_count;
  bool in_use = false;

  /// Reset to fresh-run state for a latency horizon and node count.
  /// Ring capacity and bucket storage are kept when large enough;
  /// contents never survive (buckets are cleared here and on run exit).
  void prepare(std::size_t horizon, std::size_t n, bool blocking,
               bool bounded_indegree) {
    std::size_t want = 1;
    while (want < horizon) want <<= 1;
    if (want > capacity) {
      slots.resize(want);
      slot_due.resize(want);
      capacity = want;
      mask = want - 1;
    }
    std::fill(slot_due.begin(), slot_due.end(), Round{-1});
    // Pre-size every bucket to the dense steady state (each round
    // schedules at most 2n legs, and doubling growth would land a busy
    // bucket at ~2n anyway); reused buckets already hold their storage
    // and skip the reserve. Reserved-but-untouched pages cost nothing
    // physical; the cap keeps the virtual footprint polite at large n.
    const std::size_t bucket_hint =
        std::min<std::size_t>(2 * n, std::size_t{1} << 16);
    for (auto& slot : slots) {
      slot.clear();
      if (slot.capacity() < bucket_hint) slot.reserve(bucket_hint);
    }
    if (blocking)
      outstanding.assign(n, 0);
    else
      outstanding.clear();
    if (bounded_indegree) {
      incoming_stamp.assign(n, -1);
      incoming_count.assign(n, 0);
    } else {
      incoming_stamp.clear();
      incoming_count.clear();
    }
  }

  /// Re-bucket into a larger ring (latency jitter stretched a latency
  /// past the nominal horizon).
  void grow(std::size_t need) {
    std::size_t new_capacity = std::max<std::size_t>(capacity, 1);
    while (new_capacity < need) new_capacity <<= 1;
    std::vector<std::vector<Delivery>> new_slots(new_capacity);
    std::vector<Round> new_due(new_capacity, -1);
    const std::size_t new_mask = new_capacity - 1;
    for (std::size_t i = 0; i < capacity; ++i) {
      if (slots[i].empty()) continue;
      const auto j = static_cast<std::size_t>(slot_due[i]) & new_mask;
      new_slots[j] = std::move(slots[i]);
      new_due[j] = slot_due[i];
    }
    slots = std::move(new_slots);
    slot_due = std::move(new_due);
    capacity = new_capacity;
    mask = new_mask;
  }

  /// Destroy every pending delivery (payloads included). Runs on every
  /// run_gossip exit path — max_rounds, idle, exception — so payload
  /// handles (SnapshotRefs into a protocol's arena) never outlive the
  /// protocol that owns their storage.
  void release_pending() noexcept {
    for (auto& slot : slots) slot.clear();
  }
};

/// Re-initialise node u's protocol state at round r (churn rejoin with
/// reset). Protocols opt in by exposing reset_node(NodeId, Round);
/// protocols without it retain their state across a rejoin — both the
/// engine and the oracle route resets through this one helper, so the
/// opt-in is consistent on both sides of the differential check.
template <typename P>
inline void reset_protocol_node(P& proto, NodeId u, Round r) {
  if constexpr (requires { proto.reset_node(u, r); }) proto.reset_node(u, r);
}

/// Engine core, instantiated twice per protocol: kHooked=false elides
/// every std::function test from the loops; kHooked=true is the fully
/// dynamic path. Both produce bit-identical results for the same seed
/// when no hook alters behavior (covered by engine_test).
template <bool kHooked, typename P>
SimResult run_gossip_impl(const WeightedGraph& g, P& proto,
                          const SimOptions& opts) {
  using Delivery = EngineDelivery<typename P::Payload>;
  using State = EngineState<typename P::Payload>;

  const std::size_t n = g.num_nodes();
  // Hoisted: the recorder pointer is read once, not through `opts` on
  // every event (it cannot change mid-run; see the lifetime contract).
  [[maybe_unused]] EventRecorder* const recorder =
      kHooked ? opts.recorder : nullptr;
  [[maybe_unused]] DynamicsHook* const dynamics =
      kHooked ? opts.dynamics : nullptr;
  SimResult result;
  if (n == 0) {
    result.completed = proto.done(0);
    return result;
  }

  // Calendar queue: deliveries due at absolute round d live in slot
  // d & mask. Capacity is a power of two covering the latency horizon,
  // so within the pending window (now, now + capacity] every due round
  // owns a distinct slot. Buckets are cleared after draining but keep
  // their storage — steady state schedules without allocating. Jitter
  // may stretch a latency past the nominal horizon; grow() re-buckets.
  //
  // The queue lives in the caller's TrialWorkspace when one is supplied
  // (so the next run on this thread reuses the buckets) and falls back
  // to run-local state otherwise — or when the workspace slot is
  // already driving an enclosing run (a run_gossip nested inside a
  // hook), which keeps reuse transparent even for re-entrant callers.
  State local_state;
  State* state = &local_state;
  if (opts.workspace != nullptr) {
    State& shared = opts.workspace->slot<State>();
    if (!shared.in_use) state = &shared;
  }
  State& st = *state;
  const auto horizon =
      static_cast<std::size_t>(std::max<Latency>(g.max_latency(), 1)) + 1;
  st.prepare(horizon, n, opts.blocking, opts.max_incoming_per_round > 0);
  st.in_use = true;
  struct StateGuard {
    State& st;
    ~StateGuard() {
      st.release_pending();
      st.in_use = false;
    }
  } state_guard{st};

  auto& slots = st.slots;
  auto& slot_due = st.slot_due;
  std::size_t mask = st.mask;
  [[maybe_unused]] std::size_t capacity = st.capacity;
  std::size_t inflight = 0;

  auto grow = [&](std::size_t need) {
    st.grow(need);
    mask = st.mask;
    capacity = st.capacity;
  };

  auto schedule = [&](Round due, Delivery&& d) {
    const auto idx = static_cast<std::size_t>(due) & mask;
    slot_due[idx] = due;
    slots[idx].push_back(std::move(d));
    ++inflight;
  };

  // Blocking-model bookkeeping: outstanding self-initiated exchanges.
  auto& outstanding = st.outstanding;
  // Bounded in-degree bookkeeping (stamp trick: O(1) per-round reset).
  auto& incoming_stamp = st.incoming_stamp;
  auto& incoming_count = st.incoming_count;

  for (Round r = 0; r <= opts.max_rounds; ++r) {
    // 0. Churn rejoin-with-reset: re-initialise returning nodes before
    // any delivery of this round can reach them.
    if constexpr (kHooked) {
      if (dynamics) {
        for (const NodeId u : dynamics->resets_at(r))
          detail::reset_protocol_node(proto, u, r);
      }
    }

    // 1. Deliveries due now. Within the pending window, any entry in
    // this slot is due exactly at r (see the capacity invariant above).
    auto& due = slots[static_cast<std::size_t>(r) & mask];
    if (!due.empty()) {
      for (std::size_t i = 0; i < due.size(); ++i) {
        if (i + 1 < due.size()) {
          detail::prefetch_payload<P>(due[i + 1].payload);
          detail::prefetch_receiver(proto, due[i + 1].to);
        }
        auto& d = due[i];
        if (opts.blocking && d.to_initiator) {
          // The response leg completes the initiator's round trip even
          // if its content is lost.
          if (outstanding[d.to] > 0) --outstanding[d.to];
        }
        if constexpr (kHooked) {
          // Churn absence folds into the crash flag BEFORE the loss
          // hook is consulted, so drop_delivery's RNG draw count stays
          // identical between the engine and the oracle.
          const bool crashed =
              (opts.is_crashed && opts.is_crashed(d.to, r)) ||
              (opts.is_crashed && opts.is_crashed(d.from, r)) ||
              (dynamics &&
               (dynamics->absent(d.to, r) || dynamics->absent(d.from, r)));
          const bool dropped =
              crashed ||
              (opts.drop_delivery &&
               opts.drop_delivery(d.to, d.from, d.edge, d.start, r));
          if (dropped) {
            ++result.messages_dropped;
            if (recorder)
              recorder->record_drop(d.to, d.from, d.edge, d.start, r, crashed);
            continue;
          }
        }
        proto.deliver(d.to, d.from, std::move(d.payload), d.edge, d.start, r);
        ++result.messages_delivered;
        if constexpr (kHooked) {
          if (recorder)
            recorder->record_delivery(d.to, d.from, d.edge, d.start, r);
          if (dynamics) dynamics->note_delivery(d.to, r);
        }
      }
      inflight -= due.size();
      due.clear();  // storage retained for bucket reuse
    }

    // 2. Termination.
    if (proto.done(r)) {
      result.completed = true;
      result.rounds = r;
      return result;
    }
    if (r == opts.max_rounds) break;

    // 3. Contact selection.
    bool any_selected = false;
    for (NodeId u = 0; u < n; ++u) {
      if constexpr (kHooked) {
        if (opts.is_crashed && opts.is_crashed(u, r)) continue;
        if (dynamics && dynamics->absent(u, r)) continue;
      }
      if (opts.blocking && outstanding[u] > 0) continue;

      NodeId peer;
      EdgeId edge;
      Latency lat;
      if constexpr (detail::SelectsByContact<P>) {
        const std::optional<Contact> c = proto.select_contact(u, r);
        if (!c) continue;
        peer = c->node;
        edge = c->edge;
        const Edge& rec = g.edge(edge);  // bounds-checked
        if (!((rec.u == u && rec.v == peer) ||
              (rec.v == u && rec.u == peer)))
          throw std::logic_error(
              "protocol selected a contact over a mismatched edge");
        lat = rec.latency;
      } else {
        const std::optional<NodeId> target = proto.select_contact(u, r);
        if (!target) continue;
        const auto e = g.find_edge(u, *target);
        if (!e)
          throw std::logic_error("protocol selected a non-neighbor contact");
        peer = *target;
        edge = *e;
        lat = g.latency(*e);
      }
      any_selected = true;
      ++result.activations;
      if constexpr (kHooked) {
        if (opts.on_activation) opts.on_activation(u, peer, edge, r);
        if (recorder) recorder->record_activation(u, peer, edge, r);
      }

      // Bounded in-degree: the responder may reject the initiation.
      if (opts.max_incoming_per_round > 0) {
        if (incoming_stamp[peer] != r) {
          incoming_stamp[peer] = r;
          incoming_count[peer] = 0;
        }
        if (++incoming_count[peer] > opts.max_incoming_per_round) {
          ++result.exchanges_rejected;
          continue;
        }
      }

      if constexpr (kHooked) {
        if (opts.latency_jitter) {
          lat = opts.latency_jitter(edge, lat);
          if (lat < 1) lat = 1;
          if (static_cast<std::size_t>(lat) > capacity)
            grow(static_cast<std::size_t>(lat) + 1);
        }
        if (dynamics) {
          lat = dynamics->adjust_latency(u, peer, edge, lat, r);
          if (lat < 1) lat = 1;
          if (static_cast<std::size_t>(lat) > capacity)
            grow(static_cast<std::size_t>(lat) + 1);
        }
      }
#if defined(__GNUC__) || defined(__clang__)
      // Issue the write-allocate for the target bucket's tail while the
      // payload captures below run; the two push_backs then land on a
      // warm line instead of stalling on a read-for-ownership miss.
      {
        const auto& tgt = slots[static_cast<std::size_t>(r + lat) & mask];
        __builtin_prefetch(tgt.data() + tgt.size(), /*rw=*/1, /*locality=*/1);
      }
#endif
      // Initiator's snapshot travels to the responder and vice versa.
      auto push = PayloadTraits<P>::capture(proto, u, r);
      auto pull = PayloadTraits<P>::capture(proto, peer, r);
      result.payload_bits += detail::payload_bits_of<P>(push);
      result.payload_bits += detail::payload_bits_of<P>(pull);
      schedule(r + lat, Delivery{peer, u, edge, r, /*to_initiator=*/false,
                                 std::move(push)});
      schedule(r + lat, Delivery{u, peer, edge, r, /*to_initiator=*/true,
                                 std::move(pull)});
      if (opts.blocking) ++outstanding[u];
      result.max_inflight = std::max(result.max_inflight, inflight);
    }

    if (opts.stop_when_idle && !any_selected && inflight == 0) {
      result.rounds = r;
      result.completed = proto.done(r);
      return result;
    }
  }

  result.rounds = opts.max_rounds;
  result.completed = false;
  return result;
}

}  // namespace detail

/// Drive `proto` over `g` until done(), idle, or max_rounds.
///
/// Per-round order: (1) deliveries scheduled for this round (both
/// endpoints of each completed exchange), (2) done() check, (3) contact
/// selection in node-id order with payload snapshots taken immediately.
///
/// Dispatches to a hook-free fast instantiation when no SimOptions hook
/// is installed; both paths are semantically identical.
template <typename P>
  requires GossipProtocol<P>
SimResult run_gossip(const WeightedGraph& g, P& proto,
                     const SimOptions& opts = {}) {
  return opts.any_hooks() ? detail::run_gossip_impl<true>(g, proto, opts)
                          : detail::run_gossip_impl<false>(g, proto, opts);
}

}  // namespace latgossip
