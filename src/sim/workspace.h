#pragma once
// Per-thread reusable trial scratch.
//
// Every Monte-Carlo sweep in EXPERIMENTS.md runs thousands of
// structurally identical trials, and before this existed each one
// rebuilt its whole engine from scratch: calendar-queue buckets,
// informed-set Bitsets, SnapshotArena slabs, protocol state — roughly
// 1 MB of malloc churn per 512-node trial, most of which glibc
// immediately trimmed back to the kernel so the next trial re-paid the
// page faults too (measured: ~23% of run_trials_16x512 wall time; see
// DESIGN.md §5h). A TrialWorkspace is the fix: one per worker thread,
// surviving across trials and across run_trials() calls, holding every
// heavyweight object a trial wants to recycle.
//
// The workspace is a small type-keyed registry: slot<T>(args...)
// returns a persistent T, constructing it on the first call and
// returning the same object (args ignored) ever after. Users pair it
// with a reset()-for-reuse API on T:
//
//   auto& proto = ws.slot<PushPullBroadcast>(view, source, rng);
//   proto.reset(view, source, rng);   // re-arm; allocation-free when
//                                     // the graph size is unchanged
//
// The engine itself reuses its calendar queue the same way when
// SimOptions::workspace is set (sim/engine.h).
//
// Reset contract (what makes reuse invisible): a trial's observable
// behavior must depend only on its (graph, options, seed) inputs, never
// on what previously ran in the workspace. Capacity — vector/bitset
// allocations, arena slab counts, bucket reservations — MAY carry over;
// values may not. The thread-invariance tests (tests/pool_test.cpp)
// prove this by fingerprint: reused-workspace runs are bit-identical to
// fresh-workspace runs at every thread count.
//
// Threading: a workspace belongs to one thread (TrialPool workers and
// the run_trials caller each use their own; see trial_workspace()
// below). It is not synchronized.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <utility>
#include <vector>

namespace latgossip {

class TrialWorkspace {
 public:
  TrialWorkspace() = default;
  TrialWorkspace(const TrialWorkspace&) = delete;
  TrialWorkspace& operator=(const TrialWorkspace&) = delete;

  /// The workspace's persistent instance of T: constructed from `args`
  /// on the first call, returned as-is (args unused) afterwards. One
  /// slot per type — trials needing two independent instances of the
  /// same T should wrap them in distinct tag types.
  template <typename T, typename... Args>
  T& slot(Args&&... args) {
    const std::type_index key(typeid(T));
    for (const Slot& s : slots_)
      if (s.key == key) return *static_cast<T*>(s.ptr.get());
    slots_.emplace_back(
        Slot{key, ErasedPtr(new T(std::forward<Args>(args)...),
                            [](void* p) { delete static_cast<T*>(p); })});
    return *static_cast<T*>(slots_.back().ptr.get());
  }

  /// True iff slot<T>() has already been constructed here (tests use
  /// this to prove recycling without disturbing the slot).
  template <typename T>
  bool has_slot() const noexcept {
    return find_slot<T>() != nullptr;
  }

  /// The persistent T if already constructed, else nullptr. Unlike
  /// slot<T>(), never constructs — usable with types that have no
  /// default constructor when the caller only wants to inspect.
  template <typename T>
  T* find_slot() const noexcept {
    const std::type_index key(typeid(T));
    for (const Slot& s : slots_)
      if (s.key == key) return static_cast<T*>(s.ptr.get());
    return nullptr;
  }

  /// Distinct slot types constructed so far. Flat across steady-state
  /// trials — growth means something is not being recycled.
  std::size_t num_slots() const noexcept { return slots_.size(); }

  /// Trials executed in this workspace (stamped by run_trials).
  std::uint64_t trials_run() const noexcept { return trials_run_; }
  void note_trial() noexcept { ++trials_run_; }

 private:
  using ErasedPtr = std::unique_ptr<void, void (*)(void*)>;
  struct Slot {
    std::type_index key;
    ErasedPtr ptr;
  };
  std::vector<Slot> slots_;
  std::uint64_t trials_run_ = 0;
};

/// The calling thread's trial workspace at the current nesting depth.
/// Persistent per thread: pool workers and the main thread each keep
/// their workspaces alive across trials and across run_trials() calls,
/// which is what makes steady-state trial execution allocation-free.
/// Nested trial execution (a trial that itself calls run_trials, which
/// degrades to sequential on pool workers) gets a distinct workspace per
/// nesting level, so an outer trial's live protocol state is never
/// clobbered by an inner batch.
TrialWorkspace& trial_workspace();

namespace detail {
/// RAII nesting marker: while alive, trial_workspace() on this thread
/// returns the next-deeper workspace. run_trials holds one around each
/// trial invocation.
class TrialDepthScope {
 public:
  TrialDepthScope() noexcept;
  ~TrialDepthScope() noexcept;
  TrialDepthScope(const TrialDepthScope&) = delete;
  TrialDepthScope& operator=(const TrialDepthScope&) = delete;
};
}  // namespace detail

}  // namespace latgossip
