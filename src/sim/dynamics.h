// DynamicPlan: the engine-side implementation of a DynamicSpec
// (sim/dynamics_spec.h documents the schedule-derivation contracts).
// A sibling of FaultPlan (sim/faults.h): construct from a spec, call
// apply(opts) to install the hook, run, detach() to re-arm.
//
// Implementation strategy (deliberately different from the oracle's
// brute force in sim/oracle.cpp, so the differential sweep compares two
// independent mechanisations of the same contract):
//  * churn intervals are precomputed per node at construction;
//  * per-edge drift factors live in an incremental cache advanced
//    monotonically round by round (runs query rounds in nondecreasing
//    order within a run; apply() rewinds the cache);
//  * the adversary's touched set is a Bitset updated on note_delivery.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/bitset.h"

namespace latgossip {

/// Validate a spec against a node count. Returns an empty string when
/// the spec is usable and a human-readable complaint otherwise.
std::string dynamic_spec_error(const DynamicSpec& spec, std::size_t num_nodes);

/// Parse a `--dynamics=` CLI string: comma-separated key=value pairs
///   drift=STEP  drift-bound=B  churn=PROB  churn-window=W
///   churn-absence=A  churn-mode=retain|reset|mixed  adv=SLOW  seed=S
/// Omitted churn knobs default to window=16, absence=8, mode=reset;
/// drift-bound defaults to 2048. `source` becomes both churn_spare and
/// adv_source. Throws std::invalid_argument on malformed input or when
/// the resulting spec fails dynamic_spec_error().
DynamicSpec parse_dynamics_spec(const std::string& text, std::size_t num_nodes,
                                NodeId source);

/// One-line human summary ("drift=16/2048 churn=0.5 mode=reset ...").
std::string describe_dynamics(const DynamicSpec& spec);

class DynamicPlan final : public DynamicsHook {
 public:
  /// Throws std::invalid_argument when dynamic_spec_error() complains.
  DynamicPlan(std::size_t num_nodes, std::size_t num_edges,
              const DynamicSpec& spec);

  /// Install this plan into `opts` and reset per-run state (the
  /// adversary's touched set and the drift caches). Asserts the plan is
  /// not already applied; detach() re-arms.
  void apply(SimOptions& opts);
  void detach();

  const DynamicSpec& spec() const noexcept override { return spec_; }
  bool absent(NodeId u, Round r) const noexcept override;
  Latency adjust_latency(NodeId u, NodeId peer, EdgeId e, Latency lat,
                         Round r) override;
  void note_delivery(NodeId to, Round r) override;
  std::span<const NodeId> resets_at(Round r) const override;

 private:
  struct Churn {
    Round leave = -1;   ///< first absent round (-1: never leaves)
    Round rejoin = -1;  ///< first round present again
    bool reset = false;
  };
  struct DriftState {
    Round round = 0;
    std::uint64_t factor = 1024;
  };

  std::uint64_t drift_factor(EdgeId e, Round r);

  DynamicSpec spec_;
  std::size_t num_nodes_ = 0;
  std::vector<Churn> churn_;  ///< empty unless churn is active
  /// Rejoin-with-reset events sorted by (round, node), split into
  /// parallel vectors so resets_at() can answer with a contiguous
  /// equal_range span over reset_nodes_.
  std::vector<Round> reset_rounds_;
  std::vector<NodeId> reset_nodes_;
  std::vector<DriftState> drift_;  ///< per edge; empty unless drifting
  Bitset touched_;                 ///< adversary; empty unless active
  bool applied_ = false;
};

}  // namespace latgossip
