#include "sim/dynamics.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace latgossip {

namespace {

// Per-schedule seed salts (mirrored verbatim by the oracle-side
// interpreters in sim/oracle.cpp — the contract lives in
// sim/dynamics_spec.h).
constexpr std::uint64_t kChurnSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kDriftEdgeSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kDriftRoundSalt = 0xbf58476d1ce4e5b9ULL;

constexpr std::uint64_t kFixedOne = 1024;

}  // namespace

std::string dynamic_spec_error(const DynamicSpec& spec,
                               std::size_t num_nodes) {
  if (spec.drift_step >= 1024) return "drift_step must be < 1024";
  if (spec.drift_bound < 1024 || spec.drift_bound > 1024 * 1024)
    return "drift_bound must be in [1024, 1048576]";
  if (spec.churn_prob < 0.0 || spec.churn_prob > 1.0)
    return "churn_prob must be in [0, 1]";
  if (spec.churn_active()) {
    if (spec.churn_window < 1) return "churn_window must be >= 1 when churning";
    if (spec.churn_absence < 1)
      return "churn_absence must be >= 1 when churning";
    if (spec.churn_mode > 2) return "churn_mode must be 0, 1, or 2";
    if (num_nodes > 0 && spec.churn_spare >= num_nodes)
      return "churn_spare is out of range";
    if (num_nodes == 1) return "churn needs at least 2 nodes";
  }
  if (spec.adv_slow < 1024 || spec.adv_slow > 1024 * 1024)
    return "adv_slow must be in [1024, 1048576]";
  if (spec.adv_active() && num_nodes > 0 && spec.adv_source >= num_nodes)
    return "adv_source is out of range";
  if (spec.seed == 0) return "seed must be nonzero";
  return std::string();
}

DynamicPlan::DynamicPlan(std::size_t num_nodes, std::size_t num_edges,
                         const DynamicSpec& spec)
    : spec_(spec), num_nodes_(num_nodes) {
  const std::string err = dynamic_spec_error(spec, num_nodes);
  if (!err.empty()) throw std::invalid_argument("DynamicPlan: " + err);

  if (spec_.churn_active()) {
    churn_.resize(num_nodes);
    std::vector<std::pair<Round, NodeId>> resets;
    for (NodeId u = 0; u < num_nodes; ++u) {
      if (u == spec_.churn_spare) continue;
      Rng rng(spec_.seed ^ (kChurnSalt * (std::uint64_t{u} + 1)));
      const bool leaves = rng.bernoulli(spec_.churn_prob);
      const Round leave =
          1 + static_cast<Round>(
                  rng.uniform(static_cast<std::uint64_t>(spec_.churn_window)));
      const Round absence =
          1 + static_cast<Round>(
                  rng.uniform(static_cast<std::uint64_t>(spec_.churn_absence)));
      const bool reset = spec_.churn_mode == 1 ||
                         (spec_.churn_mode == 2 && rng.bernoulli(0.5));
      if (!leaves) continue;
      churn_[u].leave = leave;
      churn_[u].rejoin = leave + absence;
      churn_[u].reset = reset;
      if (reset) resets.emplace_back(churn_[u].rejoin, u);
    }
    std::sort(resets.begin(), resets.end());
    reset_rounds_.reserve(resets.size());
    reset_nodes_.reserve(resets.size());
    for (const auto& [round, node] : resets) {
      reset_rounds_.push_back(round);
      reset_nodes_.push_back(node);
    }
  }
  if (spec_.drift_active()) drift_.resize(num_edges);
  (void)num_edges;
}

void DynamicPlan::apply(SimOptions& opts) {
  assert(!applied_ && "DynamicPlan applied twice without detach()");
  applied_ = true;
  if (spec_.adv_active()) {
    touched_.reinit(num_nodes_);
    touched_.set(spec_.adv_source);
  }
  if (spec_.drift_active())
    std::fill(drift_.begin(), drift_.end(), DriftState{});
  opts.dynamics = this;
}

void DynamicPlan::detach() { applied_ = false; }

bool DynamicPlan::absent(NodeId u, Round r) const noexcept {
  if (churn_.empty()) return false;
  const Churn& c = churn_[u];
  return c.leave >= 0 && r >= c.leave && r < c.rejoin;
}

std::uint64_t DynamicPlan::drift_factor(EdgeId e, Round r) {
  DriftState& st = drift_[e];
  if (st.round > r) st = DriftState{};  // defensive rewind (never in-run)
  while (st.round < r) {
    ++st.round;
    std::uint64_t h = spec_.seed ^
                      (kDriftEdgeSalt * (std::uint64_t{e} + 1)) ^
                      (static_cast<std::uint64_t>(st.round) * kDriftRoundSalt);
    const bool up = (splitmix64(h) & 1) != 0;
    st.factor = st.factor *
                (up ? kFixedOne + spec_.drift_step
                    : kFixedOne - spec_.drift_step) /
                kFixedOne;
    const std::uint64_t lo = kFixedOne * kFixedOne / spec_.drift_bound;
    st.factor = std::clamp<std::uint64_t>(st.factor, lo, spec_.drift_bound);
  }
  return st.factor;
}

Latency DynamicPlan::adjust_latency(NodeId u, NodeId peer, EdgeId e,
                                    Latency lat, Round r) {
  if (!drift_.empty()) {
    const std::uint64_t f = drift_factor(e, r);
    lat = static_cast<Latency>(static_cast<std::uint64_t>(lat) * f / kFixedOne);
    if (lat < 1) lat = 1;
  }
  if (!touched_.empty() && touched_.test(u) != touched_.test(peer)) {
    lat = static_cast<Latency>(static_cast<std::uint64_t>(lat) *
                               spec_.adv_slow / kFixedOne);
  }
  return lat;
}

void DynamicPlan::note_delivery(NodeId to, Round) {
  if (!touched_.empty()) touched_.set(to);
}

std::span<const NodeId> DynamicPlan::resets_at(Round r) const {
  const auto [lo, hi] =
      std::equal_range(reset_rounds_.begin(), reset_rounds_.end(), r);
  const auto first = static_cast<std::size_t>(lo - reset_rounds_.begin());
  const auto count = static_cast<std::size_t>(hi - lo);
  return {reset_nodes_.data() + first, count};
}

std::string describe_dynamics(const DynamicSpec& spec) {
  std::ostringstream os;
  if (!spec.any()) return "off";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  if (spec.drift_active()) {
    sep();
    os << "drift=" << spec.drift_step << "/" << spec.drift_bound;
  }
  if (spec.churn_active()) {
    sep();
    static const char* kModes[] = {"retain", "reset", "mixed"};
    os << "churn=" << spec.churn_prob << " window=" << spec.churn_window
       << " absence=" << spec.churn_absence << " mode="
       << kModes[spec.churn_mode <= 2 ? spec.churn_mode : 0]
       << " spare=" << spec.churn_spare;
  }
  if (spec.adv_active()) {
    sep();
    os << "adv=" << spec.adv_slow << " adv-source=" << spec.adv_source;
  }
  sep();
  os << "seed=" << spec.seed;
  return os.str();
}

DynamicSpec parse_dynamics_spec(const std::string& text, std::size_t num_nodes,
                                NodeId source) {
  DynamicSpec spec;
  spec.churn_spare = source;
  spec.adv_source = source;
  bool churn_window_set = false, churn_absence_set = false,
       churn_mode_set = false;

  auto bad = [&](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("--dynamics: " + why);
  };
  auto parse_u64 = [&](const std::string& v, const char* key) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || p != v.data() + v.size())
      throw bad(std::string("bad number for ") + key + ": '" + v + "'");
    return out;
  };

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) throw bad("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "drift") {
      spec.drift_step = static_cast<std::uint32_t>(parse_u64(val, "drift"));
    } else if (key == "drift-bound") {
      spec.drift_bound =
          static_cast<std::uint32_t>(parse_u64(val, "drift-bound"));
    } else if (key == "churn") {
      try {
        spec.churn_prob = std::stod(val);
      } catch (const std::exception&) {
        throw bad("bad number for churn: '" + val + "'");
      }
    } else if (key == "churn-window") {
      spec.churn_window = static_cast<Round>(parse_u64(val, "churn-window"));
      churn_window_set = true;
    } else if (key == "churn-absence") {
      spec.churn_absence = static_cast<Round>(parse_u64(val, "churn-absence"));
      churn_absence_set = true;
    } else if (key == "churn-mode") {
      if (val == "retain")
        spec.churn_mode = 0;
      else if (val == "reset")
        spec.churn_mode = 1;
      else if (val == "mixed")
        spec.churn_mode = 2;
      else
        throw bad("churn-mode must be retain|reset|mixed, got '" + val + "'");
      churn_mode_set = true;
    } else if (key == "adv") {
      spec.adv_slow = static_cast<std::uint32_t>(parse_u64(val, "adv"));
    } else if (key == "seed") {
      spec.seed = parse_u64(val, "seed");
    } else {
      throw bad("unknown key '" + key + "'");
    }
  }

  if (spec.churn_active()) {
    if (!churn_window_set) spec.churn_window = 16;
    if (!churn_absence_set) spec.churn_absence = 8;
    if (!churn_mode_set) spec.churn_mode = 1;
  }
  const std::string err = dynamic_spec_error(spec, num_nodes);
  if (!err.empty()) throw bad(err);
  return spec;
}

}  // namespace latgossip
