#pragma once
// Reference oracle: a deliberately naive, independently coded
// implementation of the paper's Section-1 communication model, used to
// differentially check the optimized engine (sim/engine.h).
//
// The oracle drives the same Protocol concept as run_gossip(), honors
// the same SimOptions, and emits the same observable event stream
// (activations / deliveries / drops through SimOptions::recorder), but
// shares NO scheduling or adjacency machinery with the engine:
//
//   engine (run_gossip)              oracle (run_gossip_oracle)
//   -------------------------------  --------------------------------
//   calendar queue of delivery legs  flat in-flight exchange list,
//   bucketed by due round            re-scanned in full every round
//   O(log deg) CSR find_edge /       linear walk of the adjacency
//   Contact edge-record validation   slice for every resolution
//   compile-time NoHooks fast path   every hook tested dynamically on
//   + hoisted recorder pointer       every event, always
//   blocking via outstanding-        blocking via a linear scan of the
//   exchange counters                in-flight list per initiation
//   stamp-trick in-degree counters   per-round counter vector,
//   (O(1) reset)                     reallocated every round
//   shared copy-on-write payload     naive private deep copy per
//   snapshots (PayloadTraits::       capture (PayloadTraits::
//   capture)                         capture_private)
//
// The payload row is load-bearing for the COW snapshot work (DESIGN.md
// §5g): the oracle deliberately stays on full copy-at-capture, so any
// stale-snapshot bug in a protocol's dirty-bit bookkeeping shows up as
// an engine-vs-oracle divergence instead of silently corrupting both
// sides the same way.
//
// If the two implementations ever disagree on a SimResult or an event
// multiset fingerprint for the same protocol + seed, one of them has
// drifted from the model. The check framework (src/check/) generates
// random cases, compares both, and shrinks any divergence to a minimal
// counterexample. See DESIGN.md §5f.
//
// Performance is a non-goal here: the oracle is O(rounds · (n + m +
// in-flight)) per round and is only ever run on small property-test
// instances.

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"

namespace latgossip {

/// True while a ScopedOracleEngine is alive on this thread; composite
/// algorithm runners (EID, T(k), unified, latency discovery) route
/// their internal simulations through the oracle via dispatch_gossip()
/// (sim/dispatch.h) when set.
bool oracle_engine_active() noexcept;

/// RAII guard selecting the reference oracle for every dispatch_gossip()
/// call on this thread. Nests; the optimized engine is restored when the
/// outermost guard dies. Used by the differential checker to run whole
/// composite algorithms (run_eid, run_tk_schedule, run_unified) against
/// the oracle without touching their code.
class ScopedOracleEngine {
 public:
  ScopedOracleEngine() noexcept;
  ~ScopedOracleEngine();
  ScopedOracleEngine(const ScopedOracleEngine&) = delete;
  ScopedOracleEngine& operator=(const ScopedOracleEngine&) = delete;
};

namespace oracle_detail {

/// Deliberate model bugs, injectable ONLY by tests: the shrinker
/// self-test (tests/shrink_test.cpp) plants a latency off-by-one here
/// and asserts the check framework reduces the resulting divergence to
/// a minimal counterexample. Never set outside tests.
struct ModelBug {
  /// Added to every exchange's effective latency (clamped to >= 1).
  Latency latency_bias = 0;
  /// Suppress the second (initiator-bound) delivery leg of every
  /// exchange — turns the bidirectional exchange into a push.
  bool drop_initiator_leg = false;
  /// Ignore edge-latency drift entirely (the oracle pretends every
  /// drift factor is 1024) — used to prove the shrinker reduces a
  /// dynamics divergence to a tiny case that still drifts.
  bool freeze_drift = false;
  /// Extend every churned node's absence by this many rounds.
  Round churn_absence_bias = 0;

  bool any() const noexcept {
    return latency_bias != 0 || drop_initiator_leg || freeze_drift ||
           churn_absence_bias != 0;
  }
};

/// Edge joining u and v found by a linear walk of u's adjacency slice
/// (never find_edge's binary search — independence from the structure
/// under test is the point).
std::optional<EdgeId> scan_for_edge(const WeightedGraph& g, NodeId u,
                                    NodeId v);

/// Does u's adjacency slice contain exactly the half-edge (v, e)?
/// Linear scan, same independence rationale.
bool scan_adjacency_for(const WeightedGraph& g, NodeId u, NodeId v, EdgeId e);

/// Brute-force interpreters of the DynamicSpec schedule contracts
/// (sim/dynamics_spec.h), coded independently of DynamicPlan: the drift
/// factor is recomputed from round 0 on every query (no incremental
/// cache), and churn is re-derived from the per-node RNG on every
/// question (no precomputed intervals). `absence_bias` is the ModelBug
/// knob — always 0 outside tests.
std::uint64_t oracle_drift_factor(const DynamicSpec& spec, EdgeId e, Round r);
bool oracle_node_absent(const DynamicSpec& spec, NodeId u, Round r,
                        Round absence_bias = 0);
bool oracle_node_resets_at(const DynamicSpec& spec, NodeId u, Round r,
                           Round absence_bias = 0);

}  // namespace oracle_detail

/// Reference simulation of `proto` over `g`: same contract, per-round
/// order, and observable behavior as run_gossip() — deliveries due this
/// round (responder leg then initiator leg, in exchange-creation
/// order), done() check, contact selection in node-id order with
/// payload snapshots taken immediately — implemented by brute force.
template <typename P>
  requires GossipProtocol<P>
SimResult run_gossip_oracle(const WeightedGraph& g, P& proto,
                            const SimOptions& opts = {},
                            const oracle_detail::ModelBug& bug = {}) {
  // One record per exchange (the engine keeps two per-leg records in a
  // calendar queue; the oracle deliberately does not).
  struct Exchange {
    NodeId initiator = kInvalidNode;
    NodeId responder = kInvalidNode;
    EdgeId edge = kInvalidEdge;
    Round started = 0;
    Round completes = 0;
    typename P::Payload to_responder;  ///< initiator's snapshot
    typename P::Payload to_initiator;  ///< responder's snapshot
  };

  const std::size_t n = g.num_nodes();
  SimResult result;
  if (n == 0) {
    result.completed = proto.done(0);
    return result;
  }

  std::vector<Exchange> in_flight;

  // Dynamic scenario: the oracle reads only the declarative spec and
  // interprets it with the independent brute-force helpers in
  // oracle_detail (sim/oracle.cpp) — never DynamicPlan's caches.
  const DynamicSpec* const dyn =
      opts.dynamics != nullptr ? &opts.dynamics->spec() : nullptr;
  std::vector<char> adv_touched;
  if (dyn && dyn->adv_active()) {
    adv_touched.assign(n, 0);
    adv_touched[dyn->adv_source] = 1;
  }

  // One delivery leg, replicating the engine's fault semantics exactly:
  // a leg whose either endpoint has crashed by `now` — or is absent to
  // churn — is a crash-drop; drop_delivery is consulted only for
  // non-crashed legs (the hook may own random state, so call counts
  // must match the engine's).
  auto deliver_leg = [&](NodeId to, NodeId from, EdgeId edge, Round started,
                         Round now, typename P::Payload&& payload) {
    bool crashed = false;
    if (opts.is_crashed && opts.is_crashed(to, now)) crashed = true;
    if (!crashed && opts.is_crashed && opts.is_crashed(from, now))
      crashed = true;
    if (!crashed && dyn &&
        (oracle_detail::oracle_node_absent(*dyn, to, now,
                                           bug.churn_absence_bias) ||
         oracle_detail::oracle_node_absent(*dyn, from, now,
                                           bug.churn_absence_bias)))
      crashed = true;
    bool dropped = crashed;
    if (!dropped && opts.drop_delivery)
      dropped = opts.drop_delivery(to, from, edge, started, now);
    if (dropped) {
      ++result.messages_dropped;
      if (opts.recorder)
        opts.recorder->record_drop(to, from, edge, started, now, crashed);
      return;
    }
    proto.deliver(to, from, std::move(payload), edge, started, now);
    ++result.messages_delivered;
    if (opts.recorder)
      opts.recorder->record_delivery(to, from, edge, started, now);
    if (!adv_touched.empty()) adv_touched[to] = 1;
  };

  for (Round r = 0; r <= opts.max_rounds; ++r) {
    // 0. Churn rejoin-with-reset, BEFORE deliveries, ascending node id
    // (matching the engine's resets_at ordering); re-derived per node
    // per round by brute force.
    if (dyn && dyn->churn_active()) {
      for (NodeId u = 0; u < n; ++u) {
        if (oracle_detail::oracle_node_resets_at(*dyn, u, r,
                                                 bug.churn_absence_bias))
          detail::reset_protocol_node(proto, u, r);
      }
    }

    // 1. Deliver every exchange completing this round, in creation
    // order (full scan of the in-flight list; the survivors are
    // compacted into a fresh list — no bucketing, no reuse).
    if (!in_flight.empty()) {
      std::vector<Exchange> survivors;
      survivors.reserve(in_flight.size());
      for (Exchange& x : in_flight) {
        if (x.completes != r) {
          survivors.push_back(std::move(x));
          continue;
        }
        deliver_leg(x.responder, x.initiator, x.edge, x.started, r,
                    std::move(x.to_responder));
        if (!bug.drop_initiator_leg)
          deliver_leg(x.initiator, x.responder, x.edge, x.started, r,
                      std::move(x.to_initiator));
      }
      in_flight = std::move(survivors);
    }

    // 2. Termination.
    if (proto.done(r)) {
      result.completed = true;
      result.rounds = r;
      return result;
    }
    if (r == opts.max_rounds) break;

    // 3. Contact selection, node-id order. The per-round in-degree
    // counters are freshly allocated every round (naive on purpose).
    std::vector<std::size_t> incoming(
        opts.max_incoming_per_round > 0 ? n : 0, 0);
    bool any_selected = false;
    for (NodeId u = 0; u < n; ++u) {
      if (opts.is_crashed && opts.is_crashed(u, r)) continue;
      if (dyn && oracle_detail::oracle_node_absent(*dyn, u, r,
                                                   bug.churn_absence_bias))
        continue;
      if (opts.blocking) {
        // Blocking model: u may not initiate while one of its own
        // exchanges is still in flight — answered by scanning the list.
        const bool busy =
            std::any_of(in_flight.begin(), in_flight.end(),
                        [&](const Exchange& x) { return x.initiator == u; });
        if (busy) continue;
      }

      NodeId peer;
      EdgeId edge;
      if constexpr (detail::SelectsByContact<P>) {
        const std::optional<Contact> c = proto.select_contact(u, r);
        if (!c) continue;
        peer = c->node;
        edge = c->edge;
        if (edge >= g.num_edges())
          throw std::out_of_range("edge id out of range");
        if (!oracle_detail::scan_adjacency_for(g, u, peer, edge))
          throw std::logic_error(
              "protocol selected a contact over a mismatched edge");
      } else {
        const std::optional<NodeId> target = proto.select_contact(u, r);
        if (!target) continue;
        peer = *target;
        const auto e = oracle_detail::scan_for_edge(g, u, peer);
        if (!e)
          throw std::logic_error("protocol selected a non-neighbor contact");
        edge = *e;
      }
      any_selected = true;
      ++result.activations;
      if (opts.on_activation) opts.on_activation(u, peer, edge, r);
      if (opts.recorder) opts.recorder->record_activation(u, peer, edge, r);

      if (opts.max_incoming_per_round > 0 &&
          ++incoming[peer] > opts.max_incoming_per_round) {
        ++result.exchanges_rejected;
        continue;
      }

      Latency lat = g.edge(edge).latency;
      if (opts.latency_jitter) {
        lat = opts.latency_jitter(edge, lat);
        if (lat < 1) lat = 1;
      }
      // Dynamics compose after jitter: drift (with its own >= 1 clamp),
      // then the adversarial frontier slowdown (see dynamics_spec.h).
      if (dyn && dyn->drift_active() && !bug.freeze_drift) {
        const std::uint64_t f = oracle_detail::oracle_drift_factor(*dyn, edge, r);
        lat = static_cast<Latency>(static_cast<std::uint64_t>(lat) * f / 1024);
        if (lat < 1) lat = 1;
      }
      if (!adv_touched.empty() && adv_touched[u] != adv_touched[peer]) {
        lat = static_cast<Latency>(static_cast<std::uint64_t>(lat) *
                                   dyn->adv_slow / 1024);
      }
      if (bug.latency_bias != 0)
        lat = std::max<Latency>(1, lat + bug.latency_bias);

      Exchange x;
      x.initiator = u;
      x.responder = peer;
      x.edge = edge;
      x.started = r;
      x.completes = r + lat;
      x.to_responder = PayloadTraits<P>::capture_private(proto, u, r);
      x.to_initiator = PayloadTraits<P>::capture_private(proto, peer, r);
      result.payload_bits += detail::payload_bits_of<P>(x.to_responder);
      result.payload_bits += detail::payload_bits_of<P>(x.to_initiator);
      in_flight.push_back(std::move(x));
      // Two delivery legs per exchange, matching the engine's count.
      result.max_inflight =
          std::max(result.max_inflight, 2 * in_flight.size());
    }

    if (opts.stop_when_idle && !any_selected && in_flight.empty()) {
      result.rounds = r;
      result.completed = proto.done(r);
      return result;
    }
  }

  result.rounds = opts.max_rounds;
  result.completed = false;
  return result;
}

}  // namespace latgossip
