// Freshness / node-age metric (Chen et al., "Timeliness Through
// Telephones", motivates information age as an output dimension beyond
// completion time): at the end of a run, node u's age is
// end_round - last_gain_round(u) — how stale u's newest information is.
// Protocols opt in by exposing
//     Round last_gain_round(NodeId u) const;   // -1: never informed
// (PushPullBroadcast reports its inform round; rumor-set protocols
// track the round of the last rumor gain). Nodes that never gained
// anything (last_gain_round < 0) are excluded and counted separately.
#pragma once

#include <cstddef>

#include "graph/graph.h"

namespace latgossip {

struct FreshnessStats {
  bool valid = false;  ///< protocol exposes last_gain_round and n > 0
  std::size_t informed_nodes = 0;  ///< nodes with last_gain_round >= 0
  Round max_age = 0;               ///< max over informed nodes
  double mean_age = 0.0;           ///< mean over informed nodes
};

/// Compute the age distribution of `proto`'s nodes at `end_round`
/// (typically SimResult::rounds). Returns valid=false for protocols
/// without the last_gain_round hook.
template <typename P>
FreshnessStats freshness_of(const P& proto, std::size_t n, Round end_round) {
  FreshnessStats stats;
  if constexpr (requires(const P& p, NodeId u) {
                  { p.last_gain_round(u) } -> std::convertible_to<Round>;
                }) {
    if (n == 0) return stats;
    stats.valid = true;
    double total = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const Round gain = proto.last_gain_round(u);
      if (gain < 0) continue;
      const Round age = end_round >= gain ? end_round - gain : 0;
      ++stats.informed_nodes;
      if (age > stats.max_age) stats.max_age = age;
      total += static_cast<double>(age);
    }
    if (stats.informed_nodes > 0)
      stats.mean_age = total / static_cast<double>(stats.informed_nodes);
  }
  return stats;
}

}  // namespace latgossip
