#pragma once
// Engine selection point for composite algorithm runners.
//
// The composite algorithms (EID, T(k), unified, latency discovery, the
// guessing-game reduction, aggregation) drive their internal
// simulations through dispatch_gossip() instead of calling run_gossip()
// directly. In normal operation this is a single predictable branch in
// front of the optimized engine; while a ScopedOracleEngine
// (sim/oracle.h) is alive on the thread, every internal simulation is
// routed through the naive reference oracle instead — which is how the
// differential checker (src/check/) validates whole composite runs,
// phases, recorders and all, without any test hooks inside the
// algorithms themselves.

#include "sim/engine.h"
#include "sim/oracle.h"

namespace latgossip {

template <typename P>
  requires GossipProtocol<P>
SimResult dispatch_gossip(const WeightedGraph& g, P& proto,
                          const SimOptions& opts = {}) {
  if (oracle_engine_active()) return run_gossip_oracle(g, proto, opts);
  return run_gossip(g, proto, opts);
}

}  // namespace latgossip
