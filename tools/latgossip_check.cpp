// latgossip_check — standalone model-conformance fuzzer.
//
// Generates random cases (graph family × latency model × protocol ×
// faults), runs each through the optimized engine AND the reference
// oracle (see src/check/), and stops on the first divergence or
// invariant violation. The failing case is shrunk to a minimal
// counterexample (--shrink, default on) and written to --out as a
// reproducible dump.
//
// Usage:
//   latgossip_check --cases=5000 --seed=42
//   latgossip_check --minutes=10 --shrink --out=counterexample.txt
//
// Flags:
//   --cases=N        stop after N cases (default 5000; ignored when
//                    --minutes is set)
//   --minutes=M      keep fuzzing for M wall-clock minutes
//   --seed=S         base RNG seed (default 1)
//   --max-nodes=N    widen the case profile (default 14)
//   --max-latency=L  widen the latency range (default 9)
//   --no-faults      disable crash/drop injection
//   --no-dynamics    disable dynamic scenarios (latency drift, churn,
//                    adversarial slowdown)
//   --no-composites  simple protocols only
//   --shrink         shrink a failing case before reporting (default on;
//                    --shrink=0 disables)
//   --out=PATH       write the (shrunk) counterexample dump to PATH
//
// Exit status: 0 = no divergence, 1 = divergence found, 2 = bad usage.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "check/case_gen.h"
#include "check/differential.h"
#include "check/shrink.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace latgossip;

int report_failure(const TestCase& tc, const DiffReport& rep, bool do_shrink,
                   const std::string& out_path) {
  std::cerr << "DIVERGENCE on " << describe(tc) << "\n";
  for (const std::string& f : rep.failures) std::cerr << "  " << f << "\n";

  TestCase minimal = tc;
  if (do_shrink) {
    ShrinkStats stats;
    minimal = shrink_case(
        tc, [](const TestCase& c) { return !run_differential(c).ok; },
        &stats);
    std::cerr << "shrunk to " << describe(minimal) << " (" << stats.attempts
              << " attempts, " << stats.accepted << " accepted)\n";
    const DiffReport small_rep = run_differential(minimal);
    for (const std::string& f : small_rep.failures)
      std::cerr << "  " << f << "\n";
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
    } else {
      write_case(out, minimal);
      std::cerr << "counterexample written to " << out_path << "\n";
    }
  } else {
    write_case(std::cerr, minimal);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  try {
    args.allow_only({"cases", "minutes", "seed", "max-nodes", "max-latency",
                     "no-faults", "no-dynamics", "no-composites", "shrink",
                     "out"});
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const std::int64_t cases = args.get_int("cases", 5000);
  const std::int64_t minutes = args.get_int("minutes", 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool do_shrink = args.get_bool("shrink", true);
  const std::string out_path = args.get("out", "");

  CaseProfile profile;
  profile.max_nodes =
      static_cast<std::size_t>(args.get_int("max-nodes", 14));
  profile.max_latency = args.get_int("max-latency", 9);
  profile.allow_faults = !args.get_bool("no-faults", false);
  profile.allow_dynamics = !args.get_bool("no-dynamics", false);
  profile.composites = !args.get_bool("no-composites", false);
  if (profile.max_nodes < profile.min_nodes || profile.max_latency < 1) {
    std::cerr << "bad profile bounds\n";
    return 2;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::minutes(minutes);
  const bool timed = minutes > 0;

  Rng rng(seed);
  std::int64_t ran = 0;
  while (timed ? std::chrono::steady_clock::now() < deadline : ran < cases) {
    const TestCase tc = random_case(rng, profile);
    const DiffReport rep = run_differential(tc);
    if (!rep.ok) return report_failure(tc, rep, do_shrink, out_path);
    ++ran;
    if (ran % 1000 == 0)
      std::cout << ran << " cases, no divergence\n" << std::flush;
  }
  std::cout << "checked " << ran << " cases: engine and oracle agree\n";
  return 0;
}
