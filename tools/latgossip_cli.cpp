// latgossip — command-line front end for the library.
//
//   latgossip gen --family=<name> [family params] --out=FILE [latency opts]
//   latgossip analyze --in=FILE [--sweep-iters=N]
//   latgossip run --in=FILE --proto=<pushpull|flooding|eid|tk|unified>
//                 [--source=0] [--seed=1] [--trace=FILE.csv]
//   latgossip game --m=N [--p=0.1] --strategy=<adaptive|systematic|random>
//
// Families: clique, cycle, path, star, grid (--rows, --cols), er (--p),
// regular (--d), ws (--k --beta), ba (--attach), ring_cliques
// (--cliques --size --bridge), dumbbell (--size --bridge), thm8
// (--alpha --ell). Latency options: --lat-uniform=L |
// --lat-range=LO,HI | --lat-twolevel=FAST,SLOW,PFAST.

#include <cstdio>
#include <string>

#include "latgossip.h"

using namespace latgossip;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: latgossip <gen|analyze|run|game> [--flags]\n"
               "see the header of tools/latgossip_cli.cpp for details\n");
  return 2;
}

void apply_latency_flags(WeightedGraph& g, const Args& args, Rng& rng) {
  if (args.has("lat-uniform")) {
    assign_uniform_latency(g, args.get_int("lat-uniform", 1));
  } else if (args.has("lat-range")) {
    const std::string spec = args.get("lat-range", "1,1");
    const auto comma = spec.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("--lat-range wants LO,HI");
    assign_random_uniform_latency(
        g, std::stoll(spec.substr(0, comma)),
        std::stoll(spec.substr(comma + 1)), rng);
  } else if (args.has("lat-twolevel")) {
    const std::string spec = args.get("lat-twolevel", "1,10,0.5");
    const auto c1 = spec.find(',');
    const auto c2 = spec.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos)
      throw std::invalid_argument("--lat-twolevel wants FAST,SLOW,PFAST");
    assign_two_level_latency(g, std::stoll(spec.substr(0, c1)),
                             std::stoll(spec.substr(c1 + 1, c2 - c1 - 1)),
                             std::stod(spec.substr(c2 + 1)), rng);
  }
}

WeightedGraph generate(const Args& args, Rng& rng) {
  const std::string family = args.get("family", "er");
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  if (family == "clique") return make_clique(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "path") return make_path(n);
  if (family == "star") return make_star(n);
  if (family == "grid")
    return make_grid(static_cast<std::size_t>(args.get_int("rows", 4)),
                     static_cast<std::size_t>(args.get_int("cols", 4)));
  if (family == "er")
    return make_erdos_renyi(n, args.get_double("p", 0.2), rng);
  if (family == "regular")
    return make_random_regular(
        n, static_cast<std::size_t>(args.get_int("d", 4)), rng);
  if (family == "ws")
    return make_watts_strogatz(
        n, static_cast<std::size_t>(args.get_int("k", 2)),
        args.get_double("beta", 0.1), rng);
  if (family == "ba")
    return make_barabasi_albert(
        n, static_cast<std::size_t>(args.get_int("attach", 2)), rng);
  if (family == "ring_cliques")
    return make_ring_of_cliques(
        static_cast<std::size_t>(args.get_int("cliques", 4)),
        static_cast<std::size_t>(args.get_int("size", 4)),
        args.get_int("bridge", 1));
  if (family == "dumbbell")
    return make_dumbbell(static_cast<std::size_t>(args.get_int("size", 5)),
                         1, args.get_int("bridge", 1));
  if (family == "thm8")
    return make_theorem8_network(n, args.get_double("alpha", 0.25),
                                 args.get_int("ell", 8), rng)
        .graph;
  throw std::invalid_argument("unknown family '" + family + "'");
}

int cmd_gen(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  WeightedGraph g = generate(args, rng);
  apply_latency_flags(g, args, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fputs(graph_to_string(g).c_str(), stdout);
  } else {
    save_graph(out, g);
    std::printf("wrote %zu nodes / %zu edges to %s\n", g.num_nodes(),
                g.num_edges(), out.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const WeightedGraph g = load_graph(in);
  std::printf("nodes          %zu\n", g.num_nodes());
  std::printf("edges          %zu\n", g.num_edges());
  std::printf("max degree     %zu\n", g.max_degree());
  std::printf("latency range  [%lld, %lld]\n",
              static_cast<long long>(g.min_latency()),
              static_cast<long long>(g.max_latency()));
  std::printf("connected      %s\n", g.is_connected() ? "yes" : "NO");
  if (!g.is_connected()) return 0;
  std::printf("weighted D     %lld\n",
              static_cast<long long>(weighted_diameter(g)));
  std::printf("hop D          %lld\n",
              static_cast<long long>(hop_diameter(g)));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  bool exact = false;
  const auto wc = weighted_conductance_auto(
      g, 22, static_cast<int>(args.get_int("sweep-iters", 300)), rng,
      &exact);
  std::printf("phi*           %.6f (%s)\n", wc.phi_star,
              exact ? "exact" : "sweep upper bound");
  std::printf("ell*           %lld\n", static_cast<long long>(wc.ell_star));
  std::printf("phi_ell profile:");
  for (std::size_t i = 0; i < wc.levels.size(); ++i)
    std::printf(" (%lld: %.4f)", static_cast<long long>(wc.levels[i]),
                wc.phi[i]);
  std::printf("\n");
  return 0;
}

int cmd_run(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const WeightedGraph g = load_graph(in);
  const std::size_t n = g.num_nodes();
  const std::string proto_name = args.get("proto", "pushpull");
  const auto source = static_cast<NodeId>(args.get_int("source", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 1));
  // 0 = hardware concurrency; only consulted when trials > 1.
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  Rng rng(seed);

  SimTrace trace;
  SimOptions opts;
  opts.max_rounds = args.get_int("max-rounds", 5'000'000);
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty() && trials > 1)
    throw std::invalid_argument("--trace requires --trials=1");
  if (!trace_path.empty()) trace.attach(opts);

  // One trial with a private RNG; .completed carries protocol-level
  // success so the multi-trial aggregate can count completions.
  const bool known_latencies = args.get_bool("known-latencies");
  auto run_single = [&](Rng trial_rng) -> SimResult {
    SimResult result;
    if (proto_name == "pushpull") {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, source, trial_rng);
      result = run_gossip(g, proto, opts);
    } else if (proto_name == "flooding") {
      NetworkView view(g, false);
      RoundRobinFlooding proto(view, GossipGoal::kAllToAll, source,
                               own_id_rumors(n));
      result = run_gossip(g, proto, opts);
    } else if (proto_name == "eid") {
      const GeneralEidOutcome out = run_general_eid(g, 0, trial_rng);
      result = out.sim;
      result.completed = out.success;
    } else if (proto_name == "tk") {
      const PathDiscoveryOutcome out = run_path_discovery(g);
      result = out.sim;
      result.completed = out.success;
    } else if (proto_name == "unified") {
      UnifiedOptions uopts;
      uopts.latencies_known = known_latencies;
      const UnifiedOutcome out = run_unified(g, uopts, trial_rng);
      result.rounds = out.unified_rounds;
      result.completed = out.completed;
      if (trials == 1)
        std::printf("winner         %s\n",
                    out.winner == UnifiedWinner::kPushPull ? "push-pull"
                                                           : "spanner");
    } else {
      throw std::invalid_argument("unknown protocol '" + proto_name + "'");
    }
    return result;
  };

  if (trials > 1) {
    const TrialAggregate agg = run_trials(
        trials, threads, seed,
        [&](std::size_t, Rng trial_rng) { return run_single(trial_rng); });
    std::printf("protocol       %s\n", proto_name.c_str());
    std::printf("trials         %zu (threads %zu%s)\n", trials, threads,
                threads == 0 ? " = hardware" : "");
    std::printf("rounds mean    %.2f\n", agg.rounds.mean());
    std::printf("rounds stddev  %.2f\n", agg.rounds.stddev());
    std::printf("rounds range   [%.0f, %.0f]\n", agg.rounds.min(),
                agg.rounds.max());
    std::printf("complete       %zu/%zu\n", agg.num_completed, trials);
    std::printf("exchanges mean %.1f\n", agg.activations.mean());
    std::printf("payload bits   %.1f (mean)\n", agg.payload_bits.mean());
    return 0;
  }

  const SimResult result = run_single(rng);
  const bool complete = result.completed;

  std::printf("protocol       %s\n", proto_name.c_str());
  std::printf("rounds         %lld\n", static_cast<long long>(result.rounds));
  std::printf("complete       %s\n", complete ? "yes" : "NO");
  std::printf("exchanges      %zu\n", result.activations);
  std::printf("payload bits   %zu\n", result.payload_bits);
  if (!trace_path.empty()) {
    FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 1;
    }
    std::fputs(trace.to_csv().c_str(), f);
    std::fclose(f);
    std::printf("trace          %s (%zu events)\n", trace_path.c_str(),
                trace.size());
  }
  return 0;
}

int cmd_game(const Args& args) {
  const auto m = static_cast<std::size_t>(args.get_int("m", 64));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const TargetSet target =
      args.has("p") ? make_random_p_target(m, args.get_double("p", 0.1), rng)
                    : make_singleton_target(m, rng);
  GuessingGame game(m, target);
  const std::string which = args.get("strategy", "adaptive");
  PlayResult result;
  if (which == "adaptive") {
    AdaptiveCouponStrategy s(m);
    result = play_game(game, s, 1'000'000);
  } else if (which == "systematic") {
    SystematicSweepStrategy s(m);
    result = play_game(game, s, 1'000'000);
  } else if (which == "random") {
    RandomPerSideStrategy s(m, rng.fork(1));
    result = play_game(game, s, 1'000'000);
  } else {
    return usage();
  }
  std::printf("m              %zu\n", m);
  std::printf("initial |T|    %zu\n", game.initial_target_size());
  std::printf("strategy       %s\n", which.c_str());
  std::printf("rounds         %zu\n", result.rounds);
  std::printf("guesses        %zu\n", result.guesses);
  std::printf("solved         %s\n", result.solved ? "yes" : "NO");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "run") return cmd_run(args);
    if (command == "game") return cmd_game(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
