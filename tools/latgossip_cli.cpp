// latgossip — command-line front end for the library.
//
//   latgossip gen --family=<name> [family params] --out=FILE [latency opts]
//   latgossip analyze --in=FILE [--sweep-iters=N]
//   latgossip run --in=FILE --proto=<pushpull|flooding|eid|tk|unified>
//                 [--source=0] [--seed=1] [--trials=N] [--threads=T]
//                 [--rumor-rep=<dense|sparse|count|auto>]
//                 [--dynamics=SPEC]
//                 [--trace=FILE[.json]] [--manifest=FILE.jsonl]
//                 [--curve-out=FILE.csv]
//                 [--store=DIR [--store-verify]]
//   latgossip game --m=N [--p=0.1] --strategy=<adaptive|systematic|random>
//   latgossip serve --store=DIR --socket=PATH [--threads=T]
//                   [--max-requests=N] [--quiet]
//   latgossip query --socket=PATH (--req='{"op":…}' | --op=<name>)
//
// --store=DIR: content-addressed result cache (store/store.h). Each
// trial's key is the canonical digest of (protocol, graph content,
// source, max_rounds, derived trial seed); cells already in the store
// are answered without simulating, the rest are computed and inserted —
// re-running a sweep only pays for cells it has never seen. Implies
// recording (fingerprints must land in the records); incompatible with
// --trace/--curve-out, whose outputs cannot be replayed from a cache
// hit. --store-verify recomputes every hit and fails loudly unless the
// result is bit-identical to the cached record — the tripwire for
// engine changes that forgot to bump kStoreModelVersion.
//
// serve/query: daemon + client for the same store over a Unix socket
// (length-prefixed JSON frames; ops ping/stats/completion_time/
// spread_curve/sweep/shutdown — see store/server.h and DESIGN.md §5j).
// `query --op=ping` is shorthand for --req='{"op":"ping"}'; anything
// with arguments goes through --req. The response JSON prints on
// stdout; exit 0 iff the server answered {"ok":true,…}.
//
// run observability: --trace writes the event stream (Chrome trace JSON
// when the name ends in .json, activation CSV otherwise; with trials>1
// one file per trial, ".t<k>" before the extension). --manifest appends
// one JSONL run record per trial (build info, config, SimResult,
// fingerprint, metrics). --curve-out (pushpull only) writes the
// per-round informed-count spread across trials as round,min,mean,max.
// --rumor-rep picks the rumor-set representation for rumor-carrying
// protocols (currently flooding): dense Bitset, sorted-vector sparse,
// counting/saturating, or auto (dense below 65536 nodes, sparse at or
// above — see util/rumor_set.h kDenseNodeThreshold and DESIGN.md §5i).
// All representations are observationally identical; the choice only
// moves memory/time. The resolved name is echoed and recorded in the
// manifest protocol field as e.g. "flooding/sparse".
//
// --dynamics=SPEC drives the run under a dynamic-topology scenario
// (sim/dynamics.h): comma-separated key=value pairs among
// drift=STEP[,drift-bound=B] (bounded multiplicative latency walk,
// x1024 fixed point), churn=P[,churn-window=W,churn-absence=A,
// churn-mode=retain|reset|mixed] (node leave/rejoin; the source is
// always spared), adv=SLOW (adversary slows frontier-crossing edges by
// SLOW/1024), seed=S. Only single-phase protocols (pushpull, flooding)
// accept it — composite protocols own their SimOptions — and it is
// incompatible with --store (dynamics are not part of the cell key).
// Runs report the node-age freshness of the final state: per informed
// node, rounds since it last gained a rumor ("node age max/mean",
// recorded in manifests as node_age_* metrics).
//
// Families: clique, cycle, path, star, grid (--rows, --cols), er (--p),
// regular (--d), ws (--k --beta), ba (--attach), ring_cliques
// (--cliques --size --bridge), dumbbell (--size --bridge), thm8
// (--alpha --ell), plus the streaming two-pass CSR builders for
// million-node graphs: ring, torus (--rows --cols), and --streaming
// routing er/regular/ba through make_*_streaming (explicit --seed, no
// intermediate edge list). Latency options: --lat-uniform=L |
// --lat-range=LO,HI | --lat-twolevel=FAST,SLOW,PFAST.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "latgossip.h"

using namespace latgossip;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: latgossip <gen|analyze|run|game|serve|query> "
               "[--flags]\n"
               "see the header of tools/latgossip_cli.cpp for details\n");
  return 2;
}

void apply_latency_flags(WeightedGraph& g, const Args& args, Rng& rng) {
  if (args.has("lat-uniform")) {
    assign_uniform_latency(g, args.get_int("lat-uniform", 1));
  } else if (args.has("lat-range")) {
    const std::string spec = args.get("lat-range", "1,1");
    const auto comma = spec.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("--lat-range wants LO,HI");
    assign_random_uniform_latency(
        g, std::stoll(spec.substr(0, comma)),
        std::stoll(spec.substr(comma + 1)), rng);
  } else if (args.has("lat-twolevel")) {
    const std::string spec = args.get("lat-twolevel", "1,10,0.5");
    const auto c1 = spec.find(',');
    const auto c2 = spec.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos)
      throw std::invalid_argument("--lat-twolevel wants FAST,SLOW,PFAST");
    assign_two_level_latency(g, std::stoll(spec.substr(0, c1)),
                             std::stoll(spec.substr(c1 + 1, c2 - c1 - 1)),
                             std::stod(spec.substr(c2 + 1)), rng);
  }
}

WeightedGraph generate(const Args& args, Rng& rng) {
  const std::string family = args.get("family", "er");
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  // --streaming routes er/regular/ba through the two-pass CSR builders
  // (same distributions, explicit seed, no intermediate edge list) —
  // the path that makes n = 10^6 fit in laptop RAM.
  const bool streaming = args.get_bool("streaming");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (family == "clique") return make_clique(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "path") return make_path(n);
  if (family == "star") return make_star(n);
  if (family == "ring") return make_ring_streaming(n);
  if (family == "torus")
    return make_torus_streaming(
        static_cast<std::size_t>(args.get_int("rows", 4)),
        static_cast<std::size_t>(args.get_int("cols", 4)));
  if (family == "grid")
    return make_grid(static_cast<std::size_t>(args.get_int("rows", 4)),
                     static_cast<std::size_t>(args.get_int("cols", 4)));
  if (family == "er") {
    const double p = args.get_double("p", 0.2);
    if (streaming) return make_erdos_renyi_streaming(n, p, seed);
    return make_erdos_renyi(n, p, rng);
  }
  if (family == "regular") {
    const auto d = static_cast<std::size_t>(args.get_int("d", 4));
    if (streaming) return make_random_regular_streaming(n, d, seed);
    return make_random_regular(n, d, rng);
  }
  if (family == "ws")
    return make_watts_strogatz(
        n, static_cast<std::size_t>(args.get_int("k", 2)),
        args.get_double("beta", 0.1), rng);
  if (family == "ba") {
    const auto attach = static_cast<std::size_t>(args.get_int("attach", 2));
    if (streaming) return make_preferential_attachment_streaming(n, attach, seed);
    return make_barabasi_albert(n, attach, rng);
  }
  if (family == "ring_cliques")
    return make_ring_of_cliques(
        static_cast<std::size_t>(args.get_int("cliques", 4)),
        static_cast<std::size_t>(args.get_int("size", 4)),
        args.get_int("bridge", 1));
  if (family == "dumbbell")
    return make_dumbbell(static_cast<std::size_t>(args.get_int("size", 5)),
                         1, args.get_int("bridge", 1));
  if (family == "thm8")
    return make_theorem8_network(n, args.get_double("alpha", 0.25),
                                 args.get_int("ell", 8), rng)
        .graph;
  throw std::invalid_argument("unknown family '" + family + "'");
}

int cmd_gen(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  WeightedGraph g = generate(args, rng);
  apply_latency_flags(g, args, rng);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fputs(graph_to_string(g).c_str(), stdout);
  } else {
    save_graph(out, g);
    std::printf("wrote %zu nodes / %zu edges to %s\n", g.num_nodes(),
                g.num_edges(), out.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const WeightedGraph g = load_graph(in);
  std::printf("nodes          %zu\n", g.num_nodes());
  std::printf("edges          %zu\n", g.num_edges());
  std::printf("max degree     %zu\n", g.max_degree());
  std::printf("latency range  [%lld, %lld]\n",
              static_cast<long long>(g.min_latency()),
              static_cast<long long>(g.max_latency()));
  std::printf("connected      %s\n", g.is_connected() ? "yes" : "NO");
  if (!g.is_connected()) return 0;
  std::printf("weighted D     %lld\n",
              static_cast<long long>(weighted_diameter(g)));
  std::printf("hop D          %lld\n",
              static_cast<long long>(hop_diameter(g)));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  bool exact = false;
  const auto wc = weighted_conductance_auto(
      g, 22, static_cast<int>(args.get_int("sweep-iters", 300)), rng,
      &exact);
  std::printf("phi*           %.6f (%s)\n", wc.phi_star,
              exact ? "exact" : "sweep upper bound");
  std::printf("ell*           %lld\n", static_cast<long long>(wc.ell_star));
  std::printf("phi_ell profile:");
  for (std::size_t i = 0; i < wc.levels.size(); ++i)
    std::printf(" (%lld: %.4f)", static_cast<long long>(wc.levels[i]),
                wc.phi[i]);
  std::printf("\n");
  return 0;
}

void write_file_or_throw(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::fputs(body.c_str(), f);
  std::fclose(f);
}

int cmd_run(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const WeightedGraph g = load_graph(in);
  const std::size_t n = g.num_nodes();
  const std::string proto_name = args.get("proto", "pushpull");
  const auto source = static_cast<NodeId>(args.get_int("source", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 1));
  // 0 = hardware concurrency; only consulted when trials > 1.
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const Round max_rounds = args.get_int("max-rounds", 5'000'000);
  // Rumor-set representation for rumor-carrying protocols; kAuto is
  // resolved against the loaded graph's node count up front so the
  // echoed/manifested name is the concrete choice.
  const RumorRep rumor_rep =
      resolve_rumor_rep(parse_rumor_rep(args.get("rumor-rep", "auto")), n);
  Rng rng(seed);

  const std::string trace_path = args.get("trace", "");
  const std::string manifest_path = args.get("manifest", "");
  const std::string curve_path = args.get("curve-out", "");
  const std::string store_dir = args.get("store", "");
  const bool store_verify = args.get_bool("store-verify");
  if (!curve_path.empty() && proto_name != "pushpull")
    throw std::invalid_argument(
        "--curve-out needs per-node inform rounds; only --proto=pushpull "
        "exposes them");
  if (store_verify && store_dir.empty())
    throw std::invalid_argument("--store-verify needs --store=DIR");
  // Dynamic scenario: parsed once, validated against the loaded graph;
  // one DynamicPlan per trial is constructed inside run_single (the
  // schedule itself is a deterministic function of the spec, so every
  // trial replays the same scenario with its own protocol randomness).
  const std::string dynamics_str = args.get("dynamics", "");
  DynamicSpec dynamics_spec;
  if (!dynamics_str.empty()) {
    if (proto_name != "pushpull" && proto_name != "flooding")
      throw std::invalid_argument(
          "--dynamics only applies to --proto=pushpull|flooding; composite "
          "protocols own their SimOptions");
    if (!store_dir.empty())
      throw std::invalid_argument(
          "--dynamics is not part of the store cell key; drop --store or "
          "the dynamics");
    dynamics_spec = parse_dynamics_spec(dynamics_str, n, source);
  }
  const bool dynamics_on = dynamics_spec.any();
  // A store hit skips the trial body, so exports that only the live
  // body can produce are incompatible with caching.
  if (!store_dir.empty() && (!trace_path.empty() || !curve_path.empty()))
    throw std::invalid_argument(
        "--store cannot replay --trace/--curve-out from cache hits; drop "
        "those flags or the store");
  // Recording (events + metrics) is enabled per trial whenever an
  // export that needs it was requested. A store implies it: records
  // carry fingerprints, the observable --store-verify compares by.
  const bool recording =
      !trace_path.empty() || !manifest_path.empty() || !store_dir.empty();

  // A trace ending in .json is exported as Chrome trace-event JSON
  // (open in Perfetto / chrome://tracing); anything else as the
  // activation CSV. With trials > 1, each trial writes its own file
  // with ".t<k>" spliced in before the extension.
  auto trial_trace_path = [&](std::size_t t) -> std::string {
    if (trials == 1) return trace_path;
    const std::string tag = ".t" + std::to_string(t);
    const auto dot = trace_path.find_last_of('.');
    if (dot == std::string::npos ||
        trace_path.find('/', dot) != std::string::npos)
      return trace_path + tag;
    return trace_path.substr(0, dot) + tag + trace_path.substr(dot);
  };
  const bool trace_json =
      trace_path.size() >= 5 &&
      trace_path.compare(trace_path.size() - 5, 5, ".json") == 0;

  // Per-trial side channels, pre-sized so worker threads write disjoint
  // slots (same pattern as run_trials itself).
  std::vector<std::string> metrics_snapshots(trials);
  std::vector<std::size_t> trace_events(trials, 0);
  std::vector<std::vector<Round>> inform_rounds(
      curve_path.empty() ? 0 : trials);
  // Node-age freshness of the final protocol state (valid only for
  // protocols exposing last_gain_round — pushpull and flooding).
  std::vector<FreshnessStats> freshness(trials);

  // One trial with a private RNG; .completed carries protocol-level
  // success so the multi-trial aggregate can count completions.
  const bool known_latencies = args.get_bool("known-latencies");
  auto run_single = [&](std::size_t trial, Rng trial_rng,
                        TrialWorkspace& ws) -> SimResult {
    // One recorder per worker thread, reused across that thread's
    // trials: clear() keeps the event-log storage, so only the first
    // trial per thread pays the allocation (the recorder's designed
    // steady state). Trials never share a recorder concurrently. The
    // workspace likewise recycles the engine calendar queue per worker.
    thread_local EventRecorder recorder;
    recorder.clear();
    MetricsRegistry metrics;
    ObsContext obs{&recorder, &metrics};
    ObsContext* obs_ptr = recording ? &obs : nullptr;
    SimOptions opts;
    opts.max_rounds = max_rounds;
    opts.workspace = &ws;
    if (recording) opts.recorder = &recorder;
    std::optional<DynamicPlan> dyn_plan;
    if (dynamics_on) {
      dyn_plan.emplace(n, g.num_edges(), dynamics_spec);
      dyn_plan->apply(opts);
    }
    SimResult result;
    if (proto_name == "pushpull") {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, source, trial_rng);
      result = run_gossip(g, proto, opts);
      freshness[trial] = freshness_of(proto, n, result.rounds);
      if (!curve_path.empty()) {
        inform_rounds[trial].resize(n);
        for (NodeId v = 0; v < n; ++v)
          inform_rounds[trial][v] = proto.inform_round(v);
      }
    } else if (proto_name == "flooding") {
      NetworkView view(g, false);
      result = with_rumor_rep(rumor_rep, n, [&]<RumorSetRep R>() {
        BasicRoundRobinFlooding<R> proto(view, GossipGoal::kAllToAll, source,
                                         own_id_rumor_sets<R>(n));
        const SimResult rr = run_gossip(g, proto, opts);
        freshness[trial] = freshness_of(proto, n, rr.rounds);
        return rr;
      });
    } else if (proto_name == "eid") {
      const GeneralEidOutcome out =
          run_general_eid(g, 0, trial_rng, 1, obs_ptr, &ws);
      result = out.sim;
      result.completed = out.success;
    } else if (proto_name == "tk") {
      const PathDiscoveryOutcome out = run_path_discovery(g, obs_ptr);
      result = out.sim;
      result.completed = out.success;
    } else if (proto_name == "unified") {
      UnifiedOptions uopts;
      uopts.latencies_known = known_latencies;
      uopts.obs = obs_ptr;
      const UnifiedOutcome out = run_unified(g, uopts, trial_rng);
      result.rounds = out.unified_rounds;
      result.completed = out.completed;
      if (trials == 1)
        std::printf("winner         %s\n",
                    out.winner == UnifiedWinner::kPushPull ? "push-pull"
                                                           : "spanner");
    } else {
      throw std::invalid_argument("unknown protocol '" + proto_name + "'");
    }
    if (recording) {
      result.fingerprint = recorder.fingerprint();
      record_sim_result(metrics, result);
      record_event_histograms(metrics, recorder);
      record_freshness(metrics, freshness[trial]);
      metrics_snapshots[trial] = metrics_json(metrics);
      if (!trace_path.empty()) {
        trace_events[trial] = recorder.events().size();
        write_file_or_throw(trial_trace_path(trial),
                            trace_json ? to_chrome_trace_json(recorder)
                                       : activations_to_csv(recorder));
      }
    }
    return result;
  };

  // Only flooding carries rumor sets today; other protocols ignore the
  // representation flag entirely, so tagging them would be noise.
  const bool rep_applies = proto_name == "flooding";
  const std::string rep_name{rumor_rep_name(rumor_rep)};

  RunInfo info;
  info.tool = "latgossip run";
  info.protocol = rep_applies ? proto_name + "/" + rep_name : proto_name;
  info.graph_source = in;
  info.nodes = n;
  info.edges = g.num_edges();
  info.seed = seed;
  info.threads = threads;

  // Informed-count spread curve: counts of informed nodes per round,
  // min/mean/max across trials ("round,min,mean,max" CSV).
  auto write_curve = [&]() {
    if (curve_path.empty()) return;
    Round horizon = 0;
    for (const auto& rounds_v : inform_rounds)
      for (Round r : rounds_v) horizon = std::max(horizon, r);
    std::string body = "round,min,mean,max\n";
    std::vector<std::size_t> counts(trials);
    for (Round r = 0; r <= horizon; ++r) {
      for (std::size_t t = 0; t < trials; ++t) {
        std::size_t c = 0;
        for (Round ir : inform_rounds[t])
          if (ir >= 0 && ir <= r) ++c;
        counts[t] = c;
      }
      std::size_t lo = counts[0], hi = counts[0], sum = 0;
      for (std::size_t c : counts) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
        sum += c;
      }
      char line[96];
      std::snprintf(line, sizeof line, "%lld,%zu,%.2f,%zu\n",
                    static_cast<long long>(r), lo,
                    static_cast<double>(sum) / static_cast<double>(trials),
                    hi);
      body += line;
    }
    write_file_or_throw(curve_path, body);
    std::printf("curve          %s (%lld rounds)\n", curve_path.c_str(),
                static_cast<long long>(horizon) + 1);
  };

  // Store runs always take the batch path (even --trials=1): per-trial
  // keys come from the same trial_seed() derivation either way, so a
  // single-trial probe and a later sweep share cache entries.
  if (trials > 1 || !store_dir.empty()) {
    ManifestSpec manifest;
    if (!manifest_path.empty()) {
      manifest.path = manifest_path;
      manifest.info = info;
      manifest.metrics_json_snapshot = [&](std::size_t t) {
        return metrics_snapshots[t];
      };
    }
    const ManifestSpec* mspec = manifest_path.empty() ? nullptr : &manifest;
    std::optional<ExperimentStore> store;
    StoredBatchStats store_stats;
    TrialAggregate agg;
    if (!store_dir.empty()) {
      store.emplace(store_dir);
      StoreBinding binding;
      binding.store = &*store;
      binding.verify = store_verify;
      binding.cell.protocol = info.protocol;
      binding.cell.graph = graph_digest(g);
      binding.cell.source = source;
      binding.cell.max_rounds = max_rounds;
      agg = run_trials_stored(binding, &store_stats, trials, threads, seed,
                              run_single, mspec);
    } else {
      agg = run_trials(trials, threads, seed, run_single, mspec);
    }
    std::printf("protocol       %s\n", proto_name.c_str());
    if (rep_applies)
      std::printf("rumor rep      %s\n", rep_name.c_str());
    std::printf("trials         %zu (threads %zu%s)\n", trials, threads,
                threads == 0 ? " = hardware" : "");
    std::printf("rounds mean    %.2f\n", agg.rounds.mean());
    std::printf("rounds stddev  %.2f\n", agg.rounds.stddev());
    std::printf("rounds range   [%.0f, %.0f]\n", agg.rounds.min(),
                agg.rounds.max());
    std::printf("complete       %zu/%zu\n", agg.num_completed, trials);
    std::printf("exchanges mean %.1f\n", agg.activations.mean());
    std::printf("payload bits   %.1f (mean)\n", agg.payload_bits.mean());
    if (dynamics_on)
      std::printf("dynamics       %s\n",
                  describe_dynamics(dynamics_spec).c_str());
    {
      // Freshness aggregate across the trials that produced it (every
      // trial for pushpull/flooding, none otherwise).
      std::size_t valid = 0;
      double max_sum = 0.0, mean_sum = 0.0;
      for (const FreshnessStats& f : freshness) {
        if (!f.valid) continue;
        ++valid;
        max_sum += static_cast<double>(f.max_age);
        mean_sum += f.mean_age;
      }
      if (valid > 0) {
        std::printf("node age max   %.1f (mean over %zu trials)\n",
                    max_sum / static_cast<double>(valid), valid);
        std::printf("node age mean  %.2f\n",
                    mean_sum / static_cast<double>(valid));
      }
    }
    if (recording)
      std::printf("fingerprint    0x%016llx\n",
                  static_cast<unsigned long long>(agg.fingerprint));
    if (!trace_path.empty())
      std::printf("traces         %s .. %s\n", trial_trace_path(0).c_str(),
                  trial_trace_path(trials - 1).c_str());
    if (!manifest_path.empty())
      std::printf("manifest       %s (%zu records)\n", manifest_path.c_str(),
                  trials);
    if (store) {
      // hits + misses == trials; a repeated sweep is all hits (the
      // resumable-sweep observable EXPERIMENTS.md and CI assert on).
      std::printf("store          %s (%zu records)\n", store_dir.c_str(),
                  store->size());
      std::printf("store hits     %zu%s\n", store_stats.hits,
                  store_verify ? " (recomputed + verified)" : "");
      std::printf("store misses   %zu (computed + inserted)\n",
                  store_stats.misses);
    }
    write_curve();
    return 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult result = run_single(0, rng, trial_workspace());
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const bool complete = result.completed;

  std::printf("protocol       %s\n", proto_name.c_str());
  if (rep_applies)
    std::printf("rumor rep      %s\n", rep_name.c_str());
  std::printf("rounds         %lld\n", static_cast<long long>(result.rounds));
  std::printf("complete       %s\n", complete ? "yes" : "NO");
  std::printf("exchanges      %zu\n", result.activations);
  std::printf("payload bits   %zu\n", result.payload_bits);
  if (dynamics_on)
    std::printf("dynamics       %s\n", describe_dynamics(dynamics_spec).c_str());
  if (freshness[0].valid) {
    std::printf("node age max   %lld\n",
                static_cast<long long>(freshness[0].max_age));
    std::printf("node age mean  %.2f\n", freshness[0].mean_age);
  }
  if (recording)
    std::printf("fingerprint    0x%016llx\n",
                static_cast<unsigned long long>(result.fingerprint));
  if (!trace_path.empty())
    std::printf("trace          %s (%zu events)\n", trace_path.c_str(),
                trace_events[0]);
  if (!manifest_path.empty()) {
    // The single-trial path bypasses run_trials, so stamp the effective
    // parallelism (always 1 here) the way run_trials would.
    info.threads_effective = 1;
    if (const char* env = std::getenv("LATGOSSIP_THREADS"))
      info.threads_env = env;
    if (!append_jsonl(manifest_path,
                      manifest_record(info, 0, seed, result, wall_ms,
                                      metrics_snapshots[0])))
      throw std::runtime_error("cannot append to " + manifest_path);
    std::printf("manifest       %s (1 record)\n", manifest_path.c_str());
  }
  write_curve();
  return 0;
}

int cmd_game(const Args& args) {
  const auto m = static_cast<std::size_t>(args.get_int("m", 64));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const TargetSet target =
      args.has("p") ? make_random_p_target(m, args.get_double("p", 0.1), rng)
                    : make_singleton_target(m, rng);
  GuessingGame game(m, target);
  const std::string which = args.get("strategy", "adaptive");
  PlayResult result;
  if (which == "adaptive") {
    AdaptiveCouponStrategy s(m);
    result = play_game(game, s, 1'000'000);
  } else if (which == "systematic") {
    SystematicSweepStrategy s(m);
    result = play_game(game, s, 1'000'000);
  } else if (which == "random") {
    RandomPerSideStrategy s(m, rng.fork(1));
    result = play_game(game, s, 1'000'000);
  } else {
    return usage();
  }
  std::printf("m              %zu\n", m);
  std::printf("initial |T|    %zu\n", game.initial_target_size());
  std::printf("strategy       %s\n", which.c_str());
  std::printf("rounds         %zu\n", result.rounds);
  std::printf("guesses        %zu\n", result.guesses);
  std::printf("solved         %s\n", result.solved ? "yes" : "NO");
  return 0;
}

int cmd_serve(const Args& args) {
  ServeOptions opts;
  opts.store_dir = args.get("store", "");
  opts.socket_path = args.get("socket", "");
  opts.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  opts.max_requests =
      static_cast<std::size_t>(args.get_int("max-requests", 0));
  opts.quiet = args.get_bool("quiet");
  if (opts.store_dir.empty() || opts.socket_path.empty()) return usage();
  return run_server(opts);
}

int cmd_query(const Args& args) {
  const std::string socket_path = args.get("socket", "");
  std::string request = args.get("req", "");
  if (request.empty()) {
    // --op shorthand only covers argument-free ops; anything with a
    // graph spec or cell list is real JSON and belongs in --req.
    const std::string op = args.get("op", "");
    if (op.empty()) return usage();
    request = "{\"op\":\"" + op + "\"}";
  }
  if (socket_path.empty()) return usage();
  const std::string response = query_server(socket_path, request);
  std::printf("%s\n", response.c_str());
  return response.compare(0, 10, "{\"ok\":true") == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "run") return cmd_run(args);
    if (command == "game") return cmd_game(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // Unknown subcommand: name the offender on stderr, then the one-line
  // usage; exit 2 like every other usage error (not the silent exit the
  // shell would read as success).
  std::fprintf(stderr, "latgossip: unknown subcommand '%s'\n",
               command.c_str());
  return usage();
}
