#!/usr/bin/env bash
# End-to-end smoke for `latgossip serve` + `latgossip query`:
# start the daemon on a fresh store, issue a miss query, re-issue it as
# a hit, assert the result payloads are identical and the hit counter
# moved, then shut down cleanly. Run by ctest (cli_serve_smoke) and the
# CI serve-smoke step.
#
# usage: serve_smoke.sh <latgossip-binary> <scratch-dir>
set -eu

CLI=$1
SCRATCH=$2
STORE=$SCRATCH/store
SOCK=$SCRATCH/serve.sock

rm -rf "$SCRATCH"
mkdir -p "$STORE"

"$CLI" serve --store="$STORE" --socket="$SOCK" --max-requests=32 --quiet &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT

# Wait for the listener (the daemon unlinks the socket on exit, so the
# file appearing means it is accepting).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; exit 1; }

REQ='{"op":"completion_time","graph":{"family":"er","n":64,"p":0.1,"seed":2,"lat":"range","lat_lo":1,"lat_hi":8},"proto":"pushpull","seed":5,"trials":4}'

cold=$("$CLI" query --socket="$SOCK" --req="$REQ")
warm=$("$CLI" query --socket="$SOCK" --req="$REQ")
echo "cold: $cold"
echo "warm: $warm"

case $cold in
  *'"misses":4'*) ;;
  *) echo "FAIL: cold query did not miss 4 cells"; exit 1 ;;
esac
case $warm in
  *'"hits":4,"misses":0'*) ;;
  *) echo "FAIL: warm query did not hit all 4 cells"; exit 1 ;;
esac

# The result payload (counters, means, fingerprint) must be identical
# whether computed or served from the store; only the trailing per-query
# store block may differ.
cold_result=${cold%%,\"store\"*}
warm_result=${warm%%,\"store\"*}
if [ "$cold_result" != "$warm_result" ]; then
  echo "FAIL: hit payload differs from computed payload"
  exit 1
fi

stats=$("$CLI" query --socket="$SOCK" --op=stats)
echo "stats: $stats"
case $stats in
  *'"hits":4'*) ;;
  *) echo "FAIL: stats did not show the hit counter incremented"; exit 1 ;;
esac

"$CLI" query --socket="$SOCK" --op=shutdown > /dev/null
wait "$SERVER_PID"
trap - EXIT
echo "serve smoke OK"
