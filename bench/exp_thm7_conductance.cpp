// E4 — Theorem 7: on the 2n-node network G(Random_φ) with fast latency ℓ
// and slow latency n, local broadcast needs Ω(1/φ + ℓ) in general and
// Ω(log n / φ + ℓ) for push-pull; the network has weighted diameter O(ℓ)
// and weighted conductance Θ(φ) whp.
//
// Sweeps φ at fixed n and ℓ, measuring push-pull local-broadcast rounds
// (via the reduction, which also reports when the induced game was
// solved), and cross-checks the construction's diameter on each sample.

#include <cmath>
#include <cstdio>

#include "analysis/distance.h"
#include "game/reduction.h"
#include "graph/gadgets.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "ell", "trials", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 192));
  const auto ell = static_cast<Latency>(args.get_int("ell", 4));
  const int trials = static_cast<int>(args.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::printf("E4  Theorem 7: conductance lower bound on G(Random_phi)\n");
  std::printf("    n = %zu per side, fast latency ell = %lld, slow latency "
              "= n; mean over %d trials\n",
              n, static_cast<long long>(ell), trials);

  const double logn = std::log2(static_cast<double>(2 * n));
  Table table({"phi", "broadcast_rounds", "rounds*phi/log(n)",
               "game_solved_round", "weighted_diam",
               "log(n)/phi + ell (theory)"});
  // Theorem 7 requires phi >= Omega(log(n)/n) (~0.045 here) so that
  // every right node has a fast edge whp; stay inside that regime.
  for (double phi : {0.32, 0.16, 0.08, 0.05}) {
    Accumulator rounds, game, diam;
    for (int t = 0; t < trials; ++t) {
      Rng rng(seed + static_cast<std::uint64_t>(t) * 7919);
      const auto net = make_theorem7_network(n, ell, phi, rng);
      const ReductionResult r = run_gadget_reduction(
          net.gadget, ReductionProtocol::kPushPull,
          Rng(seed * 17 + static_cast<std::uint64_t>(t)), 10'000'000);
      rounds.add(static_cast<double>(r.sim.rounds));
      if (r.game_solved_round)
        game.add(static_cast<double>(*r.game_solved_round));
      diam.add(static_cast<double>(weighted_diameter(net.gadget.graph)));
    }
    table.add(phi, rounds.mean(), rounds.mean() * phi / logn, game.mean(),
              diam.mean(), logn / phi + static_cast<double>(ell));
  }
  table.print("push-pull local broadcast on the Theorem 7 network");
  std::printf(
      "\nshape checks: 'rounds*phi/log(n)' roughly constant across the "
      "sweep (the Omega(log n / phi) branch);\n'weighted_diam' stays "
      "O(ell) = O(%lld) for all phi (whp construction property).\n",
      static_cast<long long>(ell));
  return 0;
}
