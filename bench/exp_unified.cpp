// E12 — Theorem 20: the unified algorithm runs push-pull and the spanner
// branch in parallel, completing in
//   O(min((D+Δ) log^3 n, (ℓ*/φ*) log n))   (unknown latencies)
//   O(min(D log^3 n, (ℓ*/φ*) log n))       (known latencies)
//
// Runs both branches on families engineered so that each branch wins
// somewhere, and reports the crossover.

#include <cstdio>

#include "analysis/distance.h"
#include "core/unified.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 37));

  std::printf("E12 Theorem 20: unified = min(push-pull, spanner branch)\n\n");

  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      // Well connected, unit latencies: push-pull should win outright.
      {"clique32_unit", make_clique(32)},
      // Well connected with dense fast subgraph: push-pull again.
      {"er48_twolevel",
       [&] {
         Rng r(seed);
         auto g = make_erdos_renyi(48, 0.4, r);
         assign_two_level_latency(g, 1, 64, 0.5, r);
         return g;
       }()},
      // Bottlenecked with a very slow bridge: ell*/phi* explodes while
      // D stays modest -> the spanner branch should win.
      {"dumbbell10_bridge600", make_dumbbell(10, 1, 600)},
      {"ring3x8_bridge400", make_ring_of_cliques(3, 8, 400)},
  };

  for (bool known : {true, false}) {
    Table t({"graph", "D", "Delta", "pushpull", "spanner_branch",
             "unified", "winner"});
    for (Cfg& c : cfgs) {
      Rng rng(seed * 7 + (known ? 1 : 2));
      UnifiedOptions opts;
      opts.latencies_known = known;
      opts.push_pull_cap = 5'000'000;
      const UnifiedOutcome out = run_unified(c.g, opts, rng);
      t.add(c.name, static_cast<long long>(weighted_diameter(c.g)),
            c.g.max_degree(),
            out.push_pull_completed ? std::to_string(out.push_pull_rounds)
                                    : std::string("timeout"),
            out.spanner_completed ? std::to_string(out.spanner_rounds)
                                  : std::string("fail"),
            out.unified_rounds,
            out.winner == UnifiedWinner::kPushPull ? "push-pull"
                                                   : "spanner");
      if (!out.completed)
        std::printf("  [warn] neither branch completed on %s\n", c.name);
    }
    t.print(known ? "known latencies: min(D log^3 n, (ell*/phi*) log n)"
                  : "unknown latencies: min((D+Delta) log^3 n, "
                    "(ell*/phi*) log n)");
  }
  std::printf(
      "\nreading: the unified algorithm always completes in the min of the "
      "two branches, never worse than either (Theorem 20's composition).\n"
      "At laptop scale push-pull wins every row: on these instances it "
      "organically realizes the 'search' strategy of Theorem 8, finishing "
      "near D + Delta, while the spanner branch pays its log^3 n "
      "constants up front (E10 measures them at ~D log^3 n). The "
      "asymptotic crossover — spanner wins once ell*/phi* >> D log^2 n "
      "times the constants — lies beyond feasible simulation sizes; the "
      "two branch bounds are validated individually in E7 and E10.\n");
  return 0;
}
