// E3 — Theorem 6: local broadcast requires Ω(Δ) rounds on the gadget
// network (gadget G(2Δ, |T|=1) glued to a clique).
//
// Sweeps Δ, runs push-pull local broadcast on the full Theorem-6 network
// through the Lemma-3 reduction, and reports (a) the round in which the
// hidden fast cross edge was found (the guessing-game cost, predicted
// Θ(Δ)) and (b) the total local-broadcast completion time, floored by
// min(game time, slow latency).

#include <cstdio>
#include <vector>

#include "game/reduction.h"
#include "graph/gadgets.h"
#include "util/args.h"
#include "util/fit.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed", "max_delta"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const auto max_delta =
      static_cast<std::size_t>(args.get_int("max_delta", 256));

  std::printf("E3  Theorem 6: Omega(Delta) lower bound for local broadcast\n");
  std::printf("    push-pull on G(2*Delta, |T|=1) via the Lemma-3 reduction; "
              "mean over %d trials\n", trials);

  Table table({"Delta", "game_solved_round", "broadcast_rounds",
               "cross_guesses", "Delta (theory)"});
  std::vector<double> deltas, game_rounds;
  for (std::size_t delta = 16; delta <= max_delta; delta *= 2) {
    Accumulator game, rounds, guesses;
    for (int t = 0; t < trials; ++t) {
      Rng grng(seed + static_cast<std::uint64_t>(t) * 997);
      // The isolated gadget (slow latency = graph size) carries the
      // whole lower-bound argument; the attached clique only pads n.
      const auto gadget = make_guessing_gadget(
          delta, make_singleton_target(delta, grng), 1,
          static_cast<Latency>(8 * delta), false);
      const ReductionResult r = run_gadget_reduction(
          gadget, ReductionProtocol::kPushPull,
          Rng(seed * 131 + static_cast<std::uint64_t>(t)), 10'000'000);
      if (r.game_solved_round)
        game.add(static_cast<double>(*r.game_solved_round));
      rounds.add(static_cast<double>(r.sim.rounds));
      guesses.add(static_cast<double>(r.cross_activations));
    }
    table.add(delta, game.mean(), rounds.mean(), guesses.mean(),
              static_cast<double>(delta));
    deltas.push_back(static_cast<double>(delta));
    game_rounds.push_back(game.mean());
  }
  table.print("Theorem 6 gadget: rounds vs Delta");

  const LinearFit fit = loglog_fit(deltas, game_rounds);
  std::printf(
      "\nlog-log fit: game-solved round ~ Delta^%.3f  (R^2 = %.4f; "
      "Theorem 6 predicts exponent 1)\n",
      fit.slope, fit.r_squared);
  return 0;
}
