// run_bench — JSON-emitting engine + graph throughput snapshot.
//
// Measures the simulator hot path on the same workloads as
// bench/micro_engine (google-benchmark) but with a tiny self-contained
// harness, and writes the numbers as JSON (default BENCH_engine.json)
// so successive PRs can track the engine's throughput trajectory:
//
//   ./run_bench [--out=BENCH_engine.json] [--graph_out=BENCH_graph.json]
//               [--repeats=5]
//
// The emitted files also carry pre-overhaul baselines recorded on the
// seed binaries (same machine class), so every regeneration shows
// before/after side by side: BENCH_engine.json against the
// pre-calendar-queue engine, BENCH_graph.json against the pre-CSR
// adjacency-list WeightedGraph with its unordered_map edge index.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/distance.h"
#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "util/args.h"

using namespace latgossip;

namespace {

/// Pre-overhaul numbers: the seed engine (vector-of-vectors schedule
/// with per-round shrink_to_fit, per-event std::function checks,
/// find_edge hash lookup per activation) compiled -O3 and run on these
/// exact workloads on the same machine. The hooked variant did not
/// exist pre-PR — the old engine always paid the dynamic hook checks,
/// so its plain number doubles as its hooked one.
struct Baseline {
  const char* name;
  double ns;
};
constexpr Baseline kPrePrBaseline[] = {
    {"pushpull_broadcast_64", 112631.0},
    {"pushpull_broadcast_512", 1248112.0},
    {"pushpull_broadcast_4096", 22624514.0},
    {"pushpull_alltoall_512", 4673565.0},
};

/// Pre-CSR graph numbers: the seed WeightedGraph (vector-of-vectors
/// adjacency, unordered_map<packed pair, EdgeId> for find_edge) compiled
/// -O2 -g -DNDEBUG (RelWithDebInfo parity) and run on these exact
/// workloads on the same machine, just before the GraphBuilder/CSR
/// refactor landed.
constexpr Baseline kPreCsrBaseline[] = {
    {"graph_build_hypercube16", 140696304.0},
    {"find_edge_hypercube16", 78582545.0},
    {"neighbor_scan_hypercube16", 2028447.0},
    {"bfs_hypercube16", 3939332.0},
    {"dijkstra_hypercube16", 32622486.0},
};

double measure_ns(const std::function<void()>& body, int repeats) {
  body();  // warm-up (also warms the calendar-queue buckets)
  double best = 0.0;
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count());
    total += ns;
    if (best == 0.0 || ns < best) best = ns;
  }
  (void)best;
  return total / repeats;
}

WeightedGraph bench_graph(std::size_t n) {
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  return g;
}

struct Case {
  std::string name;
  double ns;
};

/// Emit one snapshot file: baseline block, current block, and the
/// speedup ratios for every case that has a baseline counterpart.
int write_json(const std::string& out, const char* bench,
               const char* workload, int repeats, const Baseline* baseline,
               std::size_t baseline_count, const std::vector<Case>& cases) {
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench);
  std::fprintf(f, "  \"build\": %s,\n", build_info_json().c_str());
  std::fprintf(f, "  \"workload\": \"%s\",\n", workload);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"baseline_pre_pr_ns\": {\n");
  for (std::size_t i = 0; i < baseline_count; ++i)
    std::fprintf(f, "    \"%s\": %.0f%s\n", baseline[i].name, baseline[i].ns,
                 i + 1 < baseline_count ? "," : "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"current_ns\": {\n");
  for (std::size_t i = 0; i < cases.size(); ++i)
    std::fprintf(f, "    \"%s\": %.0f%s\n", cases[i].name.c_str(),
                 cases[i].ns, i + 1 < cases.size() ? "," : "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_vs_pre_pr\": {\n");
  bool first = true;
  std::string speedups;
  for (std::size_t i = 0; i < baseline_count; ++i) {
    for (const Case& c : cases) {
      if (c.name == baseline[i].name) {
        if (!first) speedups += ",\n";
        first = false;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "    \"%s\": %.2f", baseline[i].name,
                      baseline[i].ns / c.ns);
        speedups += buf;
      }
    }
  }
  std::fprintf(f, "%s\n  }\n}\n", speedups.c_str());
  std::fclose(f);

  std::printf("%s throughput snapshot (%d repeats each):\n", bench, repeats);
  for (const Case& c : cases)
    std::printf("  %-32s %12.0f ns\n", c.name.c_str(), c.ns);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

/// Graph-substrate primitives on the 16-dimensional hypercube (65536
/// nodes, 524288 edges): build, random find_edge probes, a full
/// adjacency sweep, and the two traversals layered on neighbors().
std::vector<Case> run_graph_cases(int repeats) {
  std::vector<Case> cases;
  Rng grng(1);
  auto g = make_hypercube(16);
  assign_random_uniform_latency(g, 1, 8, grng);
  const std::size_t n = g.num_nodes();

  cases.push_back({"graph_build_hypercube16", measure_ns(
                                                  [&] {
                                                    auto gg = make_hypercube(16);
                                                    volatile auto m =
                                                        gg.num_edges();
                                                    (void)m;
                                                  },
                                                  std::max(repeats / 2, 2))});
  cases.push_back({"find_edge_hypercube16",
                   measure_ns(
                       [&] {
                         Rng r(7);
                         std::size_t acc = 0;
                         for (int i = 0; i < 1'000'000; ++i) {
                           if (i & 1) {
                             const Edge& e = g.edges()[r.uniform(g.num_edges())];
                             acc += g.find_edge(e.u, e.v).value();
                           } else {
                             acc += g.find_edge(static_cast<NodeId>(r.uniform(n)),
                                                static_cast<NodeId>(r.uniform(n)))
                                        .value_or(0);
                           }
                         }
                         volatile auto a = acc;
                         (void)a;
                       },
                       repeats)});
  cases.push_back({"neighbor_scan_hypercube16",
                   measure_ns(
                       [&] {
                         std::size_t acc = 0;
                         for (NodeId u = 0; u < n; ++u)
                           for (const HalfEdge& h : g.neighbors(u))
                             acc += h.to +
                                    static_cast<std::size_t>(g.latency(h.edge));
                         volatile auto a = acc;
                         (void)a;
                       },
                       repeats)});
  cases.push_back({"bfs_hypercube16", measure_ns(
                                          [&] {
                                            volatile auto h =
                                                bfs_hops(g, 0).back();
                                            (void)h;
                                          },
                                          repeats)});
  cases.push_back({"dijkstra_hypercube16", measure_ns(
                                               [&] {
                                                 volatile auto d =
                                                     dijkstra(g, 0).back();
                                                 (void)d;
                                               },
                                               repeats)});
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"out", "graph_out", "repeats"});
  const std::string out = args.get("out", "BENCH_engine.json");
  const std::string graph_out = args.get("graph_out", "BENCH_graph.json");
  const int repeats = static_cast<int>(args.get_int("repeats", 5));

  std::vector<Case> cases;

  for (std::size_t n : {64u, 512u, 4096u}) {
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back({"pushpull_broadcast_" + std::to_string(n),
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullBroadcast proto(view, 0, Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
  }

  {
    const WeightedGraph g = bench_graph(4096);
    std::uint64_t seed = 0;
    std::size_t sink = 0;
    cases.push_back({"pushpull_broadcast_4096_hooked",
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullBroadcast proto(view, 0, Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           opts.on_activation =
                               [&](NodeId, NodeId, EdgeId, Round) { ++sink; };
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
  }

  {
    // Full recording attached, recorder reused across runs (clear()
    // keeps storage — the per-thread steady state of run_trials and the
    // CLI). This is the recording-overhead number the observability
    // work bounds at <= 25% of plain.
    const WeightedGraph g = bench_graph(4096);
    std::uint64_t seed = 0;
    EventRecorder recorder;
    cases.push_back({"pushpull_broadcast_4096_recorded",
                     measure_ns(
                         [&] {
                           recorder.clear();
                           NetworkView view(g, false);
                           PushPullBroadcast proto(view, 0, Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           opts.recorder = &recorder;
                           SimResult r = run_gossip(g, proto, opts);
                           r.fingerprint = recorder.fingerprint();
                           volatile auto fp = r.fingerprint;
                           (void)fp;
                         },
                         repeats)});
  }

  {
    const std::size_t n = 512;
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back({"pushpull_alltoall_512",
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                                                PushPullGossip::own_id_rumors(n),
                                                Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
    for (std::size_t threads : {1u, 2u, 4u}) {
      cases.push_back(
          {"run_trials_16x512_t" + std::to_string(threads),
           measure_ns(
               [&] {
                 (void)run_trials(16, threads, 99,
                                  [&g](std::size_t, Rng rng) {
                                    NetworkView view(g, false);
                                    PushPullBroadcast proto(view, 0, rng);
                                    SimOptions opts;
                                    opts.max_rounds = 1'000'000;
                                    return run_gossip(g, proto, opts);
                                  });
               },
               repeats)});
    }
  }

  const int engine_rc = write_json(
      out, "engine",
      "erdos_renyi avg-degree 8, latencies uniform[1,8], push-pull from "
      "node 0",
      repeats, kPrePrBaseline, std::size(kPrePrBaseline), cases);
  if (engine_rc != 0) return engine_rc;

  const std::vector<Case> graph_cases = run_graph_cases(repeats);
  return write_json(
      graph_out, "graph",
      "hypercube dim 16 (65536 nodes, 524288 edges), latencies "
      "uniform[1,8]; 1M mixed find_edge probes, full adjacency sweep",
      repeats, kPreCsrBaseline, std::size(kPreCsrBaseline), graph_cases);
}
