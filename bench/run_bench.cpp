// run_bench — JSON-emitting engine throughput snapshot.
//
// Measures the simulator hot path on the same workloads as
// bench/micro_engine (google-benchmark) but with a tiny self-contained
// harness, and writes the numbers as JSON (default BENCH_engine.json)
// so successive PRs can track the engine's throughput trajectory:
//
//   ./run_bench [--out=BENCH_engine.json] [--repeats=5]
//
// The emitted file also carries the pre-overhaul baseline recorded
// before the calendar-queue / hook-policy / contact-API rewrite
// (micro_engine on the seed binary, same machine class), so every
// regeneration shows before/after side by side.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "util/args.h"

using namespace latgossip;

namespace {

/// Pre-overhaul numbers: the seed engine (vector-of-vectors schedule
/// with per-round shrink_to_fit, per-event std::function checks,
/// find_edge hash lookup per activation) compiled -O3 and run on these
/// exact workloads on the same machine. The hooked variant did not
/// exist pre-PR — the old engine always paid the dynamic hook checks,
/// so its plain number doubles as its hooked one.
struct Baseline {
  const char* name;
  double ns;
};
constexpr Baseline kPrePrBaseline[] = {
    {"pushpull_broadcast_64", 112631.0},
    {"pushpull_broadcast_512", 1248112.0},
    {"pushpull_broadcast_4096", 22624514.0},
    {"pushpull_alltoall_512", 4673565.0},
};

double measure_ns(const std::function<void()>& body, int repeats) {
  body();  // warm-up (also warms the calendar-queue buckets)
  double best = 0.0;
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count());
    total += ns;
    if (best == 0.0 || ns < best) best = ns;
  }
  (void)best;
  return total / repeats;
}

WeightedGraph bench_graph(std::size_t n) {
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"out", "repeats"});
  const std::string out = args.get("out", "BENCH_engine.json");
  const int repeats = static_cast<int>(args.get_int("repeats", 5));

  struct Case {
    std::string name;
    double ns;
  };
  std::vector<Case> cases;

  for (std::size_t n : {64u, 512u, 4096u}) {
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back({"pushpull_broadcast_" + std::to_string(n),
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullBroadcast proto(view, 0, Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
  }

  {
    const WeightedGraph g = bench_graph(4096);
    std::uint64_t seed = 0;
    std::size_t sink = 0;
    cases.push_back({"pushpull_broadcast_4096_hooked",
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullBroadcast proto(view, 0, Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           opts.on_activation =
                               [&](NodeId, NodeId, EdgeId, Round) { ++sink; };
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
  }

  {
    const std::size_t n = 512;
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back({"pushpull_alltoall_512",
                     measure_ns(
                         [&] {
                           NetworkView view(g, false);
                           PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                                                PushPullGossip::own_id_rumors(n),
                                                Rng(++seed));
                           SimOptions opts;
                           opts.max_rounds = 1'000'000;
                           (void)run_gossip(g, proto, opts);
                         },
                         repeats)});
    for (std::size_t threads : {1u, 2u, 4u}) {
      cases.push_back(
          {"run_trials_16x512_t" + std::to_string(threads),
           measure_ns(
               [&] {
                 (void)run_trials(16, threads, 99,
                                  [&g](std::size_t, Rng rng) {
                                    NetworkView view(g, false);
                                    PushPullBroadcast proto(view, 0, rng);
                                    SimOptions opts;
                                    opts.max_rounds = 1'000'000;
                                    return run_gossip(g, proto, opts);
                                  });
               },
               repeats)});
    }
  }

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"engine\",\n");
  std::fprintf(f,
               "  \"workload\": \"erdos_renyi avg-degree 8, latencies "
               "uniform[1,8], push-pull from node 0\",\n");
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"baseline_pre_pr_ns\": {\n");
  for (std::size_t i = 0; i < std::size(kPrePrBaseline); ++i)
    std::fprintf(f, "    \"%s\": %.0f%s\n", kPrePrBaseline[i].name,
                 kPrePrBaseline[i].ns,
                 i + 1 < std::size(kPrePrBaseline) ? "," : "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"current_ns\": {\n");
  for (std::size_t i = 0; i < cases.size(); ++i)
    std::fprintf(f, "    \"%s\": %.0f%s\n", cases[i].name.c_str(),
                 cases[i].ns, i + 1 < cases.size() ? "," : "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_vs_pre_pr\": {\n");
  bool first = true;
  std::string speedups;
  for (const Baseline& b : kPrePrBaseline) {
    for (const Case& c : cases) {
      if (c.name == b.name) {
        if (!first) speedups += ",\n";
        first = false;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "    \"%s\": %.2f", b.name,
                      b.ns / c.ns);
        speedups += buf;
      }
    }
  }
  std::fprintf(f, "%s\n  }\n}\n", speedups.c_str());
  std::fclose(f);

  std::printf("engine throughput snapshot (%d repeats each):\n", repeats);
  for (const Case& c : cases)
    std::printf("  %-32s %12.0f ns\n", c.name.c_str(), c.ns);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
