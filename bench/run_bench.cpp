// run_bench — JSON-emitting engine + graph throughput snapshot.
//
// Measures the simulator hot path on the same workloads as
// bench/micro_engine (google-benchmark) but with a tiny self-contained
// harness, and writes the numbers as JSON (default BENCH_engine.json)
// so successive PRs can track the engine's throughput trajectory:
//
//   ./run_bench [--out=BENCH_engine.json] [--graph_out=BENCH_graph.json]
//               [--repeats=5] [--smoke]
//
// The emitted files also carry pre-overhaul baselines recorded on the
// seed binaries (same machine class), so every regeneration shows
// before/after side by side: BENCH_engine.json against the
// pre-calendar-queue engine and (for the rumor-set rows) against the
// pre-snapshot-arena protocols, BENCH_graph.json against the pre-CSR
// adjacency-list WeightedGraph with its unordered_map edge index.
//
// --smoke is the CI bench-rot guard: every workload runs once at tiny
// sizes and nothing is written, so the bench binary itself is exercised
// on every PR without touching the checked-in JSON numbers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/freshness.h"
#include "sim/parallel.h"
#include "store/server.h"
#include "store/store.h"
#include "util/args.h"

using namespace latgossip;

namespace {

/// Pre-overhaul numbers: the seed engine (vector-of-vectors schedule
/// with per-round shrink_to_fit, per-event std::function checks,
/// find_edge hash lookup per activation) compiled -O3 and run on these
/// exact workloads on the same machine. The hooked variant did not
/// exist pre-PR — the old engine always paid the dynamic hook checks,
/// so its plain number doubles as its hooked one.
struct Baseline {
  const char* name;
  double ns;
};
constexpr Baseline kPrePrBaseline[] = {
    {"pushpull_broadcast_64", 112631.0},
    {"pushpull_broadcast_512", 1248112.0},
    {"pushpull_broadcast_4096", 22624514.0},
    {"pushpull_alltoall_512", 4673565.0},
};

/// Pre-snapshot-arena numbers: the deep-copy Bitset payload protocols
/// (full rumor-set copy on every capture, count() re-scan per
/// delivery), RelWithDebInfo without -mpopcnt (the pre-COW build),
/// this machine, measured with this harness from a pre-COW checkout in
/// the same time window as the committed current_ns block — this box's
/// throughput drifts 10–25% between sessions, so cross-window ratios
/// would be noise.
constexpr Baseline kPreCowBaseline[] = {
    {"pushpull_alltoall_512", 4386534.0},
    {"pushpull_alltoall_4096", 365926906.0},
    {"eid_alltoall", 136102186.0},
    {"run_trials_8x4096_t1", 62377881.0},
};

/// Pre-trial-pool numbers: run_trials spawning fresh std::threads per
/// call, one shared fetch_add counter, no workspace reuse (every trial
/// rebuilt engine + protocol from scratch). Measured with an equivalent
/// driver from a pre-pool checkout, A/B-interleaved with the current
/// build in the same time window (same box, same workloads; 3
/// alternating rounds of 3 repeats, per-row minimum of the round
/// means — this virtualized box's noise is one-sided, so min is the
/// robust estimator). The scaling story they tell: adding threads made
/// these batches SLOWER — this machine class is single-core, so t>1
/// was pure oversubscription plus allocator churn (DESIGN.md §5h).
constexpr Baseline kPrePoolBaseline[] = {
    {"run_trials_16x512_t1", 11731824.0},
    {"run_trials_16x512_t2", 12001388.0},
    {"run_trials_16x512_t4", 12239976.0},
    {"run_trials_16x512_t8", 12502834.0},
    {"run_trials_8x4096_t1", 65620516.0},
    {"run_trials_8x4096_t2", 75958953.0},
    {"run_trials_8x4096_t4", 75808032.0},
    {"run_trials_8x4096_t8", 77972679.0},
    {"run_trials_10k_sweep_t1", 532428735.0},
    {"run_trials_10k_sweep_t2", 501738593.0},
    {"run_trials_10k_sweep_t4", 506816635.0},
    {"run_trials_10k_sweep_t8", 535693595.0},
};

/// Pre-CSR graph numbers: the seed WeightedGraph (vector-of-vectors
/// adjacency, unordered_map<packed pair, EdgeId> for find_edge) compiled
/// -O2 -g -DNDEBUG (RelWithDebInfo parity) and run on these exact
/// workloads on the same machine, just before the GraphBuilder/CSR
/// refactor landed.
constexpr Baseline kPreCsrBaseline[] = {
    {"graph_build_hypercube16", 140696304.0},
    {"find_edge_hypercube16", 78582545.0},
    {"neighbor_scan_hypercube16", 2028447.0},
    {"bfs_hypercube16", 3939332.0},
    {"dijkstra_hypercube16", 32622486.0},
};

double measure_ns(const std::function<void()>& body, int repeats) {
  body();  // warm-up (also warms the calendar-queue buckets)
  double best = 0.0;
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count());
    total += ns;
    if (best == 0.0 || ns < best) best = ns;
  }
  (void)best;
  return total / repeats;
}

WeightedGraph bench_graph(std::size_t n) {
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  return g;
}

struct Case {
  std::string name;
  double ns;
  /// Process peak RSS (VmHWM) sampled right after the row ran. A
  /// high-water mark: monotone across rows, so a row's value bounds
  /// everything up to and including it — the big-memory rows run last
  /// so the small rows keep meaningful readings.
  std::size_t peak_rss = 0;
};

/// Measure one row and stamp the post-row RSS high-water mark.
Case make_case(std::string name, const std::function<void()>& body,
               int repeats) {
  const double ns = measure_ns(body, repeats);
  return Case{std::move(name), ns, peak_rss_bytes()};
}

/// One run_trials workload measured across thread counts; rendered as a
/// "thread_scaling" JSON object with per-count parallel efficiency
/// (t1_ns / (tk_ns * k), as a percentage — 100% is perfect scaling, and
/// anything above the pre-pool baseline's <= ~100/k% means the
/// inversion is gone).
struct ScalingEntry {
  std::string family;
  std::vector<std::pair<std::size_t, double>> ns_by_threads;
};

std::string scaling_json(const std::vector<ScalingEntry>& entries) {
  if (entries.empty()) return "";
  std::string out = ",\n  \"thread_scaling\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ScalingEntry& e = entries[i];
    double t1 = 0.0;
    for (const auto& [threads, ns] : e.ns_by_threads)
      if (threads == 1) t1 = ns;
    out += "    \"" + e.family + "\": {";
    bool first = true;
    for (const auto& [threads, ns] : e.ns_by_threads) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s\"t%zu_ns\": %.0f",
                    first ? "" : ", ", threads, ns);
      first = false;
      out += buf;
    }
    for (const auto& [threads, ns] : e.ns_by_threads) {
      if (threads == 1 || t1 <= 0.0 || ns <= 0.0) continue;
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", \"efficiency_t%zu_pct\": %.1f",
                    threads, 100.0 * t1 / (ns * static_cast<double>(threads)));
      out += buf;
    }
    out += i + 1 < entries.size() ? "},\n" : "}\n";
  }
  out += "  }";
  return out;
}

/// One named before-numbers block: "<ns_key>" object plus a
/// "<speedup_key>" ratio object covering every case with a counterpart.
struct BaselineBlock {
  const char* ns_key;
  const char* speedup_key;
  const Baseline* rows;
  std::size_t count;
};

/// Emit one snapshot file: the baseline blocks, the current block, and
/// per-block speedup ratios.
int write_json(const std::string& out, const char* bench,
               const char* workload, int repeats,
               const std::vector<BaselineBlock>& baselines,
               const std::vector<Case>& cases,
               const std::string& extra_json = std::string()) {
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench);
  std::fprintf(f, "  \"build\": %s,\n", build_info_json().c_str());
  std::fprintf(f, "  \"workload\": \"%s\",\n", workload);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  for (const BaselineBlock& b : baselines) {
    std::fprintf(f, "  \"%s\": {\n", b.ns_key);
    for (std::size_t i = 0; i < b.count; ++i)
      std::fprintf(f, "    \"%s\": %.0f%s\n", b.rows[i].name, b.rows[i].ns,
                   i + 1 < b.count ? "," : "");
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"current_ns\": {\n");
  for (std::size_t i = 0; i < cases.size(); ++i)
    std::fprintf(f, "    \"%s\": %.0f%s\n", cases[i].name.c_str(),
                 cases[i].ns, i + 1 < cases.size() ? "," : "");
  std::fprintf(f, "  },\n");
  // Peak RSS (VmHWM) after each row, in row order. Monotone by
  // construction; the last row's value is the whole run's peak.
  std::fprintf(f, "  \"peak_rss_bytes\": {\n");
  for (std::size_t i = 0; i < cases.size(); ++i)
    std::fprintf(f, "    \"%s\": %zu%s\n", cases[i].name.c_str(),
                 cases[i].peak_rss, i + 1 < cases.size() ? "," : "");
  std::fprintf(f, "  }");
  for (const BaselineBlock& b : baselines) {
    std::fprintf(f, ",\n  \"%s\": {\n", b.speedup_key);
    bool first = true;
    std::string speedups;
    for (std::size_t i = 0; i < b.count; ++i) {
      for (const Case& c : cases) {
        if (c.name == b.rows[i].name) {
          if (!first) speedups += ",\n";
          first = false;
          char buf[128];
          std::snprintf(buf, sizeof(buf), "    \"%s\": %.2f", b.rows[i].name,
                        b.rows[i].ns / c.ns);
          speedups += buf;
        }
      }
    }
    std::fprintf(f, "%s\n  }", speedups.c_str());
  }
  if (!extra_json.empty()) std::fprintf(f, "%s", extra_json.c_str());
  std::fprintf(f, "\n}\n");
  std::fclose(f);

  std::printf("%s throughput snapshot (%d repeats each):\n", bench, repeats);
  for (const Case& c : cases)
    std::printf("  %-32s %12.0f ns\n", c.name.c_str(), c.ns);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

/// Graph-substrate primitives on the `dim`-dimensional hypercube
/// (dim 16: 65536 nodes, 524288 edges; --smoke drops to dim 8): build,
/// random find_edge probes, a full adjacency sweep, and the two
/// traversals layered on neighbors().
std::vector<Case> run_graph_cases(int repeats, std::size_t dim,
                                  int find_edge_probes) {
  std::vector<Case> cases;
  const std::string suffix = "_hypercube" + std::to_string(dim);
  Rng grng(1);
  auto g = make_hypercube(dim);
  assign_random_uniform_latency(g, 1, 8, grng);
  const std::size_t n = g.num_nodes();

  cases.push_back(make_case("graph_build" + suffix,
                            [&] {
                              auto gg = make_hypercube(dim);
                              volatile auto m = gg.num_edges();
                              (void)m;
                            },
                            std::max(repeats / 2, 2)));
  cases.push_back(make_case(
      "find_edge" + suffix,
      [&] {
        Rng r(7);
        std::size_t acc = 0;
        for (int i = 0; i < find_edge_probes; ++i) {
          if (i & 1) {
            const Edge& e = g.edges()[r.uniform(g.num_edges())];
            acc += g.find_edge(e.u, e.v).value();
          } else {
            acc += g.find_edge(static_cast<NodeId>(r.uniform(n)),
                               static_cast<NodeId>(r.uniform(n)))
                       .value_or(0);
          }
        }
        volatile auto a = acc;
        (void)a;
      },
      repeats));
  cases.push_back(make_case(
      "neighbor_scan" + suffix,
      [&] {
        std::size_t acc = 0;
        for (NodeId u = 0; u < n; ++u)
          for (const HalfEdge& h : g.neighbors(u))
            acc += h.to + static_cast<std::size_t>(g.latency(h.edge));
        volatile auto a = acc;
        (void)a;
      },
      repeats));
  cases.push_back(make_case("bfs" + suffix,
                            [&] {
                              volatile auto h = bfs_hops(g, 0).back();
                              (void)h;
                            },
                            repeats));
  cases.push_back(make_case("dijkstra" + suffix,
                            [&] {
                              volatile auto d = dijkstra(g, 0).back();
                              (void)d;
                            },
                            repeats));
  return cases;
}

/// Query-server throughput: the same 512-node push–pull sweep asked
/// twice through the in-process request core (store/server.h), first
/// against an empty store (every cell computed and inserted) and then
/// again (every cell answered from the index). Cold can only be
/// measured once per store lifetime, so its single pass and the warm
/// repeats run back to back in the same time window — the same
/// same-window methodology the pre-pool baselines use; cross-window
/// ratios on this box are noise.
struct StoreQps {
  std::size_t cells = 0;
  std::size_t trials = 0;
  std::size_t nodes = 0;
  double cold_ns = 0.0;  ///< one pass over all cells, all misses
  double warm_ns = 0.0;  ///< mean pass over all cells, all hits
};

StoreQps run_store_qps(bool smoke, int repeats) {
  StoreQps r;
  r.nodes = smoke ? 32 : 512;
  r.cells = smoke ? 4 : 64;
  r.trials = smoke ? 2 : 8;
  const auto dir =
      std::filesystem::temp_directory_path() / "latgossip_bench_store";
  std::filesystem::remove_all(dir);
  ExperimentStore store(dir.string());

  // One graph spec, varying batch seed: each query is its own cell set
  // but the server's graph cache keeps substrate construction out of
  // the numbers — this row prices the store, not the generator.
  const auto request = [&](std::size_t i) {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"op\":\"completion_time\",\"graph\":{\"family\":\"er\",\"n\":%zu,"
        "\"p\":%.6f,\"seed\":1,\"lat\":\"range\",\"lat_lo\":1,\"lat_hi\":8},"
        "\"proto\":\"pushpull\",\"seed\":%zu,\"trials\":%zu}",
        r.nodes, 8.0 / static_cast<double>(r.nodes), i + 1, r.trials);
    return std::string(buf);
  };
  const auto pass = [&](const char* expect) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < r.cells; ++i) {
      const std::string resp = handle_request(store, request(i), 0, nullptr);
      if (resp.rfind("{\"ok\":true", 0) != 0 ||
          resp.find(expect) == std::string::npos) {
        std::fprintf(stderr, "store_qps: unexpected response %s\n",
                     resp.c_str());
        std::exit(1);
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  };

  char miss_tag[32], hit_tag[32];
  std::snprintf(miss_tag, sizeof(miss_tag), "\"misses\":%zu", r.trials);
  std::snprintf(hit_tag, sizeof(hit_tag), "\"hits\":%zu,\"misses\":0",
                r.trials);
  r.cold_ns = pass(miss_tag);
  double warm_total = 0.0;
  for (int i = 0; i < repeats; ++i) warm_total += pass(hit_tag);
  r.warm_ns = warm_total / repeats;
  std::filesystem::remove_all(dir);
  return r;
}

int write_store_json(const std::string& out, int repeats, const StoreQps& q) {
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  const double cold_qps = 1e9 * static_cast<double>(q.cells) / q.cold_ns;
  const double warm_qps = 1e9 * static_cast<double>(q.cells) / q.warm_ns;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"store_qps\",\n");
  std::fprintf(f, "  \"build\": %s,\n", build_info_json().c_str());
  std::fprintf(f,
               "  \"workload\": \"erdos_renyi n=%zu avg-degree 8, latencies "
               "uniform[1,8], push-pull; %zu completion_time queries x %zu "
               "trials via in-process handle_request, cold then warm in the "
               "same window\",\n",
               q.nodes, q.cells, q.trials);
  std::fprintf(f, "  \"warm_repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"cells\": %zu,\n", q.cells);
  std::fprintf(f, "  \"trials_per_cell\": %zu,\n", q.trials);
  std::fprintf(f, "  \"cold\": { \"total_ns\": %.0f, \"qps\": %.1f },\n",
               q.cold_ns, cold_qps);
  std::fprintf(f, "  \"warm\": { \"total_ns\": %.0f, \"qps\": %.1f },\n",
               q.warm_ns, warm_qps);
  std::fprintf(f, "  \"warm_over_cold\": %.1f\n", warm_qps / cold_qps);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("store_qps: cold %.1f qps, warm %.1f qps (%.0fx)\n", cold_qps,
              warm_qps, warm_qps / cold_qps);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"out", "graph_out", "store_out", "repeats", "smoke"});
  const std::string out = args.get("out", "BENCH_engine.json");
  const std::string graph_out = args.get("graph_out", "BENCH_graph.json");
  const std::string store_out = args.get("store_out", "BENCH_store.json");
  const bool smoke = args.get_bool("smoke");
  const int repeats = smoke ? 1 : static_cast<int>(args.get_int("repeats", 5));

  // Smoke mode shrinks every workload to seconds-total CI size.
  const std::vector<std::size_t> broadcast_sizes =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{64, 512, 4096};
  const std::size_t big_n = smoke ? 64 : 4096;
  const std::size_t a2a_small_n = smoke ? 64 : 512;
  const std::size_t eid_n = smoke ? 64 : 256;
  const std::size_t trials_small = smoke ? 4 : 16;
  const std::size_t trials_big = smoke ? 4 : 8;

  std::vector<Case> cases;

  for (std::size_t n : broadcast_sizes) {
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back(make_case(
        "pushpull_broadcast_" + std::to_string(n),
        [&] {
          NetworkView view(g, false);
          PushPullBroadcast proto(view, 0, Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          (void)run_gossip(g, proto, opts);
        },
        repeats));
  }

  {
    const WeightedGraph g = bench_graph(big_n);
    std::uint64_t seed = 0;
    std::size_t sink = 0;
    cases.push_back(make_case(
        "pushpull_broadcast_" + std::to_string(big_n) + "_hooked",
        [&] {
          NetworkView view(g, false);
          PushPullBroadcast proto(view, 0, Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          opts.on_activation = [&](NodeId, NodeId, EdgeId, Round) { ++sink; };
          (void)run_gossip(g, proto, opts);
        },
        repeats));
  }

  {
    // Full recording attached, recorder reused across runs (clear()
    // keeps storage — the per-thread steady state of run_trials and the
    // CLI). This is the recording-overhead number the observability
    // work bounds at <= 25% of plain.
    const WeightedGraph g = bench_graph(big_n);
    std::uint64_t seed = 0;
    EventRecorder recorder;
    cases.push_back(make_case(
        "pushpull_broadcast_" + std::to_string(big_n) + "_recorded",
        [&] {
          recorder.clear();
          NetworkView view(g, false);
          PushPullBroadcast proto(view, 0, Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          opts.recorder = &recorder;
          SimResult r = run_gossip(g, proto, opts);
          r.fingerprint = recorder.fingerprint();
          volatile auto fp = r.fingerprint;
          (void)fp;
        },
        repeats));
  }

  std::string freshness_json;
  {
    // Dynamics-hooked row: a drift + adversary schedule installed on the
    // same broadcast workload prices the DynamicsHook dispatch (the
    // plain rows above take the compile-time NoHooks path). The final
    // repeat's node-age freshness rides into the JSON as an observable
    // of the dynamic scenario, not a throughput number.
    const WeightedGraph g = bench_graph(big_n);
    DynamicSpec spec;
    spec.drift_step = 64;
    spec.drift_bound = 2048;
    spec.adv_slow = 1536;
    spec.seed = 11;
    std::uint64_t seed = 0;
    FreshnessStats fresh;
    cases.push_back(make_case(
        "pushpull_broadcast_" + std::to_string(big_n) + "_dynamics",
        [&] {
          NetworkView view(g, false);
          PushPullBroadcast proto(view, 0, Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          DynamicPlan plan(g.num_nodes(), g.num_edges(), spec);
          plan.apply(opts);
          const SimResult r = run_gossip(g, proto, opts);
          fresh = freshness_of(proto, g.num_nodes(), r.rounds);
        },
        repeats));
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"freshness_dynamics_%zu\": { \"informed\": %zu, "
                  "\"node_age_max\": %lld, \"node_age_mean\": %.2f }",
                  big_n, fresh.informed_nodes,
                  static_cast<long long>(fresh.max_age), fresh.mean_age);
    freshness_json = buf;
  }

  // All-to-all rumor-set rows: the copy-on-write snapshot payload path
  // (util/snapshot.h). Payload volume scales with n * rounds, so these
  // are the rows the snapshot arena exists for.
  std::vector<std::size_t> a2a_sizes{a2a_small_n};
  if (big_n != a2a_small_n) a2a_sizes.push_back(big_n);
  for (std::size_t n : a2a_sizes) {
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    cases.push_back(make_case(
        "pushpull_alltoall_" + std::to_string(n),
        [&] {
          NetworkView view(g, false);
          PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                               PushPullGossip::own_id_rumors(n), Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          (void)run_gossip(g, proto, opts);
        },
        repeats));
  }

  {
    // Representation-threshold documentation (util/rumor_set.h,
    // kDenseNodeThreshold): the same all-to-all workload under the
    // sparse and counting representations. Below the crossover dense
    // must win — in all-to-all every sparse set promotes to dense
    // mid-run anyway, so these rows price the abstraction, not a new
    // algorithm. Compare against pushpull_alltoall_<big_n> above.
    const std::size_t n = big_n;
    const WeightedGraph g = bench_graph(n);
    std::uint64_t seed = 0;
    const auto rep_row = [&]<RumorSetRep R>(const char* rep_name) {
      cases.push_back(make_case(
          "pushpull_alltoall_" + std::to_string(n) + "_" + rep_name,
          [&] {
            NetworkView view(g, false);
            BasicPushPullGossip<R> proto(view, GossipGoal::kAllToAll, 0,
                                         own_id_rumor_sets<R>(n), Rng(++seed));
            SimOptions opts;
            opts.max_rounds = 1'000'000;
            (void)run_gossip(g, proto, opts);
          },
          repeats));
    };
    rep_row.template operator()<SparseRumorSet>("sparse");
    rep_row.template operator()<CountRumorSet>("count");
  }

  {
    // End-to-end General EID (guess-and-double, DTG discovery, spanner,
    // RR broadcast): every phase moves rumor-set payloads, so this is
    // the composite all-to-all number.
    const std::size_t n = eid_n;
    Rng grng(1);
    auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
    assign_random_uniform_latency(g, 1, 8, grng);
    std::uint64_t seed = 0;
    cases.push_back(make_case("eid_alltoall",
                              [&] {
                                Rng rng(++seed);
                                (void)run_general_eid(g, n, rng);
                              },
                              repeats));
  }

  // The run_trials rows use the workspace overload — the production
  // sweep configuration: protocol and engine state parked per worker,
  // reset per trial (DESIGN.md §5h). Batches run on the persistent
  // TrialPool; the t1 rows exercise the sequential inline path with the
  // caller's own workspace.
  const auto reusing_trial = [](const WeightedGraph& g) {
    return [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
      NetworkView view(g, false);
      auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
      proto.reset(view, 0, rng);
      SimOptions opts;
      opts.max_rounds = 1'000'000;
      opts.workspace = &ws;
      return run_gossip(g, proto, opts);
    };
  };
  std::vector<ScalingEntry> scaling;
  const auto bench_trials_family = [&](const std::string& family,
                                       const WeightedGraph& g,
                                       std::size_t trials) {
    ScalingEntry entry{family, {}};
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      const auto fn = reusing_trial(g);
      cases.push_back(
          make_case(family + "_t" + std::to_string(threads),
                    [&] { (void)run_trials(trials, threads, 99, fn); },
                    repeats));
      entry.ns_by_threads.emplace_back(threads, cases.back().ns);
    }
    scaling.push_back(std::move(entry));
  };

  {
    const WeightedGraph g = bench_graph(a2a_small_n);
    bench_trials_family("run_trials_" + std::to_string(trials_small) + "x" +
                            std::to_string(a2a_small_n),
                        g, trials_small);
  }

  if (big_n != a2a_small_n) {
    // Bigger per-trial work: thread scaling on trials long enough that
    // per-trial setup is noise.
    const WeightedGraph g = bench_graph(big_n);
    bench_trials_family("run_trials_" + std::to_string(trials_big) + "x" +
                            std::to_string(big_n),
                        g, trials_big);
  }

  {
    // Many tiny trials: the sweep shape every EXPERIMENTS.md experiment
    // has (thousands of seeds, small graphs). Per-trial setup cost and
    // claim contention dominate here, so this row is the one the
    // chunked-claim pool and the workspace reuse move the most.
    const std::size_t sweep_trials = smoke ? 200 : 10'000;
    const WeightedGraph g = bench_graph(64);
    bench_trials_family("run_trials_10k_sweep", g, sweep_trials);
  }

  {
    // Million-node rows (ROADMAP item 2) — last, so their memory
    // high-water mark does not pollute the per-row RSS readings above.
    // Substrate: streaming random-regular d=8 (graph/generators.h) —
    // built through the two-pass CSR path, no intermediate edge list.
    const std::size_t mn = smoke ? 8192 : 1'000'000;
    const std::string mn_tag = smoke ? std::to_string(mn) : "1M";
    const int mn_repeats = std::max(repeats / 2, 1);
    Rng grng(1);
    WeightedGraph g = make_random_regular_streaming(mn, 8, 1);
    assign_random_uniform_latency(g, 1, 8, grng);
    std::uint64_t seed = 0;
    // Boolean-payload broadcast: the engine + calendar queue at 10^6
    // nodes, representation-independent.
    cases.push_back(make_case(
        "pushpull_broadcast_" + mn_tag,
        [&] {
          NetworkView view(g, false);
          PushPullBroadcast proto(view, 0, Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          (void)run_gossip(g, proto, opts);
        },
        mn_repeats));
    // Rumor-set single-source gossip under the sparse representation:
    // every set stays at <= 1 element, so per-node cost is O(1) where a
    // dense layout would need n^2/8 = 125 GB just for the sets. The
    // dense counterpart is unrunnable at this size — that asymmetry IS
    // the result; see DESIGN.md §5i.
    cases.push_back(make_case(
        "pushpull_gossip_sparse_" + mn_tag,
        [&] {
          NetworkView view(g, false);
          std::vector<SparseRumorSet> rumors(mn, SparseRumorSet(mn));
          rumors[0].set(0);
          BasicPushPullGossip<SparseRumorSet> proto(
              view, GossipGoal::kSingleSource, 0, std::move(rumors),
              Rng(++seed));
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          (void)run_gossip(g, proto, opts);
        },
        mn_repeats));
  }

  const std::vector<BaselineBlock> engine_baselines = {
      {"baseline_pre_pr_ns", "speedup_vs_pre_pr", kPrePrBaseline,
       std::size(kPrePrBaseline)},
      {"baseline_pre_cow_ns", "speedup_vs_pre_cow", kPreCowBaseline,
       std::size(kPreCowBaseline)},
      {"baseline_pre_pool_ns", "speedup_vs_pre_pool", kPrePoolBaseline,
       std::size(kPrePoolBaseline)},
  };
  const std::vector<Case> graph_cases =
      run_graph_cases(repeats, smoke ? 8 : 16, smoke ? 100'000 : 1'000'000);
  const StoreQps store_qps = run_store_qps(smoke, std::max(repeats, 3));

  if (smoke) {
    // Bench-rot guard: everything above ran; write nothing.
    std::printf("smoke mode: %zu engine + %zu graph cases + store_qps "
                "(%zu cells) ran, no JSON written\n",
                cases.size(), graph_cases.size(), store_qps.cells);
    return 0;
  }

  const int engine_rc = write_json(
      out, "engine",
      "erdos_renyi avg-degree 8, latencies uniform[1,8], push-pull from "
      "node 0",
      repeats, engine_baselines, cases, scaling_json(scaling) + freshness_json);
  if (engine_rc != 0) return engine_rc;

  const std::vector<BaselineBlock> graph_baselines = {
      {"baseline_pre_csr_ns", "speedup_vs_pre_csr", kPreCsrBaseline,
       std::size(kPreCsrBaseline)},
  };
  const int graph_rc = write_json(
      graph_out, "graph",
      "hypercube dim 16 (65536 nodes, 524288 edges), latencies "
      "uniform[1,8]; 1M mixed find_edge probes, full adjacency sweep",
      repeats, graph_baselines, graph_cases);
  if (graph_rc != 0) return graph_rc;

  return write_store_json(store_out, std::max(repeats, 3), store_qps);
}
