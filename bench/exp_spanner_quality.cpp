// E8 — Lemma 13 / Theorem 14: the oriented Baswana-Sen spanner has
// O(n^{c/k} log n) out-degree even with an estimate n_hat = n^c,
// O(log n) stretch at k = log n, and O(n log n) edges.
//
// Part 1: n sweep at k = log2(n): arcs per node, max out-degree,
// sampled stretch vs the (2k-1) bound.
// Part 2: k sweep at fixed n — the stretch/size trade-off.
// Part 3: n_hat inflation (n, n^1.5, n^2) — Lemma 13's robustness.

#include <cmath>
#include <cstdio>

#include "analysis/spanner_check.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < x) ++k;
  return k < 1 ? 1 : k;
}

WeightedGraph dense_weighted(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto g = make_erdos_renyi(n, std::min(1.0, 16.0 / static_cast<double>(n)),
                            rng);
  assign_random_uniform_latency(g, 1, 64, rng);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed", "max_n"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 17));
  const auto max_n = static_cast<std::size_t>(args.get_int("max_n", 2048));

  std::printf("E8  Lemma 13 / Theorem 14: spanner size, out-degree and "
              "stretch\n\n");

  Table t1({"n", "k=log2(n)", "edges(G)", "arcs(S)", "arcs/n", "max_outdeg",
            "stretch(sampled)", "2k-1"});
  for (std::size_t n = 128; n <= max_n; n *= 2) {
    const auto g = dense_weighted(n, seed + n);
    const std::size_t k = ceil_log2(n);
    Rng rng(seed * 3 + n);
    const auto spanner = build_baswana_sen_spanner(g, {k, 0}, rng);
    Rng check_rng(seed * 5 + n);
    const auto stats = check_spanner_sampled(g, spanner, 12, check_rng);
    t1.add(n, k, g.num_edges(), stats.num_arcs,
           static_cast<double>(stats.num_arcs) / static_cast<double>(n),
           stats.max_out_degree, stats.max_stretch,
           static_cast<double>(2 * k - 1));
  }
  t1.print("Part 1: n sweep at k = log2(n)");

  Table t2({"k", "arcs(S)", "max_outdeg", "stretch(exact)", "2k-1"});
  const auto g_fixed = dense_weighted(256, seed + 999);
  for (std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    Rng rng(seed * 7 + k);
    const auto spanner = build_baswana_sen_spanner(g_fixed, {k, 0}, rng);
    const auto stats = check_spanner_exact(g_fixed, spanner);
    t2.add(k, stats.num_arcs, stats.max_out_degree, stats.max_stretch,
           static_cast<double>(2 * k - 1));
  }
  t2.print("Part 2: k sweep at n = 256 (stretch/size trade-off)");

  Table t3({"n_hat", "arcs(S)", "max_outdeg", "stretch(exact)"});
  const std::size_t n0 = 256, k0 = 8;
  for (double c : {1.0, 1.5, 2.0}) {
    const auto n_hat = static_cast<std::size_t>(
        std::pow(static_cast<double>(n0), c));
    Rng rng(seed * 11 + n_hat);
    const auto spanner =
        build_baswana_sen_spanner(g_fixed, {k0, n_hat}, rng);
    const auto stats = check_spanner_exact(g_fixed, spanner);
    t3.add(n_hat, stats.num_arcs, stats.max_out_degree, stats.max_stretch);
  }
  t3.print("Part 3: n_hat = n^c inflation at n = 256, k = 8 (Lemma 13)");

  // Ablation: the sequential greedy (2k-1)-spanner, the sparsest-known
  // baseline. Baswana-Sen trades some size for k-hop locality (what the
  // paper's gossip-model construction needs).
  Table t4({"k", "greedy_arcs", "greedy_stretch", "bs_arcs",
            "bs_stretch"});
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto greedy = build_greedy_spanner(g_fixed, k);
    const auto gstats = check_spanner_exact(g_fixed, greedy);
    Rng rng(seed * 13 + k);
    const auto bs = build_baswana_sen_spanner(g_fixed, {k, 0}, rng);
    const auto bstats = check_spanner_exact(g_fixed, bs);
    t4.add(k, gstats.num_arcs, gstats.max_stretch, bstats.num_arcs,
           bstats.max_stretch);
  }
  t4.print("Part 4 (ablation): greedy baseline vs Baswana-Sen at n = 256");

  std::printf(
      "\nshape checks: arcs/n stays O(log n); max out-degree stays "
      "O(log n); stretch always <= 2k-1; inflating n_hat to n^2 degrades "
      "size only mildly (the n^{c/k} factor); greedy is sparser but "
      "inherently sequential — the locality cost Baswana-Sen pays.\n");
  return 0;
}
