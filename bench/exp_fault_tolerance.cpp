// A1 (ablation) — Conclusion: "push-pull is relatively robust to
// failures, while our other approaches are not."
//
// Part 1: broadcast under increasing link-loss rates — push-pull
// completes with graceful slowdown.
// Part 2: node crashes mid-run — push-pull informs all survivors; RR
// broadcast over the sparse spanner loses every rumor routed through a
// crashed relay.
// Part 3: latency jitter (footnote 1) — push-pull is oblivious to it.

#include <cstdio>

#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "trials", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 43));

  std::printf("A1  Robustness ablation (Conclusion)\n\n");

  Rng gen(seed);
  auto g = make_erdos_renyi(n, std::min(1.0, 10.0 / n), gen);
  assign_two_level_latency(g, 1, 12, 0.7, gen);

  // ---- Part 1: link loss ------------------------------------------
  Table t1({"drop_prob", "completed_runs", "mean_rounds", "mean_dropped"});
  for (double p : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    Accumulator rounds, dropped;
    int completed = 0;
    for (int t = 0; t < trials; ++t) {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, 0,
                              Rng(seed + static_cast<std::uint64_t>(t)));
      FaultPlan plan(n, seed * 3 + static_cast<std::uint64_t>(t));
      plan.set_link_drop_probability(p);
      SimOptions opts;
      plan.apply(opts);
      opts.max_rounds = 1'000'000;
      const SimResult r = run_gossip(g, proto, opts);
      if (r.completed) {
        ++completed;
        rounds.add(static_cast<double>(r.rounds));
      }
      dropped.add(static_cast<double>(r.messages_dropped));
    }
    t1.add(p, completed, rounds.count() ? rounds.mean() : 0.0,
           dropped.mean());
  }
  t1.print("Part 1: push-pull broadcast under link loss "
           "(graceful degradation)");

  // ---- Part 2: crashes --------------------------------------------
  // Push-pull runs on the full graph and reaches every survivor; a
  // sparse dissemination overlay (the greedy spanner — near-tree, the
  // cheapest overlay one would deploy) is partitioned when an internal
  // relay dies, losing rumor pairs even between alive nodes.
  Table t2({"crashed", "pp_survivors_informed", "overlay_pairs_lost"});
  for (std::size_t crashes : {0u, 2u, 4u, 8u}) {
    double pp_frac = 0.0;
    double rr_lost = 0.0;
    for (int t = 0; t < trials; ++t) {
      FaultPlan plan(n, seed * 7 + crashes * 101 +
                            static_cast<std::uint64_t>(t));
      if (crashes > 0) plan.crash_random_nodes(crashes, 0, /*spare=*/0);
      {
        NetworkView view(g, false);
        PushPullBroadcast proto(view, 0,
                                Rng(seed + 31 * static_cast<std::uint64_t>(t)));
        SimOptions opts;
        plan.apply(opts);
        opts.max_rounds = 20'000;  // far beyond the lossless ~10 rounds
        run_gossip(g, proto, opts);
        plan.detach(opts);  // the plan is re-applied below
        std::size_t informed = 0, alive = 0;
        for (NodeId v = 0; v < n; ++v) {
          if (plan.crashed(v, 1'000'000'000)) continue;
          ++alive;
          if (proto.informed(v)) ++informed;
        }
        pp_frac += static_cast<double>(informed) /
                   static_cast<double>(alive) / trials;
      }
      {
        const auto overlay = build_greedy_spanner(g, 3);
        NetworkView view(g, true);
        RRBroadcast proto(view, overlay, g.max_latency() * 12,
                          own_id_rumors(n));
        SimOptions opts;
        plan.apply(opts);
        opts.max_rounds = proto.budget() * 2;
        run_gossip(g, proto, opts);
        std::size_t missing = 0, alive_pairs = 0;
        for (NodeId v = 0; v < n; ++v) {
          if (plan.crashed(v, 1'000'000'000)) continue;
          for (NodeId u = 0; u < n; ++u) {
            if (u == v || plan.crashed(u, 1'000'000'000)) continue;
            ++alive_pairs;
            if (!proto.rumors()[v].test(u)) ++missing;
          }
        }
        rr_lost += static_cast<double>(missing) /
                   static_cast<double>(alive_pairs) / trials;
      }
    }
    t2.add(crashes, pp_frac, rr_lost);
  }
  t2.print("Part 2: crashes at round 0 — push-pull informs all "
           "survivors; the sparse overlay loses alive-pair rumors");

  // ---- Part 3: jitter -----------------------------------------------
  Table t3({"jitter", "pp_completed", "mean_rounds"});
  for (Latency spread : {0, 2, 6, 10}) {
    Accumulator rounds;
    int completed = 0;
    for (int t = 0; t < trials; ++t) {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, 0,
                              Rng(seed + 91 * static_cast<std::uint64_t>(t)));
      SimOptions opts;
      if (spread > 0)
        opts.latency_jitter = make_uniform_jitter(
            spread, seed * 13 + static_cast<std::uint64_t>(t));
      opts.max_rounds = 1'000'000;
      const SimResult r = run_gossip(g, proto, opts);
      if (r.completed) {
        ++completed;
        rounds.add(static_cast<double>(r.rounds));
      }
    }
    t3.add(static_cast<long long>(spread), completed, rounds.mean());
  }
  t3.print("Part 3: push-pull under latency jitter (footnote 1) — "
           "oblivious to fluctuation");
  return 0;
}
