// A4 (ablation) — local broadcast subroutines (Section 5.1): the paper
// builds on deterministic DTG (O(ℓ log² n)); the randomized alternative
// contacts a uniformly random not-yet-heard neighbor per superround.
//
// Part 1: rounds and message bits of ℓ-DTG vs the randomized subroutine
// across topologies.
// Part 2: EID end-to-end with each discovery subroutine.

#include <cstdio>

#include "analysis/distance.h"
#include "core/dtg.h"
#include "core/eid.h"
#include "core/random_local_broadcast.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed"});
  const int trials = static_cast<int>(args.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 59));

  std::printf("A4  Local-broadcast subroutine ablation (Section 5.1)\n\n");

  struct Cfg { const char* name; WeightedGraph g; Latency ell; };
  Rng gen(seed);
  Cfg cfgs[] = {
      {"clique64", make_clique(64), 1},
      {"star64", make_star(64), 1},
      {"grid8x8_lat3",
       [] {
         auto g = make_grid(8, 8);
         assign_uniform_latency(g, 3);
         return g;
       }(),
       3},
      {"er64_lat1..4",
       [&] {
         auto g = make_erdos_renyi(64, 0.15, gen);
         assign_random_uniform_latency(g, 1, 4, gen);
         return g;
       }(),
       4},
  };

  Table t1({"graph", "dtg_rounds", "dtg_Mbits", "rnd_rounds",
            "rnd_Mbits", "rnd/dtg rounds"});
  for (Cfg& c : cfgs) {
    SimResult dtg_result;
    {
      NetworkView view(c.g, true);
      DtgLocalBroadcast proto(
          view, c.ell, DtgLocalBroadcast::own_id_rumors(c.g.num_nodes()));
      SimOptions opts;
      opts.stop_when_idle = false;
      opts.max_rounds = 2'000'000;
      dtg_result = run_gossip(c.g, proto, opts);
    }
    Accumulator rnd_rounds, rnd_bits;
    for (int t = 0; t < trials; ++t) {
      NetworkView view(c.g, true);
      RandomLocalBroadcast proto(
          view, c.ell,
          RandomLocalBroadcast::own_id_rumors(c.g.num_nodes()),
          Rng(seed + static_cast<std::uint64_t>(t) * 31));
      SimOptions opts;
      opts.stop_when_idle = false;
      opts.max_rounds = 2'000'000;
      const SimResult r = run_gossip(c.g, proto, opts);
      rnd_rounds.add(static_cast<double>(r.rounds));
      rnd_bits.add(static_cast<double>(r.payload_bits));
    }
    t1.add(c.name, dtg_result.rounds,
           static_cast<double>(dtg_result.payload_bits) / 1e6,
           rnd_rounds.mean(), rnd_bits.mean() / 1e6,
           rnd_rounds.mean() / static_cast<double>(dtg_result.rounds));
  }
  t1.print("Part 1: deterministic DTG vs randomized local broadcast");

  Table t2({"graph", "eid_dtg_rounds", "eid_rnd_rounds", "both complete"});
  struct ECfg { const char* name; WeightedGraph g; };
  ECfg ecfgs[] = {
      {"ring4x4_bridge6", make_ring_of_cliques(4, 4, 6)},
      {"grid5x5_lat2",
       [] {
         auto g = make_grid(5, 5);
         assign_uniform_latency(g, 2);
         return g;
       }()},
  };
  for (ECfg& c : ecfgs) {
    const Latency d = weighted_diameter(c.g);
    const std::size_t n = c.g.num_nodes();
    Round rounds[2] = {0, 0};
    bool ok = true;
    for (int variant = 0; variant < 2; ++variant) {
      Rng rng(seed + 7);
      EidOptions opts;
      opts.diameter_estimate = d;
      opts.randomized_local_broadcast = (variant == 1);
      const EidOutcome out = run_eid(c.g, opts, own_id_rumors(n), rng);
      rounds[variant] = out.sim.rounds;
      ok = ok && out.all_to_all;
    }
    t2.add(c.name, rounds[0], rounds[1], ok ? "yes" : "NO");
  }
  t2.print("Part 2: EID end-to-end with each discovery subroutine");
  std::printf(
      "\nreading: the randomized subroutine is typically faster on "
      "average (e.g. a star finishes in one superround: every leaf "
      "contacts the hub simultaneously), but only DTG carries the "
      "deterministic O(ell log^2 n) worst-case guarantee the paper's "
      "Theorem 14 analysis builds on. Both leave EID correct.\n");
  return 0;
}
