// A3 (ablation) — the model variations discussed in the paper:
//
// Part 1: push vs push-pull (footnote 2: without pull a star needs
// Ω(nD) time; push-pull needs ~D).
// Part 2: blocking vs non-blocking communication (Appendix E's model).
// Part 3: bounded in-degree (Conclusion, citing Daum et al.): capping
// accepted incoming connections per round.

#include <cmath>
#include <cstdio>
#include <string>

#include "core/flooding.h"
#include "core/push_only.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

namespace {

double mean_rounds_push_only(const WeightedGraph& g, int trials,
                             std::uint64_t seed) {
  Accumulator acc;
  for (int t = 0; t < trials; ++t) {
    NetworkView view(g, false);
    PushOnlyBroadcast proto(view, 0, Rng(seed + t));
    SimOptions opts;
    opts.max_rounds = 5'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    acc.add(static_cast<double>(r.rounds));
  }
  return acc.mean();
}

double mean_rounds_push_pull(const WeightedGraph& g, int trials,
                             std::uint64_t seed, bool blocking = false) {
  Accumulator acc;
  for (int t = 0; t < trials; ++t) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(seed + t));
    SimOptions opts;
    opts.blocking = blocking;
    opts.max_rounds = 5'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    acc.add(static_cast<double>(r.rounds));
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 53));

  std::printf("A3  Model-variation ablations\n\n");

  // ---- Part 1: push-only / pull-only vs push-pull on weighted stars --
  Table t1({"n", "edge_latency D", "push_only", "pull_only", "push_pull",
            "n*ln(n) (theory, push)", "push_only/push_pull"});
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    const Latency lat = 10;
    auto g = make_star(n);
    assign_uniform_latency(g, lat);
    const double po = mean_rounds_push_only(g, trials, seed);
    Accumulator pull_acc;
    for (int t = 0; t < trials; ++t) {
      NetworkView view(g, false);
      PullOnlyBroadcast proto(view, 0, Rng(seed + 400 + t));
      SimOptions opts;
      opts.max_rounds = 5'000'000;
      pull_acc.add(static_cast<double>(run_gossip(g, proto, opts).rounds));
    }
    const double pp = mean_rounds_push_pull(g, trials, seed + 1);
    const double theory =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    t1.add(n, static_cast<long long>(lat), po, pull_acc.mean(), pp, theory,
           po / pp);
  }
  t1.print("Part 1: footnote 2 — push-only pays ~n ln n on a star while "
           "push-pull (and pull-only, from the hub) finishes in ~D");

  // ---- Part 2: blocking model ---------------------------------------
  Table t2({"graph", "non_blocking", "blocking", "slowdown"});
  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      {"clique24_lat8",
       [] {
         auto g = make_clique(24);
         assign_uniform_latency(g, 8);
         return g;
       }()},
      {"cycle24_lat4",
       [] {
         auto g = make_cycle(24);
         assign_uniform_latency(g, 4);
         return g;
       }()},
      {"grid5x5_lat6",
       [] {
         auto g = make_grid(5, 5);
         assign_uniform_latency(g, 6);
         return g;
       }()},
  };
  for (Cfg& c : cfgs) {
    const double nb = mean_rounds_push_pull(c.g, trials, seed + 2, false);
    const double bl = mean_rounds_push_pull(c.g, trials, seed + 2, true);
    t2.add(c.name, nb, bl, bl / nb);
  }
  t2.print("Part 2: Appendix E's blocking model — losing the "
           "non-blocking pipeline costs a latency-dependent factor");

  // ---- Part 3: bounded in-degree -------------------------------------
  Table t3({"in_degree_cap", "rounds", "rejected", "complete"});
  const auto star = make_star(48);
  for (std::size_t cap : {0u, 1u, 2u, 4u, 8u}) {
    NetworkView view(star, false);
    RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                             own_id_rumors(48));
    SimOptions opts;
    opts.max_incoming_per_round = cap;
    opts.max_rounds = 1'000'000;
    const SimResult r = run_gossip(star, proto, opts);
    t3.add(cap == 0 ? std::string("unlimited") : std::to_string(cap),
           r.rounds, r.exchanges_rejected, r.completed ? "yes" : "NO");
  }
  t3.print("Part 3: Conclusion's bounded in-degree model on a 48-star — "
           "the hub's cap throttles dissemination");
  return 0;
}
