// E7 — Theorem 12: push-pull completes broadcast whp in
// O((ℓ*/φ*) log n) rounds.
//
// Part 1: small graphs with EXACT weighted conductance — measure
// push-pull single-source broadcast and report rounds / ((ℓ*/φ*) log n);
// the ratio column should stay within a small constant band across very
// different topologies, showing (ℓ*/φ*) log n is the right yardstick.
//
// Part 2: scaling on layered rings (closed-form φ* = Θ(α)) — rounds
// should grow linearly in ℓ*/φ* as the ring stretches.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "analysis/conductance.h"
#include "core/push_pull.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

namespace {

std::size_t g_threads = 1;

double measure_push_pull(const WeightedGraph& g, int trials,
                         std::uint64_t seed) {
  // Workspace overload: the per-worker protocol instance and engine
  // calendar queue are recycled across all trials of the sweep.
  const TrialAggregate agg = run_trials(
      static_cast<std::size_t>(trials), g_threads, seed,
      [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
        NetworkView view(g, false);
        auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
        proto.reset(view, 0, rng);
        SimOptions opts;
        opts.max_rounds = 20'000'000;
        opts.workspace = &ws;
        return run_gossip(g, proto, opts);
      });
  if (!agg.all_completed())
    std::printf("  [warn] push-pull incomplete in %zu/%zu trials\n",
                agg.trials.size() - agg.num_completed, agg.trials.size());
  return agg.mean_rounds();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed", "threads"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 13));
  g_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::printf("E7  Theorem 12: push-pull broadcast in O((ell*/phi*) log n)\n");
  std::printf("    mean over %d trials per row\n\n", trials);

  // ---- Part 1: exact-conductance instances -------------------------
  struct Named {
    std::string name;
    std::function<WeightedGraph(Rng&)> build;
  };
  const Named families[] = {
      {"clique16_unit", [](Rng&) { return make_clique(16); }},
      {"cycle18_unit", [](Rng&) { return make_cycle(18); }},
      {"grid4x4_lat3",
       [](Rng&) {
         auto g = make_grid(4, 4);
         assign_uniform_latency(g, 3);
         return g;
       }},
      {"ring4x4_bridge8",
       [](Rng&) { return make_ring_of_cliques(4, 4, 8); }},
      {"dumbbell7_bridge12", [](Rng&) { return make_dumbbell(7, 1, 12); }},
      {"er18_twolevel",
       [](Rng& r) {
         auto g = make_erdos_renyi(18, 0.35, r);
         assign_two_level_latency(g, 1, 12, 0.5, r);
         return g;
       }},
      {"star16_lat5",
       [](Rng&) {
         auto g = make_star(16);
         assign_uniform_latency(g, 5);
         return g;
       }},
  };

  Table t1({"graph", "n", "phi*", "ell*", "bound=(ell*/phi*)logn",
            "pushpull_rounds", "rounds/bound"});
  for (const Named& f : families) {
    Rng build_rng(seed);
    const WeightedGraph g = f.build(build_rng);
    const auto wc = weighted_conductance_exact(g, 22);
    const double logn = std::log2(static_cast<double>(g.num_nodes()));
    const double bound =
        static_cast<double>(wc.ell_star) / wc.phi_star * logn;
    const double rounds = measure_push_pull(g, trials, seed + 11);
    t1.add(f.name, g.num_nodes(), wc.phi_star,
           static_cast<long long>(wc.ell_star), bound, rounds,
           rounds / bound);
  }
  t1.print("Part 1: measured rounds vs the (ell*/phi*) log n yardstick");

  // ---- Part 2: scaling on layered rings ----------------------------
  Table t2({"layers", "s", "ell", "ell/phi~(k/2)ell*s", "pushpull_rounds",
            "rounds/(ell/phi)"});
  for (std::size_t layers : {4u, 8u, 16u, 32u}) {
    const std::size_t s = 8;
    const Latency ell = 6;
    Rng rng(seed + layers);
    const auto ring = make_layered_ring(layers, s, ell, rng);
    // phi_ell ~ 2s^2 / ((N/2)(3s-1)); ell/phi ~ ell * k (3s-1)/(4s).
    const double phi = ring.analytic_phi_ell_cut();
    const double yardstick = static_cast<double>(ell) / phi;
    const double rounds = measure_push_pull(ring.graph, trials, seed + 29);
    t2.add(layers, s, static_cast<long long>(ell), yardstick, rounds,
           rounds / yardstick);
  }
  t2.print("Part 2: rounds scale linearly in ell/phi as the ring grows");
  std::printf(
      "\nshape checks: Part 1 'rounds/bound' <= O(1) on every topology — "
      "the Theorem 12 upper bound holds everywhere (it is loose on graphs "
      "like the dumbbell where a single slow bridge drives phi* down);\n"
      "Part 2 ratio stays flat as the ring grows — the measured cost "
      "scales exactly like ell/phi.\n");
  return 0;
}
