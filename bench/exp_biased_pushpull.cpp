// A8 (extension) — the Conclusion asks whether "a more careful choice of
// neighbors" helps. With known latencies, biasing push-pull's neighbor
// choice by 1/latency^ρ (spatial-gossip style) concentrates exchanges on
// the fast subgraph. This bench sweeps ρ on two-level graphs and shows
// the win grows with the fast/slow latency gap — and that ρ too large is
// safe but yields diminishing returns.

#include <cstdio>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

namespace {

double mean_rounds_biased(const WeightedGraph& g, double rho, int trials,
                          std::uint64_t seed) {
  Accumulator acc;
  for (int t = 0; t < trials; ++t) {
    NetworkView view(g, true);
    BiasedPushPullBroadcast proto(view, 0, rho,
                                  Rng(seed + static_cast<std::uint64_t>(t)));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    acc.add(static_cast<double>(run_gossip(g, proto, opts).rounds));
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "trials", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 48));
  const int trials = static_cast<int>(args.get_int("trials", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 73));

  std::printf("A8  Latency-biased neighbor choice (Conclusion's open "
              "question)\n");
  std::printf("    clique of %zu, 40%% fast edges; mean over %d trials\n",
              n, trials);

  Table t({"slow_latency", "rho=0 (uniform)", "rho=1", "rho=2", "rho=4",
           "best_speedup"});
  for (Latency slow : {4, 16, 64, 256}) {
    auto g = make_clique(n);
    Rng gen(seed + static_cast<std::uint64_t>(slow));
    assign_two_level_latency(g, 1, slow, 0.4, gen);
    const double r0 = mean_rounds_biased(g, 0.0, trials, seed);
    const double r1 = mean_rounds_biased(g, 1.0, trials, seed + 1);
    const double r2 = mean_rounds_biased(g, 2.0, trials, seed + 2);
    const double r4 = mean_rounds_biased(g, 4.0, trials, seed + 3);
    const double best = std::min({r1, r2, r4});
    t.add(static_cast<long long>(slow), r0, r1, r2, r4, r0 / best);
  }
  t.print("broadcast rounds vs bias exponent rho");
  std::printf(
      "\nreading: the speedup of biased selection grows with the fast/slow "
      "gap — careful neighbor choice does help once latencies are known, "
      "consistent with the spanner algorithm's premise; uniform push-pull "
      "remains the only option when they are not.\n");
  return 0;
}
