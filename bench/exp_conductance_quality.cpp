// A7 (tooling validation) — the spectral sweep bound used for large
// graphs vs exact Gray-code enumeration on small ones. The sweep is an
// upper bound within Cheeger-style slack; this table quantifies the gap
// so the large-scale experiments' sweep numbers can be trusted.

#include <cstdio>

#include "analysis/conductance.h"
#include "analysis/spectral.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 71));

  std::printf("A7  Spectral sweep vs exact weighted conductance "
              "(n <= 16, %d trials per family)\n", trials);

  struct Cfg { const char* name; int kind; };
  const Cfg cfgs[] = {{"er16_p0.4_lat1..4", 0},
                      {"cycle16", 1},
                      {"dumbbell6_bridge9", 2},
                      {"grid4x4_twolevel", 3}};

  Table t({"family", "mean exact phi*/ell*", "mean sweep phi*/ell*",
           "mean ratio sweep/exact", "worst ratio"});
  for (const Cfg& c : cfgs) {
    Accumulator exact_acc, sweep_acc, ratio_acc;
    double worst = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      Rng gen(seed + static_cast<std::uint64_t>(trial) * 977);
      WeightedGraph g = [&]() {
        switch (c.kind) {
          case 0: {
            auto gg = make_erdos_renyi(16, 0.4, gen);
            assign_random_uniform_latency(gg, 1, 4, gen);
            return gg;
          }
          case 1:
            return make_cycle(16);
          case 2:
            return make_dumbbell(6, 1, 9);
          default: {
            auto gg = make_grid(4, 4);
            assign_two_level_latency(gg, 1, 6, 0.5, gen);
            return gg;
          }
        }
      }();
      const auto exact = weighted_conductance_exact(g);
      Rng srng(seed * 3 + static_cast<std::uint64_t>(trial));
      const auto sweep = weighted_conductance_sweep(g, 300, srng);
      // Compare the phi*/ell* objective (Definition 2's maximized
      // quantity): the sweep's per-level upper bounds guarantee
      // sweep_obj >= exact_obj, even when the argmax level shifts.
      const double exact_obj =
          exact.phi_star / static_cast<double>(exact.ell_star);
      const double sweep_obj =
          sweep.phi_star / static_cast<double>(sweep.ell_star);
      exact_acc.add(exact_obj);
      sweep_acc.add(sweep_obj);
      if (exact_obj > 0) {
        const double ratio = sweep_obj / exact_obj;
        ratio_acc.add(ratio);
        worst = std::max(worst, ratio);
      }
    }
    t.add(c.name, exact_acc.mean(), sweep_acc.mean(), ratio_acc.mean(),
          worst);
  }
  t.print("sweep upper bound quality");
  std::printf(
      "\nreading: ratios >= 1 (the sweep never underestimates) and stay "
      "within the small Cheeger-style factor the experiments assume.\n");
  return 0;
}
