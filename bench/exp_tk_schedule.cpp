// E11 — Lemmas 24-26: the T(k) schedule solves all-to-all dissemination
// in O(D log^2 n log D) rounds without any bound on n; Path Discovery
// wraps it in guess-and-double.
//
// Part 1: D sweep — T(D) rounds vs D log^2(n) log(D).
// Part 2: n sweep at fixed small D.
// Part 3: T(D) vs EID vs Path Discovery head-to-head.

#include <cmath>
#include <cstdio>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/rr_broadcast.h"
#include "core/tk_schedule.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

double tk_yardstick(double d, double n) {
  const double l = std::log2(n);
  return d * l * l * std::max(1.0, std::log2(d));
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 31));

  std::printf("E11 Lemmas 24-26: the T(k) recursive DTG schedule\n\n");

  // ---- Part 1: D sweep --------------------------------------------
  Table t1({"bridge_lat", "D", "tk_rounds", "D*log^2(n)*log(D)",
            "ratio", "complete"});
  for (Latency bridge : {1, 4, 16, 64}) {
    const auto g = make_ring_of_cliques(6, 5, bridge);
    const Latency d = weighted_diameter(g);
    const TkOutcome out =
        run_tk_schedule(g, d, own_id_rumors(g.num_nodes()));
    const double yard = tk_yardstick(static_cast<double>(d),
                                     static_cast<double>(g.num_nodes()));
    t1.add(static_cast<long long>(bridge), static_cast<long long>(d),
           out.sim.rounds, yard,
           static_cast<double>(out.sim.rounds) / yard,
           out.all_to_all ? "yes" : "NO");
  }
  t1.print("Part 1: rounds vs D log^2(n) log(D) as D grows (n = 30)");

  // ---- Part 2: n sweep --------------------------------------------
  Table t2({"n", "D", "tk_rounds", "yardstick", "ratio", "complete"});
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    Rng grng(seed + n);
    auto g = make_erdos_renyi(n, std::min(1.0, 12.0 / n), grng);
    assign_random_uniform_latency(g, 1, 4, grng);
    const Latency d = weighted_diameter(g);
    const TkOutcome out = run_tk_schedule(g, d, own_id_rumors(n));
    const double yard =
        tk_yardstick(static_cast<double>(d), static_cast<double>(n));
    t2.add(n, static_cast<long long>(d), out.sim.rounds, yard,
           static_cast<double>(out.sim.rounds) / yard,
           out.all_to_all ? "yes" : "NO");
  }
  t2.print("Part 2: rounds vs the yardstick as n grows");

  // ---- Part 3: head-to-head -----------------------------------------
  Table t3({"graph", "D", "tk(D)", "eid(D)", "path_discovery",
            "pd_final_k"});
  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      {"ring4x4_bridge8", make_ring_of_cliques(4, 4, 8)},
      {"grid4x4_lat3",
       [] {
         auto g = make_grid(4, 4);
         assign_uniform_latency(g, 3);
         return g;
       }()},
      {"dumbbell6_bridge10", make_dumbbell(6, 1, 10)},
  };
  for (Cfg& c : cfgs) {
    const Latency d = weighted_diameter(c.g);
    const std::size_t n = c.g.num_nodes();
    const TkOutcome tk = run_tk_schedule(c.g, d, own_id_rumors(n));
    Rng rng(seed + 99);
    EidOptions opts;
    opts.diameter_estimate = d;
    const EidOutcome eid = run_eid(c.g, opts, own_id_rumors(n), rng);
    const PathDiscoveryOutcome pd = run_path_discovery(c.g);
    t3.add(c.name, static_cast<long long>(d), tk.sim.rounds,
           eid.sim.rounds, pd.sim.rounds,
           static_cast<long long>(pd.final_estimate));
    if (!tk.all_to_all || !eid.all_to_all || !pd.success)
      std::printf("  [warn] incomplete run on %s\n", c.name);
  }
  t3.print("Part 3: T(D) vs EID(D) vs Path Discovery (unknown D, no "
           "n-bound needed)");
  std::printf(
      "\nshape checks: Part 1/2 ratios roughly constant; T(k) needs no "
      "upper bound on n but pays an extra log D factor vs EID "
      "(Lemma 25 vs Lemma 17).\n");
  return 0;
}
