// E13 — Section 4.2: latencies of all "important" edges (latency <= D)
// can be discovered in Δ + D rounds, after which the known-latency
// machinery applies — giving the Õ(D + Δ) branch of Theorem 20 in the
// unknown-latency model.
//
// Part 1: probe-phase cost and coverage across graph shapes.
// Part 2: full unknown-latency EID (probe + EID + check per doubling)
// vs push-pull on the same graphs.

#include <cstdio>

#include "analysis/distance.h"
#include "core/latency_discovery.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 41));

  std::printf("E13 Section 4.2: latency discovery in Delta + D rounds\n\n");

  struct Cfg { const char* name; WeightedGraph g; };
  Rng gen(seed);
  Cfg cfgs[] = {
      {"clique24_lat1..8",
       [&] {
         auto g = make_clique(24);
         assign_random_uniform_latency(g, 1, 8, gen);
         return g;
       }()},
      {"star32_lat1..6",
       [&] {
         auto g = make_star(32);
         assign_random_uniform_latency(g, 1, 6, gen);
         return g;
       }()},
      {"grid6x6_lat1..5",
       [&] {
         auto g = make_grid(6, 6);
         assign_random_uniform_latency(g, 1, 5, gen);
         return g;
       }()},
      {"er48_twolevel(1,40)",
       [&] {
         auto g = make_erdos_renyi(48, 0.2, gen);
         assign_two_level_latency(g, 1, 40, 0.7, gen);
         return g;
       }()},
  };

  Table t1({"graph", "Delta", "D", "probe_rounds", "Delta+D",
            "edges", "discovered(<=D)", "undiscovered(>D)"});
  for (Cfg& c : cfgs) {
    const Latency d = weighted_diameter(c.g);
    const DiscoveryOutcome out = discover_latencies(c.g, d);
    std::size_t slow = 0;
    for (const Edge& e : c.g.edges())
      if (e.latency > d) ++slow;
    t1.add(c.name, c.g.max_degree(), static_cast<long long>(d),
           out.sim.rounds,
           static_cast<long long>(
               static_cast<Latency>(c.g.max_degree()) + d),
           c.g.num_edges(), out.edges_discovered, slow);
  }
  t1.print("Part 1: probe phase — every latency <= D learned in "
           "Delta + D rounds");

  Table t2({"graph", "unknown_EID_rounds", "final_k", "pushpull_rounds",
            "faster"});
  for (Cfg& c : cfgs) {
    Rng rng(seed * 3 + 1);
    const UnknownLatencyEidOutcome eid =
        run_unknown_latency_eid(c.g, 0, rng);
    NetworkView view(c.g, false);
    PushPullGossip pp(view, GossipGoal::kAllToAll, 0,
                      PushPullGossip::own_id_rumors(c.g.num_nodes()),
                      Rng(seed * 5 + 2));
    SimOptions opts;
    opts.max_rounds = 5'000'000;
    const SimResult ppr = run_gossip(c.g, pp, opts);
    t2.add(c.name, eid.sim.rounds,
           static_cast<long long>(eid.final_estimate), ppr.rounds,
           eid.sim.rounds < ppr.rounds ? "discovery+EID" : "push-pull");
    if (!eid.success) std::printf("  [warn] EID branch failed on %s\n",
                                  c.name);
  }
  t2.print("Part 2: discovery + EID vs push-pull (unknown latencies)");
  std::printf(
      "\nshape check: probe rounds equal Delta + D exactly; edges slower "
      "than D stay unknown by design ('clearly we do not want to use any "
      "edge with latency > D').\n");
  return 0;
}
