// M2 — engineering micro-benchmarks: exact (Gray-code) and spectral
// conductance computations.

#include <benchmark/benchmark.h>

#include "analysis/conductance.h"
#include "analysis/spectral.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

using namespace latgossip;

static void BM_ExactConductance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  auto g = make_erdos_renyi(n, 0.4, rng);
  assign_random_uniform_latency(g, 1, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weighted_conductance_exact(g, n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactConductance)->DenseRange(10, 20, 2);

static void BM_SweepConductance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), rng);
  assign_two_level_latency(g, 1, 10, 0.5, rng);
  for (auto _ : state) {
    Rng sweep_rng(3);
    benchmark::DoNotOptimize(
        weight_ell_conductance_sweep(g, 10, 100, sweep_rng));
  }
}
BENCHMARK(BM_SweepConductance)->Range(64, 2048);
