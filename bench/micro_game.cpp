// M4 — engineering micro-benchmarks: guessing-game oracle and strategy
// throughput.

#include <benchmark/benchmark.h>

#include "game/game.h"
#include "game/strategies.h"

using namespace latgossip;

static void BM_GameSingletonAdaptive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    GuessingGame game(m, make_singleton_target(m, rng));
    AdaptiveCouponStrategy strategy(m);
    benchmark::DoNotOptimize(play_game(game, strategy, 100 * m).rounds);
  }
}
BENCHMARK(BM_GameSingletonAdaptive)->Range(64, 2048);

static void BM_GameRandomPOracle(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const TargetSet target = make_random_p_target(m, 0.05, rng);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    GuessingGame game(m, target);
    RandomPerSideStrategy strategy(m, Rng(++seed));
    benchmark::DoNotOptimize(play_game(game, strategy, 100000).rounds);
  }
}
BENCHMARK(BM_GameRandomPOracle)->Range(64, 512);
