// A2 (ablation) — Conclusion: "When latencies are unknown, push-pull
// does not require large messages. In the other cases, however, larger
// messages are needed — and there are reasons to suspect this is
// inherent."
//
// Measures total payload bits of single-rumor push-pull (1 bit per
// direction) against the rumor-set protocols (32 bits per carried rumor
// id): push-pull's totals stay near 2 bits/exchange while DTG/EID-style
// set exchanges grow with n per message.

#include <cstdio>

#include "analysis/distance.h"
#include "core/dtg.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 47));

  std::printf("A2  Message-size ablation (Conclusion)\n\n");

  Table t({"n", "protocol", "rounds", "exchanges", "total_bits",
           "bits/exchange"});
  for (std::size_t n : {32u, 64u, 128u}) {
    Rng gen(seed + n);
    auto g = make_erdos_renyi(n, std::min(1.0, 10.0 / n), gen);
    assign_random_uniform_latency(g, 1, 4, gen);
    const Latency d = weighted_diameter(g);

    {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, 0, Rng(seed * 3 + n));
      SimOptions opts;
      opts.max_rounds = 1'000'000;
      const SimResult r = run_gossip(g, proto, opts);
      t.add(n, "push-pull (1 rumor)", r.rounds, r.activations,
            r.payload_bits,
            static_cast<double>(r.payload_bits) /
                static_cast<double>(r.activations));
    }
    {
      NetworkView view(g, false);
      PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                           PushPullGossip::own_id_rumors(n),
                           Rng(seed * 5 + n));
      SimOptions opts;
      opts.max_rounds = 1'000'000;
      const SimResult r = run_gossip(g, proto, opts);
      t.add(n, "push-pull (rumor sets)", r.rounds, r.activations,
            r.payload_bits,
            static_cast<double>(r.payload_bits) /
                static_cast<double>(r.activations));
    }
    {
      NetworkView view(g, true);
      DtgLocalBroadcast proto(view, d, DtgLocalBroadcast::own_id_rumors(n));
      SimOptions opts;
      opts.stop_when_idle = false;
      opts.max_rounds = 1'000'000;
      const SimResult r = run_gossip(g, proto, opts);
      t.add(n, "D-DTG (local bcast)", r.rounds, r.activations,
            r.payload_bits,
            static_cast<double>(r.payload_bits) /
                static_cast<double>(r.activations));
    }
    {
      std::size_t logn = 0;
      while ((1u << logn) < n) ++logn;
      Rng srng(seed * 7 + n);
      const auto spanner = build_baswana_sen_spanner(g, {logn, 0}, srng);
      NetworkView view(g, true);
      RRBroadcast proto(view, spanner,
                        d * static_cast<Latency>(2 * logn - 1),
                        own_id_rumors(n));
      SimOptions opts;
      opts.max_rounds = proto.budget() * 2;
      const SimResult r = run_gossip(g, proto, opts);
      t.add(n, "RR on spanner", r.rounds, r.activations, r.payload_bits,
            static_cast<double>(r.payload_bits) /
                static_cast<double>(r.activations));
    }
  }
  t.print("payload accounting: 1 bit for single-rumor push-pull, 32 bits "
          "per carried rumor id otherwise");
  std::printf(
      "\nshape check: push-pull's bits/exchange is constant (2) at every "
      "n; the set-based protocols grow toward Theta(n * 32) bits per "
      "exchange — the spanner route inherently ships large messages.\n");
  return 0;
}
