// A6 (application) — anti-entropy convergence time tracks the paper's
// yardsticks: on a replica fleet, the time for LWW anti-entropy (over
// push-pull) to converge is governed by (ℓ*/φ*) log n exactly like
// abstract rumor dissemination — the application-level confirmation of
// Theorem 12.

#include <cmath>
#include <cstdio>

#include "analysis/conductance.h"
#include "app/anti_entropy.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

namespace {

std::vector<KvStore> one_write_each(std::size_t n) {
  std::vector<KvStore> stores;
  for (NodeId v = 0; v < n; ++v) {
    KvStore s(v);
    s.put("row-" + std::to_string(v), "x");
    stores.push_back(std::move(s));
  }
  return stores;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed"});
  const int trials = static_cast<int>(args.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 67));

  std::printf("A6  Anti-entropy convergence vs the Theorem 12 yardstick\n");
  std::printf("    LWW store, one write per replica; mean over %d trials\n",
              trials);

  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      {"clique16_unit", make_clique(16)},
      {"cycle18_unit", make_cycle(18)},
      {"ring4x4_bridge8", make_ring_of_cliques(4, 4, 8)},
      {"dumbbell7_bridge12", make_dumbbell(7, 1, 12)},
      {"grid4x4_lat3",
       [] {
         auto g = make_grid(4, 4);
         assign_uniform_latency(g, 3);
         return g;
       }()},
  };

  Table t({"fleet", "phi*", "ell*", "bound=(ell*/phi*)logn",
           "anti_entropy_rounds", "rounds/bound", "MB_shipped"});
  for (Cfg& c : cfgs) {
    const std::size_t n = c.g.num_nodes();
    const auto wc = weighted_conductance_exact(c.g, 22);
    const double bound = static_cast<double>(wc.ell_star) / wc.phi_star *
                         std::log2(static_cast<double>(n));
    Accumulator rounds, bits;
    for (int t2 = 0; t2 < trials; ++t2) {
      NetworkView view(c.g, false);
      AntiEntropy proto(view, one_write_each(n),
                        Rng(seed + static_cast<std::uint64_t>(t2) * 131));
      SimOptions opts;
      opts.max_rounds = 5'000'000;
      const SimResult r = run_gossip(c.g, proto, opts);
      if (!r.completed) std::printf("  [warn] not converged on %s\n",
                                    c.name);
      rounds.add(static_cast<double>(r.rounds));
      bits.add(static_cast<double>(r.payload_bits));
    }
    t.add(c.name, wc.phi_star, static_cast<long long>(wc.ell_star), bound,
          rounds.mean(), rounds.mean() / bound, bits.mean() / 8e6);
  }
  t.print("replica convergence across fleet topologies");
  std::printf(
      "\nshape check: 'rounds/bound' stays within the same O(1) band as "
      "the abstract dissemination experiment (E7) — the application "
      "inherits the paper's bounds unchanged.\n");
  return 0;
}
