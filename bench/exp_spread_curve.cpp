// A5 (figure) — rumor spread curves: fraction of informed nodes per
// round for push-pull broadcast on contrasting topologies. The classic
// S-curve on well-connected graphs; a latency-staircase on bottlenecked
// weighted graphs (each step = one slow crossing). This is the
// round-level picture behind Theorem 12's aggregate bound.
//
// Deciles are averaged over --trials independent runs dispatched
// through the deterministic parallel trial runner (--threads, 0 = all
// cores); results are identical for any thread count.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/push_pull.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

/// Rounds at which the informed fraction first reaches each decile.
std::vector<Round> decile_rounds(const PushPullBroadcast& proto,
                                 std::size_t n) {
  std::vector<Round> informed_at;
  for (NodeId v = 0; v < n; ++v)
    if (proto.inform_round(v) >= 0) informed_at.push_back(
        proto.inform_round(v));
  std::sort(informed_at.begin(), informed_at.end());
  std::vector<Round> deciles;
  for (int d = 1; d <= 10; ++d) {
    const std::size_t idx =
        std::min(informed_at.size() - 1,
                 (informed_at.size() * d) / 10 == 0
                     ? 0
                     : (informed_at.size() * d) / 10 - 1);
    deciles.push_back(informed_at[idx]);
  }
  return deciles;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed", "trials", "threads", "million"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 61));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 5));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  // --million appends an n = 10^6 random-regular row built through the
  // streaming CSR path (no intermediate edge list; ~100 MB graph + a
  // bool per node of protocol state). Off by default so the quick
  // figure stays quick.
  const bool million = args.get_bool("million");

  std::printf("A5  Spread curves: round at which each decile of nodes is "
              "informed (push-pull broadcast, mean of %zu trials)\n\n",
              trials);

  struct Cfg { const char* name; WeightedGraph g; };
  Rng gen(seed);
  std::vector<Cfg> cfgs;
  cfgs.push_back({"clique128_unit", make_clique(128)});
  cfgs.push_back({"er128_twolevel(1,30)", [&] {
                    auto g = make_erdos_renyi(128, 0.1, gen);
                    assign_two_level_latency(g, 1, 30, 0.7, gen);
                    return g;
                  }()});
  cfgs.push_back({"pathcliques8x16_bridge25", make_path_of_cliques(8, 16, 25)});
  cfgs.push_back({"ring8x16_cross20", [&] {
                    Rng r(seed + 9);
                    return make_layered_ring(8, 16, 20, r).graph;
                  }()});
  if (million)
    cfgs.push_back({"regular1M_d8_lat(1,8)", [&] {
                      auto g = make_random_regular_streaming(1'000'000, 8,
                                                             seed + 17);
                      Rng r(seed + 18);
                      assign_random_uniform_latency(g, 1, 8, r);
                      return g;
                    }()});

  Table t({"graph", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%",
           "90%", "100%"});
  for (Cfg& c : cfgs) {
    const std::size_t n = c.g.num_nodes();
    // Each trial writes its decile vector into its own slot; averaging
    // afterwards in trial order keeps the output thread-count invariant.
    std::vector<std::vector<Round>> per_trial(trials);
    const TrialAggregate agg = run_trials(
        trials, threads, seed * 3 + 1,
        [&](std::size_t trial, Rng rng, TrialWorkspace& ws) {
          NetworkView view(c.g, false);
          auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
          proto.reset(view, 0, rng);
          SimOptions opts;
          opts.max_rounds = 5'000'000;
          opts.workspace = &ws;
          const SimResult r = run_gossip(c.g, proto, opts);
          per_trial[trial] = decile_rounds(proto, n);
          return r;
        });
    if (!agg.all_completed())
      std::printf("  [warn] incomplete on %s (%zu/%zu trials)\n", c.name,
                  agg.trials.size() - agg.num_completed, agg.trials.size());
    std::vector<double> mean_decile(10, 0.0);
    for (const auto& deciles : per_trial)
      for (int d = 0; d < 10; ++d)
        mean_decile[d] +=
            static_cast<double>(deciles[d]) / static_cast<double>(trials);
    t.add(c.name, mean_decile[0], mean_decile[1], mean_decile[2],
          mean_decile[3], mean_decile[4], mean_decile[5], mean_decile[6],
          mean_decile[7], mean_decile[8], mean_decile[9]);
  }
  t.print("rounds to reach each informed-fraction decile");
  std::printf(
      "\nreading: the unit clique shows the classic logistic S-curve "
      "(all deciles within a few rounds); bottlenecked weighted families "
      "show a staircase — each bridge/cross latency crossing adds a "
      "plateau, which is what the ell*/phi* yardstick aggregates.%s\n",
      million ? "" :
      "\n(pass --million for an n = 10^6 random-regular row via the "
      "streaming CSR generators — the asymptotic regime the paper's "
      "bounds target.)");
  return 0;
}
