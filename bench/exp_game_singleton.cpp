// E1 — Lemma 4: Guessing(2m, |T|=1) requires Ω(m) rounds.
//
// Sweeps m and plays the uniform-singleton game with three strategies:
// the adaptive fresh-pair strategy (near-optimal general protocol), the
// deterministic systematic sweep, and the random per-side strategy that
// push-pull induces. All three must grow linearly in m; the log-log fit
// exponent printed at the end should be ~1.

#include <cstdio>
#include <vector>

#include "game/game.h"
#include "game/strategies.h"
#include "util/args.h"
#include "util/fit.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

namespace {

double mean_rounds(std::size_t m, int trials, std::uint64_t seed,
                   const char* which) {
  Accumulator acc;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed + static_cast<std::uint64_t>(t) * 1000003);
    GuessingGame game(m, make_singleton_target(m, rng));
    PlayResult r;
    if (std::string(which) == "adaptive") {
      AdaptiveCouponStrategy s(m);
      r = play_game(game, s, 100 * m);
    } else if (std::string(which) == "systematic") {
      SystematicSweepStrategy s(m);
      r = play_game(game, s, 100 * m);
    } else {
      RandomPerSideStrategy s(m, Rng(seed * 77 + t));
      r = play_game(game, s, 100 * m);
    }
    acc.add(static_cast<double>(r.rounds));
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"trials", "seed", "max_m"});
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto max_m = static_cast<std::size_t>(args.get_int("max_m", 1024));

  std::printf("E1  Lemma 4: singleton guessing game needs Omega(m) rounds\n");
  std::printf("    (mean over %d trials per cell)\n", trials);

  Table table({"m", "adaptive", "systematic", "random_per_side",
               "m/4 (theory)"});
  std::vector<double> ms, adaptive;
  for (std::size_t m = 16; m <= max_m; m *= 2) {
    const double a = mean_rounds(m, trials, seed, "adaptive");
    const double s = mean_rounds(m, trials, seed + 1, "systematic");
    const double r = mean_rounds(m, trials, seed + 2, "random");
    table.add(m, a, s, r, static_cast<double>(m) / 4.0);
    ms.push_back(static_cast<double>(m));
    adaptive.push_back(a);
  }
  table.print("rounds to empty the target set");

  const LinearFit fit = loglog_fit(ms, adaptive);
  std::printf(
      "\nlog-log fit (adaptive): rounds ~ m^%.3f  (R^2 = %.4f; Lemma 4 "
      "predicts exponent 1)\n",
      fit.slope, fit.r_squared);
  return 0;
}
