// M1 — engineering micro-benchmarks: graph construction, generators,
// shortest paths.

#include <benchmark/benchmark.h>

#include "analysis/distance.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

using namespace latgossip;

static void BM_BuildClique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto g = make_clique(n);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildClique)->Range(32, 512)->Complexity(benchmark::oNSquared);

static void BM_BuildErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildErdosRenyi)->Range(64, 1024);

static void BM_BuildLayeredRing(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    auto ring = make_layered_ring(layers, 16, 8, rng);
    benchmark::DoNotOptimize(ring.graph.num_edges());
  }
}
BENCHMARK(BM_BuildLayeredRing)->Range(4, 64);

static void BM_BuildHypercube(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto g = make_hypercube(dim);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildHypercube)->DenseRange(8, 16, 4);

static void BM_FindEdge(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto g = make_hypercube(dim);
  const std::size_t n = g.num_nodes();
  Rng rng(7);
  for (auto _ : state) {
    std::size_t acc = 0;
    // Alternate guaranteed hits (drawn from the edge list) with random
    // pairs, which on a hypercube are almost always misses.
    for (int i = 0; i < 1024; ++i) {
      if (i & 1) {
        const Edge& e = g.edges()[rng.uniform(g.num_edges())];
        acc += g.find_edge(e.u, e.v).value();
      } else {
        acc += g.find_edge(static_cast<NodeId>(rng.uniform(n)),
                           static_cast<NodeId>(rng.uniform(n)))
                   .value_or(0);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FindEdge)->DenseRange(8, 16, 4);

static void BM_NeighborScan(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto g = make_hypercube(dim);
  assign_random_uniform_latency(g, 1, 8, rng);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      for (const HalfEdge& h : g.neighbors(u))
        acc += h.to + static_cast<std::size_t>(g.latency(h.edge));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_NeighborScan)->DenseRange(8, 16, 4);

static void BM_Bfs(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto g = make_hypercube(dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_hops(g, 0));
  }
}
BENCHMARK(BM_Bfs)->DenseRange(8, 16, 4);

static void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), rng);
  assign_random_uniform_latency(g, 1, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Range(64, 2048);

static void BM_WeightedDiameter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), rng);
  assign_random_uniform_latency(g, 1, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weighted_diameter(g));
  }
}
BENCHMARK(BM_WeightedDiameter)->Range(32, 256);
