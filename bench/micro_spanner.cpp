// M5 — engineering micro-benchmarks: spanner construction throughput.

#include <benchmark/benchmark.h>

#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

using namespace latgossip;

namespace {

WeightedGraph bench_graph(std::size_t n) {
  Rng rng(n * 2654435761u + 1);
  auto g = make_erdos_renyi(n, std::min(1.0, 12.0 / static_cast<double>(n)),
                            rng);
  assign_random_uniform_latency(g, 1, 32, rng);
  return g;
}

}  // namespace

static void BM_BaswanaSenSpanner(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = bench_graph(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(
        build_baswana_sen_spanner(g, {3, 0}, rng).num_arcs());
  }
}
BENCHMARK(BM_BaswanaSenSpanner)->Range(128, 4096);

static void BM_GreedySpanner(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_greedy_spanner(g, 3).num_arcs());
  }
}
BENCHMARK(BM_GreedySpanner)->Range(128, 1024);
