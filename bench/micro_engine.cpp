// M3 — engineering micro-benchmarks: simulator throughput under the
// main protocols.

#include <benchmark/benchmark.h>

#include "core/dtg.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

using namespace latgossip;

static void BM_PushPullBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(++seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_PushPullBroadcast)->Range(64, 4096);

static void BM_PushPullAllToAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(2);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    NetworkView view(g, false);
    PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                         PushPullGossip::own_id_rumors(n), Rng(++seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_PushPullAllToAll)->Range(64, 512);

static void BM_DtgLocalBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(3);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  for (auto _ : state) {
    NetworkView view(g, true);
    DtgLocalBroadcast proto(view, 1, DtgLocalBroadcast::own_id_rumors(n));
    SimOptions opts;
    opts.stop_when_idle = false;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_DtgLocalBroadcast)->Range(64, 1024);
