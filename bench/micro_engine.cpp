// M3 — engineering micro-benchmarks: simulator throughput under the
// main protocols, the hook-policy fast path vs the dynamic path, and
// the parallel trial runner. bench/run_bench emits the same workloads
// as JSON for cross-PR tracking (BENCH_engine.json).

#include <benchmark/benchmark.h>

#include "core/dtg.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "sim/parallel.h"

using namespace latgossip;

static void BM_PushPullBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(++seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_PushPullBroadcast)->Range(64, 4096);

// Same workload with a no-op observer installed: forces the dynamic
// hook path, so the gap to BM_PushPullBroadcast is the cost the NoHooks
// compile-time policy removes from hook-free runs.
static void BM_PushPullBroadcastHooked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  std::uint64_t seed = 0;
  std::size_t activations = 0;
  for (auto _ : state) {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(++seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    opts.on_activation = [&](NodeId, NodeId, EdgeId, Round) {
      ++activations;
    };
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
  benchmark::DoNotOptimize(activations);
}
BENCHMARK(BM_PushPullBroadcastHooked)->Range(64, 4096);

// Trial-runner overhead and scaling: a fixed batch of broadcasts
// dispatched through run_trials at various thread counts.
static void BM_RunTrialsPushPull(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  Rng grng(1);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  assign_random_uniform_latency(g, 1, 8, grng);
  // Workspace overload: protocol + engine state recycled per worker
  // across trials and batches, as in the production sweeps.
  for (auto _ : state) {
    const TrialAggregate agg = run_trials(
        16, threads, 99, [&g](std::size_t, Rng rng, TrialWorkspace& ws) {
          NetworkView view(g, false);
          auto& proto = ws.slot<PushPullBroadcast>(view, NodeId{0}, rng);
          proto.reset(view, 0, rng);
          SimOptions opts;
          opts.max_rounds = 1'000'000;
          opts.workspace = &ws;
          return run_gossip(g, proto, opts);
        });
    benchmark::DoNotOptimize(agg.rounds.mean());
  }
}
BENCHMARK(BM_RunTrialsPushPull)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_PushPullAllToAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(2);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    NetworkView view(g, false);
    PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                         PushPullGossip::own_id_rumors(n), Rng(++seed));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_PushPullAllToAll)->Range(64, 512);

static void BM_DtgLocalBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng grng(3);
  auto g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), grng);
  for (auto _ : state) {
    NetworkView view(g, true);
    DtgLocalBroadcast proto(view, 1, DtgLocalBroadcast::own_id_rumors(n));
    SimOptions opts;
    opts.stop_when_idle = false;
    opts.max_rounds = 1'000'000;
    benchmark::DoNotOptimize(run_gossip(g, proto, opts).rounds);
  }
}
BENCHMARK(BM_DtgLocalBroadcast)->Range(64, 1024);
