// E2 — Lemma 5: Guessing(2m, Random_p) requires Ω(1/p) rounds for any
// protocol and Θ(log m / p) for the random per-side (push-pull-like)
// strategy.
//
// Sweeps p at fixed m, comparing the adaptive fresh-pair strategy
// against the random per-side strategy. Expect both to scale like 1/p,
// with the random strategy carrying an extra ~log m factor.

#include <cmath>
#include <cstdio>

#include "game/game.h"
#include "game/strategies.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"m", "trials", "seed"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 256));
  const int trials = static_cast<int>(args.get_int("trials", 15));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::printf("E2  Lemma 5: Random_p game — general Omega(1/p), random "
              "guessing Theta(log m / p)\n");
  std::printf("    m = %zu, mean over %d trials per cell\n", m, trials);

  Table table({"p", "adaptive", "adaptive*p", "random_side",
               "random*p/log(m)", "ratio rnd/adp"});
  const double logm = std::log(static_cast<double>(m));
  for (double p : {0.32, 0.16, 0.08, 0.04, 0.02, 0.01}) {
    Accumulator adp, rnd;
    for (int t = 0; t < trials; ++t) {
      Rng trng(seed + static_cast<std::uint64_t>(t) * 613);
      const TargetSet target = make_random_p_target(m, p, trng);
      {
        GuessingGame game(m, target);
        AdaptiveCouponStrategy s(m);
        adp.add(static_cast<double>(
            play_game(game, s, 1'000'000).rounds));
      }
      {
        GuessingGame game(m, target);
        RandomPerSideStrategy s(m, Rng(seed * 31 + t));
        rnd.add(static_cast<double>(
            play_game(game, s, 1'000'000).rounds));
      }
    }
    table.add(p, adp.mean(), adp.mean() * p, rnd.mean(),
              rnd.mean() * p / logm, rnd.mean() / adp.mean());
  }
  table.print("rounds to empty the target set");
  std::printf(
      "\nshape check: 'adaptive*p' and 'random*p/log(m)' columns should be "
      "roughly constant across the sweep;\n'ratio rnd/adp' shows the extra "
      "log m factor the oblivious strategy pays (Lemma 5).\n");
  return 0;
}
