// E9 — Lemma 15 / Corollary 16: RR Broadcast with parameter k on a
// directed overlay lets every pair at distance <= k exchange rumors
// within k*Δout + k rounds; on the log-n-out-degree spanner this gives
// O(D log^2 n) all-to-all dissemination.
//
// Part 1: k sweep on a fixed weighted graph (full overlay) — verifies
// the distance-k exchange property and reports rounds vs the budget.
// Part 2: spanner overlay — all-to-all rounds vs D log^2 n as n grows.

#include <cmath>
#include <cstdio>

#include "analysis/distance.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < x) ++k;
  return k < 1 ? 1 : k;
}

DirectedGraph full_overlay(const WeightedGraph& g) {
  DirectedGraph d(g.num_nodes());
  for (const Edge& e : g.edges()) {
    d.add_arc(e.u, e.v, e.latency);
    d.add_arc(e.v, e.u, e.latency);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 23));

  std::printf("E9  Lemma 15 / Corollary 16: RR Broadcast budgets\n\n");

  // ---- Part 1: distance-k exchange on a full overlay ----------------
  Rng gen(seed);
  auto g = make_erdos_renyi(64, 0.12, gen);
  assign_random_uniform_latency(g, 1, 8, gen);
  Table t1({"k", "budget=k*dout+k", "rounds_run", "pairs<=k", "exchanged",
            "coverage"});
  for (Latency k : {2, 4, 8, 16, 32}) {
    const auto overlay = full_overlay(g);
    NetworkView view(g, true);
    RRBroadcast proto(view, overlay, k, own_id_rumors(g.num_nodes()));
    SimOptions opts;
    opts.max_rounds = proto.budget() + k + 4;
    const SimResult r = run_gossip(g, proto, opts);
    std::size_t pairs = 0, exchanged = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto dist = dijkstra(g, u);
      for (NodeId v = static_cast<NodeId>(u + 1); v < g.num_nodes(); ++v) {
        if (dist[v] == kUnreachable || dist[v] > k) continue;
        ++pairs;
        if (proto.rumors()[u].test(v) && proto.rumors()[v].test(u))
          ++exchanged;
      }
    }
    t1.add(static_cast<long long>(k), proto.budget(), r.rounds, pairs,
           exchanged,
           pairs == 0 ? 1.0
                      : static_cast<double>(exchanged) /
                            static_cast<double>(pairs));
  }
  t1.print("Part 1: distance-k exchange after k*dout+k iterations "
           "(coverage must be 1.0)");

  // ---- Part 2: all-to-all over the spanner as n grows ---------------
  Table t2({"n", "D", "spanner_outdeg", "rr_rounds", "D*log^2(n)",
            "rounds/(D log^2 n)"});
  for (std::size_t n : {64u, 128u, 256u, 512u}) {
    Rng grng(seed + n);
    auto gg = make_erdos_renyi(n, std::min(1.0, 12.0 / n), grng);
    assign_random_uniform_latency(gg, 1, 6, grng);
    const Latency d = weighted_diameter(gg);
    const std::size_t logn = ceil_log2(n);
    Rng srng(seed * 3 + n);
    const auto spanner = build_baswana_sen_spanner(gg, {logn, 0}, srng);
    const auto rr_k = d * static_cast<Latency>(2 * logn - 1);
    NetworkView view(gg, true);
    RRBroadcast proto(view, spanner, rr_k, own_id_rumors(n));
    SimOptions opts;
    opts.max_rounds = proto.budget() + rr_k + 4;
    const SimResult r = run_gossip(gg, proto, opts);
    const bool full = all_sets_full(proto.rumors());
    const double yard = static_cast<double>(d) *
                        static_cast<double>(logn * logn);
    t2.add(n, static_cast<long long>(d), spanner.max_out_degree(),
           r.rounds, yard, static_cast<double>(r.rounds) / yard);
    if (!full) std::printf("  [warn] incomplete all-to-all at n=%zu\n", n);
  }
  t2.print("Part 2: all-to-all over the spanner, rounds vs D log^2 n "
           "(Corollary 16)");
  return 0;
}
