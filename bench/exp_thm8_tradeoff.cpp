// E5 — Theorem 8: the trade-off Ω(min(Δ + D, ℓ/φ)) on the layered ring.
//
// Fixes the ring (k layers of s nodes, Δ = 3s-1, D = Θ(k/2)) and sweeps
// the cross latency ℓ. Push-pull organically realizes both strategies:
// for small ℓ it forwards over slow cross edges (cost per layer ≈ ℓ),
// and for large ℓ it is faster to keep guessing until the hidden fast
// edge is found (cost per layer ≈ Θ(s) = Θ(Δ)). The measured broadcast
// time should track the min of the two branches, with the crossover near
// ℓ ≈ s.

#include <algorithm>
#include <cstdio>

#include "core/push_pull.h"
#include "graph/gadgets.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"layers", "layer_size", "trials", "seed"});
  const auto layers = static_cast<std::size_t>(args.get_int("layers", 8));
  const auto s = static_cast<std::size_t>(args.get_int("layer_size", 24));
  const int trials = static_cast<int>(args.get_int("trials", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::printf("E5  Theorem 8: min(Delta + D, ell/phi) trade-off on the "
              "layered ring\n");
  std::printf("    k = %zu layers of s = %zu nodes (Delta = %zu); single-"
              "source push-pull broadcast, mean over %d trials\n",
              layers, s, 3 * s - 1, trials);

  // Theory branches, in units of rounds across k/2 layer boundaries:
  // slow-edge branch ~ (k/2) * ell, search branch ~ (k/2) * c * s.
  const double half_ring = static_cast<double>(layers) / 2.0;
  Table table({"ell", "push_pull_rounds", "slow_branch=(k/2)ell",
               "search_branch~(k/2)*1.5s", "min(branches)"});
  for (Latency ell : {1, 4, 16, 64, 256, 1024}) {
    Accumulator rounds;
    for (int t = 0; t < trials; ++t) {
      Rng build_rng(seed + static_cast<std::uint64_t>(t) * 101);
      const auto ring = make_layered_ring(layers, s, ell, build_rng);
      NetworkView view(ring.graph, false);
      PushPullBroadcast proto(view, 0,
                              Rng(seed * 911 + static_cast<std::uint64_t>(t)));
      SimOptions opts;
      opts.max_rounds = 10'000'000;
      const SimResult r = run_gossip(ring.graph, proto, opts);
      if (!r.completed) std::printf("  [warn] incomplete at ell=%lld\n",
                                    static_cast<long long>(ell));
      rounds.add(static_cast<double>(r.rounds));
    }
    const double slow_branch = half_ring * static_cast<double>(ell);
    const double search_branch = half_ring * 1.5 * static_cast<double>(s);
    table.add(static_cast<long long>(ell), rounds.mean(), slow_branch,
              search_branch, std::min(slow_branch, search_branch));
  }
  table.print("broadcast time vs cross latency");
  std::printf(
      "\nshape check: measured rounds grow ~linearly with ell below the "
      "crossover (ell ~ s = %zu) and plateau above it,\ntracking "
      "min(Delta + D, ell/phi) as Theorem 8 predicts.\n",
      s);
  return 0;
}
