// E6 — Lemmas 9-11: the layered ring has φ_ℓ = Θ(α), critical latency
// ℓ* = ℓ (for ℓ < s²), and weighted diameter D = Θ(1/φ_ℓ).
//
// Builds small rings (exact conductance is feasible up to ~22 nodes),
// compares the exact φ_ℓ with the closed-form halving-cut value of
// Lemma 9, reports ℓ* and the product D·φ_ℓ (predicted Θ(1)).

#include <cstdio>

#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "graph/gadgets.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));

  std::printf("E6  Lemmas 9-11: layered-ring conductance, critical latency "
              "and diameter\n");
  std::printf("    exact cut enumeration on small instances\n");

  Table table({"layers", "s", "ell", "phi_ell(exact)", "phi_cut(Lemma9)",
               "ell_star", "phi_star", "D", "D*phi_ell"});
  struct Config { std::size_t k, s; Latency ell; };
  for (const Config& c : {Config{4, 3, 4}, Config{4, 3, 8}, Config{6, 3, 4},
                          Config{6, 3, 8}, Config{4, 4, 6}, Config{4, 4, 15},
                          Config{4, 5, 9}, Config{6, 2, 3}}) {
    Rng rng(seed + c.k * 31 + c.s * 7 + static_cast<std::uint64_t>(c.ell));
    const auto ring = make_layered_ring(c.k, c.s, c.ell, rng);
    const auto wc = weighted_conductance_exact(ring.graph);
    double phi_ell = 0.0;
    for (std::size_t i = 0; i < wc.levels.size(); ++i)
      if (wc.levels[i] == c.ell) phi_ell = wc.phi[i];
    const Latency d = weighted_diameter(ring.graph);
    table.add(c.k, c.s, static_cast<long long>(c.ell), phi_ell,
              ring.analytic_phi_ell_cut(),
              static_cast<long long>(wc.ell_star), wc.phi_star,
              static_cast<long long>(d),
              static_cast<double>(d) * phi_ell);
  }
  table.print("ring structure vs the closed-form predictions");
  std::printf(
      "\nshape checks: phi_ell(exact) <= phi_cut(Lemma9) and within a "
      "constant of it (Lemma 10);\nell_star equals the cross latency "
      "whenever ell < s^2 (Lemma 11); D*phi_ell is Theta(1).\n");
  return 0;
}
