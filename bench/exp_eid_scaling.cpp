// E10 — Theorem 19 / Lemma 17: EID solves all-to-all dissemination in
// O(D log^3 n) rounds; General EID pays only a constant factor for not
// knowing D (guess-and-double + termination check, Lemma 18).
//
// Part 1: D sweep at fixed n (paths of heavy edges) — rounds linear in D.
// Part 2: n sweep at small D — rounds polylog in n.
// Part 3: known D vs General EID overhead.

#include <cmath>
#include <cstdio>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

double log3(double n) {
  const double l = std::log2(n);
  return l * l * l;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));

  std::printf("E10 Theorem 19: EID all-to-all in O(D log^3 n)\n\n");

  // ---- Part 1: D sweep (ring of cliques, heavier bridges) -----------
  Table t1({"bridge_lat", "D", "eid_rounds", "D*log^3(n)",
            "rounds/(D log^3 n)", "complete"});
  for (Latency bridge : {1, 4, 16, 64}) {
    const auto g = make_ring_of_cliques(6, 5, bridge);
    const Latency d = weighted_diameter(g);
    Rng rng(seed + static_cast<std::uint64_t>(bridge));
    EidOptions opts;
    opts.diameter_estimate = d;
    const EidOutcome out =
        run_eid(g, opts, own_id_rumors(g.num_nodes()), rng);
    const double yard =
        static_cast<double>(d) * log3(static_cast<double>(g.num_nodes()));
    t1.add(static_cast<long long>(bridge), static_cast<long long>(d),
           out.sim.rounds, yard,
           static_cast<double>(out.sim.rounds) / yard,
           out.all_to_all ? "yes" : "NO");
  }
  t1.print("Part 1: rounds scale linearly in D (n fixed = 30)");

  // ---- Part 2: n sweep at small diameter -----------------------------
  Table t2({"n", "D", "eid_rounds", "D*log^3(n)", "rounds/(D log^3 n)",
            "complete"});
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    Rng grng(seed * 3 + n);
    auto g = make_erdos_renyi(n, std::min(1.0, 12.0 / n), grng);
    assign_random_uniform_latency(g, 1, 4, grng);
    const Latency d = weighted_diameter(g);
    Rng rng(seed * 5 + n);
    EidOptions opts;
    opts.diameter_estimate = d;
    const EidOutcome out = run_eid(g, opts, own_id_rumors(n), rng);
    const double yard =
        static_cast<double>(d) * log3(static_cast<double>(n));
    t2.add(n, static_cast<long long>(d), out.sim.rounds, yard,
           static_cast<double>(out.sim.rounds) / yard,
           out.all_to_all ? "yes" : "NO");
  }
  t2.print("Part 2: rounds polylog in n at small D");

  // ---- Part 3: General EID (unknown D) overhead ----------------------
  Table t3({"graph", "D", "eid(D known)", "general_eid", "overhead",
            "final_k", "attempts"});
  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      {"path16", make_path(16)},
      {"ring4x4_bridge8", make_ring_of_cliques(4, 4, 8)},
      {"grid5x5_lat3",
       [] {
         auto g = make_grid(5, 5);
         assign_uniform_latency(g, 3);
         return g;
       }()},
  };
  for (Cfg& c : cfgs) {
    const Latency d = weighted_diameter(c.g);
    Rng r1(seed + 77);
    EidOptions opts;
    opts.diameter_estimate = d;
    const EidOutcome known =
        run_eid(c.g, opts, own_id_rumors(c.g.num_nodes()), r1);
    Rng r2(seed + 78);
    const GeneralEidOutcome general = run_general_eid(c.g, 0, r2);
    t3.add(c.name, static_cast<long long>(d), known.sim.rounds,
           general.sim.rounds,
           static_cast<double>(general.sim.rounds) /
               static_cast<double>(known.sim.rounds),
           static_cast<long long>(general.final_estimate),
           general.attempts);
    if (!general.success || !all_sets_full(general.rumors))
      std::printf("  [warn] general EID incomplete on %s\n", c.name);
  }
  t3.print("Part 3: guess-and-double overhead (Theorem 19)");
  std::printf(
      "\nshape checks: Part 1 ratio roughly constant in D; Part 2 ratio "
      "roughly constant in n;\nPart 3 overhead is a small constant — it "
      "can even drop below 1 because DTG's transitive relays often let "
      "General EID terminate at an estimate k well below the true "
      "diameter (its termination check verifies actual completeness, "
      "Lemma 18).\n");
  return 0;
}
