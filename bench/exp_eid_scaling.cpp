// E10 — Theorem 19 / Lemma 17: EID solves all-to-all dissemination in
// O(D log^3 n) rounds; General EID pays only a constant factor for not
// knowing D (guess-and-double + termination check, Lemma 18).
//
// Part 1: D sweep at fixed n (paths of heavy edges) — rounds linear in D.
// Part 2: n sweep at small D — rounds polylog in n.
// Part 3: known D vs General EID overhead.
//
// Every row is the mean of --trials independent runs dispatched through
// the deterministic parallel trial runner (--threads, 0 = all cores).

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/distance.h"
#include "core/eid.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/parallel.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

namespace {

std::size_t g_trials = 3;
std::size_t g_threads = 0;

double log3(double n) {
  const double l = std::log2(n);
  return l * l * l;
}

/// Mean rounds of `trials` EID(D) runs; completeness = all trials
/// reached all-to-all dissemination.
struct EidSample {
  double mean_rounds = 0.0;
  bool all_complete = false;
};

EidSample sample_eid(const WeightedGraph& g, Latency diameter_estimate,
                     std::uint64_t seed) {
  const TrialAggregate agg = run_trials(
      g_trials, g_threads, seed,
      [&](std::size_t, Rng rng, TrialWorkspace& ws) {
        EidOptions opts;
        opts.diameter_estimate = diameter_estimate;
        opts.workspace = &ws;
        const EidOutcome out =
            run_eid(g, opts, own_id_rumors(g.num_nodes()), rng);
        SimResult sim = out.sim;
        sim.completed = out.all_to_all;
        return sim;
      });
  return EidSample{agg.mean_rounds(), agg.all_completed()};
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"seed", "trials", "threads"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  g_trials = static_cast<std::size_t>(args.get_int("trials", 3));
  g_threads = static_cast<std::size_t>(args.get_int("threads", 0));

  std::printf("E10 Theorem 19: EID all-to-all in O(D log^3 n)  (mean of %zu "
              "trials per row)\n\n",
              g_trials);

  // ---- Part 1: D sweep (ring of cliques, heavier bridges) -----------
  Table t1({"bridge_lat", "D", "eid_rounds", "D*log^3(n)",
            "rounds/(D log^3 n)", "complete"});
  for (Latency bridge : {1, 4, 16, 64}) {
    const auto g = make_ring_of_cliques(6, 5, bridge);
    const Latency d = weighted_diameter(g);
    const EidSample s =
        sample_eid(g, d, seed + static_cast<std::uint64_t>(bridge));
    const double yard =
        static_cast<double>(d) * log3(static_cast<double>(g.num_nodes()));
    t1.add(static_cast<long long>(bridge), static_cast<long long>(d),
           s.mean_rounds, yard, s.mean_rounds / yard,
           s.all_complete ? "yes" : "NO");
  }
  t1.print("Part 1: rounds scale linearly in D (n fixed = 30)");

  // ---- Part 2: n sweep at small diameter -----------------------------
  Table t2({"n", "D", "eid_rounds", "D*log^3(n)", "rounds/(D log^3 n)",
            "complete"});
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    Rng grng(seed * 3 + n);
    auto g = make_erdos_renyi(n, std::min(1.0, 12.0 / n), grng);
    assign_random_uniform_latency(g, 1, 4, grng);
    const Latency d = weighted_diameter(g);
    const EidSample s = sample_eid(g, d, seed * 5 + n);
    const double yard =
        static_cast<double>(d) * log3(static_cast<double>(n));
    t2.add(n, static_cast<long long>(d), s.mean_rounds, yard,
           s.mean_rounds / yard, s.all_complete ? "yes" : "NO");
  }
  t2.print("Part 2: rounds polylog in n at small D");

  // ---- Part 3: General EID (unknown D) overhead ----------------------
  Table t3({"graph", "D", "eid(D known)", "general_eid", "overhead",
            "mean_final_k", "mean_attempts"});
  struct Cfg { const char* name; WeightedGraph g; };
  Cfg cfgs[] = {
      {"path16", make_path(16)},
      {"ring4x4_bridge8", make_ring_of_cliques(4, 4, 8)},
      {"grid5x5_lat3",
       [] {
         auto g = make_grid(5, 5);
         assign_uniform_latency(g, 3);
         return g;
       }()},
  };
  for (Cfg& c : cfgs) {
    const Latency d = weighted_diameter(c.g);
    const EidSample known = sample_eid(c.g, d, seed + 77);

    std::vector<Latency> final_k(g_trials, 0);
    std::vector<std::size_t> attempts(g_trials, 0);
    bool general_ok = true;
    const TrialAggregate general = run_trials(
        g_trials, g_threads, seed + 78,
        [&](std::size_t trial, Rng rng, TrialWorkspace& ws) {
          const GeneralEidOutcome out =
              run_general_eid(c.g, 0, rng, 1, nullptr, &ws);
          final_k[trial] = out.final_estimate;
          attempts[trial] = out.attempts;
          SimResult sim = out.sim;
          sim.completed = out.success && all_sets_full(out.rumors);
          return sim;
        });
    general_ok = general.all_completed();

    double mean_k = 0.0, mean_attempts = 0.0;
    for (std::size_t t = 0; t < g_trials; ++t) {
      mean_k += static_cast<double>(final_k[t]) /
                static_cast<double>(g_trials);
      mean_attempts += static_cast<double>(attempts[t]) /
                       static_cast<double>(g_trials);
    }
    t3.add(c.name, static_cast<long long>(d), known.mean_rounds,
           general.mean_rounds(),
           general.mean_rounds() / known.mean_rounds, mean_k,
           mean_attempts);
    if (!general_ok)
      std::printf("  [warn] general EID incomplete on %s\n", c.name);
  }
  t3.print("Part 3: guess-and-double overhead (Theorem 19)");
  std::printf(
      "\nshape checks: Part 1 ratio roughly constant in D; Part 2 ratio "
      "roughly constant in n;\nPart 3 overhead is a small constant — it "
      "can even drop below 1 because DTG's transitive relays often let "
      "General EID terminate at an estimate k well below the true "
      "diameter (its termination check verifies actual completeness, "
      "Lemma 18).\n");
  return 0;
}
