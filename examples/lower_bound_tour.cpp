// lower_bound_tour — a guided tour of the paper's lower-bound machinery
// (Section 3): play the guessing game directly, then watch a real
// gossip protocol play it implicitly through the Lemma-3 reduction.
//
// Run:  ./lower_bound_tour [--m=24] [--seed=5]

#include <cstdio>

#include "game/game.h"
#include "game/reduction.h"
#include "game/strategies.h"
#include "graph/gadgets.h"
#include "util/args.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"m", "seed"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 24));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  std::printf("The guessing game Guessing(2m, P), m = %zu\n", m);
  std::printf("==========================================\n\n");

  // --- Act 1: the raw game with a hidden singleton -------------------
  {
    const TargetSet target = make_singleton_target(m, rng);
    std::printf("Act 1: the oracle hides a single pair among %zu x %zu.\n",
                m, m);
    GuessingGame game(m, target);
    AdaptiveCouponStrategy alice(m);
    const PlayResult r = play_game(game, alice, 100 * m);
    std::printf("  Alice (adaptive, never repeating a guess) needed %zu "
                "rounds and %zu guesses.\n",
                r.rounds, r.guesses);
    std::printf("  Lemma 4: any protocol needs Omega(m) = Omega(%zu) "
                "rounds — she cannot do better than ~m/4.\n\n", m);
  }

  // --- Act 2: Random_p targets ---------------------------------------
  {
    const double p = 0.1;
    std::printf("Act 2: the oracle samples each pair with p = %.2f.\n", p);
    const TargetSet target = make_random_p_target(m, p, rng);
    GuessingGame g1(m, target), g2(m, target);
    AdaptiveCouponStrategy adaptive(m);
    RandomPerSideStrategy random(m, rng.fork(1));
    const PlayResult r1 = play_game(g1, adaptive, 100000);
    const PlayResult r2 = play_game(g2, random, 100000);
    std::printf("  adaptive Alice: %zu rounds;  random-per-side Alice "
                "(what push-pull does): %zu rounds.\n",
                r1.rounds, r2.rounds);
    std::printf("  Lemma 5: Omega(1/p) in general, Theta(log m / p) for "
                "the random strategy — the gap is the log m factor.\n\n");
  }

  // --- Act 3: gossip IS the game (Lemma 3) ----------------------------
  {
    std::printf("Act 3: run push-pull local broadcast on the gadget "
                "G(P); every cross-edge activation is a guess.\n");
    const auto gadget = make_guessing_gadget(
        m, make_singleton_target(m, rng), /*fast=*/1,
        /*slow=*/static_cast<Latency>(4 * m), /*symmetric=*/false);
    const ReductionResult r = run_gadget_reduction(
        gadget, ReductionProtocol::kPushPull, rng.fork(2), 1'000'000);
    std::printf("  local broadcast finished after %lld rounds with %zu "
                "cross-edge guesses;\n",
                static_cast<long long>(r.sim.rounds), r.cross_activations);
    if (r.game_solved_round)
      std::printf("  the induced game was solved in simulation round "
                  "%lld — the algorithm could not finish before finding "
                  "the hidden fast edge or waiting out the slow latency "
                  "(%lld).\n",
                  static_cast<long long>(*r.game_solved_round),
                  static_cast<long long>(gadget.slow_latency));
    else
      std::printf("  the game was never solved: the algorithm paid the "
                  "full slow latency %lld instead.\n",
                  static_cast<long long>(gadget.slow_latency));
    std::printf(
        "\nThat is the whole lower-bound argument of Section 3: a gossip "
        "algorithm on the gadget cannot beat the best guessing-game "
        "player, and the game itself needs Omega(m) rounds.\n");
  }
  return 0;
}
