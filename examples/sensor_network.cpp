// sensor_network — data aggregation in a field of radio sensors (the
// paper's "sensor network data aggregation" motivation).
//
// Topology: n sensors dropped uniformly in the unit square; two sensors
// can talk when within radio range; link latency grows with distance
// (longer hops need more retransmissions). One sink node must collect a
// reading from every sensor, i.e. one-to-all *collection*, which
// all-to-all dissemination subsumes.
//
// We compare push-pull, round-robin flooding, and the T(k) schedule
// (which needs no bound on the network size — exactly the sensor
// deployment situation), and show the latency-aware structure via the
// weighted vs hop diameter.
//
// Run:  ./sensor_network [--n=80] [--radius=0.22] [--scale=12] [--seed=3]

#include <cstdio>

#include "analysis/distance.h"
#include "app/aggregate.h"
#include "core/flooding.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/tk_schedule.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "radius", "scale", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 80));
  const double radius = args.get_double("radius", 0.22);
  const double scale = args.get_double("scale", 12.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  std::vector<std::pair<double, double>> coords;
  auto g = make_random_geometric(n, radius, rng, &coords);
  assign_distance_latency(g, coords, scale);

  std::printf("sensor field: %zu sensors, %zu radio links, link latency "
              "1..%lld (distance-based)\n",
              n, g.num_edges(), static_cast<long long>(g.max_latency()));
  const Latency d = weighted_diameter(g);
  std::printf("weighted diameter %lld vs hop diameter %lld — latency-aware "
              "routing matters when they diverge\n\n",
              static_cast<long long>(d),
              static_cast<long long>(hop_diameter(g)));

  Table table({"protocol", "rounds", "exchanges", "sink has all readings"});

  // Push-pull until the sink (node 0) holds every reading.
  {
    NetworkView view(g, false);
    PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                         PushPullGossip::own_id_rumors(n), rng.fork(1));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    table.add("push-pull", r.rounds, r.activations,
              proto.rumors()[0].all() ? "yes" : "NO");
  }

  // Deterministic round-robin flooding.
  {
    NetworkView view(g, false);
    RoundRobinFlooding proto(view, GossipGoal::kAllToAll, 0,
                             own_id_rumors(n));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    table.add("rr-flooding", r.rounds, r.activations,
              proto.rumors()[0].all() ? "yes" : "NO");
  }

  // T(D) schedule: deterministic, needs NO bound on n (Appendix E) —
  // ideal when the deployment size is unknown to the sensors.
  {
    const TkOutcome out = run_tk_schedule(g, d, own_id_rumors(n));
    table.add("T(D) schedule", out.sim.rounds, out.sim.activations,
              out.rumors[0].all() ? "yes" : "NO");
  }

  table.print("collecting every sensor reading at the sink");

  // Aggregation without full collection: the minimum battery level
  // (an idempotent aggregate) converges by gossip in far fewer rounds
  // and with 64-bit messages.
  {
    std::vector<std::int64_t> battery(n);
    for (std::size_t i = 0; i < n; ++i)
      battery[i] = 20 + static_cast<std::int64_t>(rng.uniform(80));
    battery[n / 2] = 3;  // one nearly-dead sensor
    NetworkView view(g, false);
    MinAggregation proto(view, battery, rng.fork(9));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    std::printf("\nmin-battery aggregate: every sensor knows the fleet "
                "minimum (%lld%%) after %lld rounds — %zu bits of total "
                "traffic vs the megabytes of full collection.\n",
                static_cast<long long>(proto.global_min()),
                static_cast<long long>(r.rounds), r.payload_bits);
  }

  std::printf(
      "\ntakeaway: with distance-proportional latencies the weighted "
      "diameter, not the hop count, governs collection time; T(k) gives a "
      "deterministic schedule with no knowledge of the deployment size; "
      "idempotent aggregates ride the same gossip at tiny message cost.\n");
  return 0;
}
