// p2p_overlay — publish/subscribe event dissemination in a peer-to-peer
// overlay (the paper's "peer to peer publish-subscribe" motivation).
//
// Topology: a small-world overlay (Watts-Strogatz) whose links have
// two-level latencies — most connections are nearby/fast, rewired
// long-range links are slow. A publisher injects an event; every peer
// must receive it.
//
// The example walks through the latency-aware toolkit:
//   1. estimate the overlay's weighted conductance (spectral sweep),
//   2. broadcast with push-pull and check Theorem 12's prediction,
//   3. build the Baswana-Sen spanner as an explicit dissemination tree
//      overlay and compare its per-node fan-out with the raw overlay.
//
// Run:  ./p2p_overlay [--n=200] [--k=4] [--beta=0.15] [--seed=11]

#include <cmath>
#include <cstdio>

#include "analysis/spanner_check.h"
#include "analysis/spectral.h"
#include "core/push_pull.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/table.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "k", "beta", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 200));
  const auto k = static_cast<std::size_t>(args.get_int("k", 4));
  const double beta = args.get_double("beta", 0.15);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));

  auto g = make_watts_strogatz(n, k, beta, rng);
  assign_two_level_latency(g, /*fast=*/1, /*slow=*/25, /*p_fast=*/0.8, rng);
  std::printf("p2p overlay: %zu peers, %zu links (small world, 20%% slow "
              "long-range links)\n\n", n, g.num_edges());

  // 1. Weighted conductance estimate (sweep bound; exact is infeasible
  //    at this size).
  Rng sweep_rng = rng.fork(1);
  const auto wc = weighted_conductance_sweep(g, 200, sweep_rng);
  std::printf("spectral sweep estimate: phi* <= %.4f at ell* = %lld\n",
              wc.phi_star, static_cast<long long>(wc.ell_star));

  // 2. Event broadcast with push-pull.
  NetworkView view(g, false);
  PushPullBroadcast proto(view, /*source=*/0, rng.fork(2));
  SimOptions opts;
  opts.max_rounds = 2'000'000;
  const SimResult r = run_gossip(g, proto, opts);
  const double predicted =
      static_cast<double>(wc.ell_star) / wc.phi_star *
      std::log2(static_cast<double>(n));
  std::printf("push-pull event broadcast: %lld rounds (completed: %s); "
              "Theorem 12 budget (ell*/phi*) log n ~ %.0f\n",
              static_cast<long long>(r.rounds), r.completed ? "yes" : "NO",
              predicted);

  // 3. Spanner as an explicit dissemination overlay.
  Rng spanner_rng = rng.fork(3);
  const auto spanner = build_baswana_sen_spanner(g, {0, 0}, spanner_rng);
  Rng check_rng = rng.fork(4);
  const auto stats = check_spanner_sampled(g, spanner, 16, check_rng);
  Table table({"overlay", "links", "max fan-out", "stretch"});
  table.add("raw small world", g.num_edges(), g.max_degree(), 1.0);
  table.add("Baswana-Sen spanner", stats.undirected_edges,
            stats.max_out_degree, stats.max_stretch);
  table.print("dissemination overlay comparison");
  std::printf(
      "\ntakeaway: the oriented spanner caps every peer's fan-out at "
      "O(log n) while stretching event paths by at most the stretch "
      "factor — the structure EID exploits for its O(D log^3 n) bound.\n");
  return 0;
}
