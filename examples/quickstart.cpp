// quickstart — the 5-minute tour of latgossip.
//
//  1. build a latency-weighted network,
//  2. analyze it (weighted conductance φ*, critical latency ℓ*, diameter),
//  3. disseminate a rumor with push-pull (unknown latencies),
//  4. disseminate all-to-all with EID (known latencies),
//  5. compare against the paper's bounds.
//
// Run:  ./quickstart [--n=64] [--seed=42]

#include <cmath>
#include <cstdio>

#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "core/eid.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"
#include "util/args.h"

using namespace latgossip;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"n", "seed"});
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));

  // 1. A random network whose edges are mostly fast (latency 1) with a
  //    minority of slow WAN-like links (latency 20).
  auto g = make_erdos_renyi(n, std::min(1.0, 10.0 / static_cast<double>(n)),
                            rng);
  assign_two_level_latency(g, /*fast=*/1, /*slow=*/20, /*p_fast=*/0.7, rng);
  std::printf("network: n = %zu, m = %zu, max degree = %zu\n", g.num_nodes(),
              g.num_edges(), g.max_degree());

  // 2. Analysis: D, and — on small inputs — the exact weighted
  //    conductance of Definition 2.
  const Latency d = weighted_diameter(g);
  std::printf("weighted diameter D = %lld, hop diameter = %lld\n",
              static_cast<long long>(d),
              static_cast<long long>(hop_diameter(g)));
  if (n <= 20) {
    const auto wc = weighted_conductance_exact(g);
    std::printf("phi* = %.4f at critical latency ell* = %lld\n", wc.phi_star,
                static_cast<long long>(wc.ell_star));
  } else {
    std::printf("(n > 20: exact conductance enumeration skipped; see "
                "analysis/spectral.h for the sweep bound)\n");
  }

  // 3. Push-pull broadcast from node 0 — needs no latency knowledge.
  {
    NetworkView view(g, /*latencies_known=*/false);
    PushPullBroadcast proto(view, /*source=*/0, rng.fork(1));
    SimOptions opts;
    opts.max_rounds = 1'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    std::printf("push-pull broadcast: %scompleted in %lld rounds "
                "(%zu exchanges)\n",
                r.completed ? "" : "NOT ", static_cast<long long>(r.rounds),
                r.activations);
    const double bound = std::log2(static_cast<double>(n));
    std::printf("  Theorem 12 says O((ell*/phi*) log n); log2(n) = %.1f\n",
                bound);
  }

  // 4. EID all-to-all — uses known latencies, a Baswana-Sen spanner and
  //    RR broadcast (Theorem 19).
  {
    Rng eid_rng = rng.fork(2);
    const GeneralEidOutcome out = run_general_eid(g, /*n_hat=*/0, eid_rng);
    std::printf("general EID all-to-all: %s in %lld rounds "
                "(final estimate k = %lld, %zu attempts)\n",
                out.success && all_sets_full(out.rumors) ? "completed"
                                                          : "FAILED",
                static_cast<long long>(out.sim.rounds),
                static_cast<long long>(out.final_estimate), out.attempts);
    const double bound = static_cast<double>(d) *
                         std::pow(std::log2(static_cast<double>(n)), 3);
    std::printf("  Theorem 19 says O(D log^3 n) = about %.0f here\n", bound);
  }
  return 0;
}
