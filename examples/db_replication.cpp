// db_replication — anti-entropy between database replicas across
// datacenters (the paper's "distributed database replication" motivation,
// after Demers et al.'s epidemic algorithms).
//
// Topology: `dcs` datacenters of `replicas` nodes each. Within a
// datacenter every pair of replicas is connected by a LAN link
// (latency 1); between datacenters a few WAN links with latencies drawn
// from a heavy-tailed distribution connect random replica pairs.
//
// Scenario: every replica starts with one fresh write; anti-entropy must
// spread all writes to all replicas. We compare
//   - push-pull anti-entropy (no latency knowledge, robust), and
//   - the spanner route (measure RTTs first, then EID) —
// and relate both to the network's φ*/ℓ* structure.
//
// Run:  ./db_replication [--dcs=4] [--replicas=8] [--wan_links=3]
//                        [--seed=7]

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/conductance.h"
#include "analysis/distance.h"
#include "app/anti_entropy.h"
#include "core/latency_discovery.h"
#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"

using namespace latgossip;

namespace {

/// Datacenter mesh: cliques of replicas, sparse heavy-tailed WAN links.
WeightedGraph build_fleet(std::size_t dcs, std::size_t replicas,
                          std::size_t wan_links_per_pair, Rng& rng) {
  GraphBuilder builder(dcs * replicas);
  auto node = [replicas](std::size_t dc, std::size_t r) {
    return static_cast<NodeId>(dc * replicas + r);
  };
  for (std::size_t dc = 0; dc < dcs; ++dc)
    for (std::size_t i = 0; i < replicas; ++i)
      for (std::size_t j = i + 1; j < replicas; ++j)
        builder.add_edge(node(dc, i), node(dc, j), 1);
  for (std::size_t a = 0; a < dcs; ++a)
    for (std::size_t b = a + 1; b < dcs; ++b)
      for (std::size_t l = 0; l < wan_links_per_pair; ++l) {
        // WAN RTTs: 20..200 rounds, heavy tail.
        const auto rtt = static_cast<Latency>(
            20.0 * std::pow(1.0 - rng.uniform_double(), -0.7));
        const NodeId u = node(a, rng.uniform(replicas));
        const NodeId v = node(b, rng.uniform(replicas));
        if (!builder.has_edge(u, v))
          builder.add_edge(u, v, std::min<Latency>(rtt, 200));
      }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.allow_only({"dcs", "replicas", "wan_links", "seed"});
  const auto dcs = static_cast<std::size_t>(args.get_int("dcs", 4));
  const auto replicas = static_cast<std::size_t>(args.get_int("replicas", 8));
  const auto wan = static_cast<std::size_t>(args.get_int("wan_links", 3));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  const WeightedGraph g = build_fleet(dcs, replicas, wan, rng);
  const std::size_t n = g.num_nodes();
  std::printf("replica fleet: %zu DCs x %zu replicas = %zu nodes, %zu "
              "links, max RTT %lld\n",
              dcs, replicas, n, g.num_edges(),
              static_cast<long long>(g.max_latency()));
  const Latency d = weighted_diameter(g);
  std::printf("weighted diameter (worst replica-to-replica sync path): "
              "%lld rounds\n\n", static_cast<long long>(d));

  Table table({"strategy", "rounds", "exchanges", "complete"});

  // --- push-pull anti-entropy -----------------------------------------
  {
    NetworkView view(g, /*latencies_known=*/false);
    PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                         PushPullGossip::own_id_rumors(n), rng.fork(1));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    table.add("push-pull anti-entropy", r.rounds, r.activations,
              r.completed ? "yes" : "NO");
  }

  // --- measure RTTs, then the spanner route ---------------------------
  {
    Rng branch = rng.fork(2);
    const UnknownLatencyEidOutcome out = run_unknown_latency_eid(g, 0,
                                                                 branch);
    table.add("probe + spanner (EID)", out.sim.rounds, out.sim.activations,
              out.success && all_sets_full(out.rumors) ? "yes" : "NO");
  }

  // --- real data: LWW anti-entropy with conflicting writes -----------
  {
    std::vector<KvStore> stores;
    for (NodeId v = 0; v < n; ++v) {
      KvStore s(v);
      s.put("row-" + std::to_string(v), "insert by replica " +
                                            std::to_string(v));
      s.put("config/leader", "candidate-" + std::to_string(v));  // conflict!
      stores.push_back(std::move(s));
    }
    NetworkView view(g, /*latencies_known=*/false);
    AntiEntropy proto(view, std::move(stores), rng.fork(3));
    SimOptions opts;
    opts.max_rounds = 2'000'000;
    const SimResult r = run_gossip(g, proto, opts);
    table.add("LWW anti-entropy (real rows)", r.rounds, r.activations,
              proto.converged() ? "yes" : "NO");
    const KvEntry* winner = proto.stores()[0].get("config/leader");
    std::printf("conflicting 'config/leader' writes resolved identically "
                "everywhere: %s\n",
                winner != nullptr ? winner->value.c_str() : "(missing)");
  }

  table.print("all writes on all replicas (all-to-all dissemination)");

  if (n <= 20) {
    const auto wc = weighted_conductance_exact(g);
    std::printf("\nweighted conductance phi* = %.4f at ell* = %lld — the "
                "fleet's sync speed limit per Theorem 12.\n",
                wc.phi_star, static_cast<long long>(wc.ell_star));
  } else {
    std::printf(
        "\ntakeaway: push-pull needs no RTT measurements and is robust; "
        "the spanner route pays a polylog setup cost but routes every "
        "write along near-shortest paths once built (Theorem 20 runs "
        "both and keeps the winner).\n");
  }
  return 0;
}
