file(REMOVE_RECURSE
  "CMakeFiles/exp_biased_pushpull.dir/exp_biased_pushpull.cpp.o"
  "CMakeFiles/exp_biased_pushpull.dir/exp_biased_pushpull.cpp.o.d"
  "exp_biased_pushpull"
  "exp_biased_pushpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_biased_pushpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
