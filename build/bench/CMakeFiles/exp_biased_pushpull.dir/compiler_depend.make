# Empty compiler generated dependencies file for exp_biased_pushpull.
# This may be replaced when dependencies are built.
