# Empty dependencies file for exp_local_broadcast.
# This may be replaced when dependencies are built.
