file(REMOVE_RECURSE
  "CMakeFiles/exp_local_broadcast.dir/exp_local_broadcast.cpp.o"
  "CMakeFiles/exp_local_broadcast.dir/exp_local_broadcast.cpp.o.d"
  "exp_local_broadcast"
  "exp_local_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_local_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
