# Empty dependencies file for exp_spread_curve.
# This may be replaced when dependencies are built.
