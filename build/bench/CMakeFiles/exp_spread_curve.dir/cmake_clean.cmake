file(REMOVE_RECURSE
  "CMakeFiles/exp_spread_curve.dir/exp_spread_curve.cpp.o"
  "CMakeFiles/exp_spread_curve.dir/exp_spread_curve.cpp.o.d"
  "exp_spread_curve"
  "exp_spread_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_spread_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
