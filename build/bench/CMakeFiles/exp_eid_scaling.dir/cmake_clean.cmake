file(REMOVE_RECURSE
  "CMakeFiles/exp_eid_scaling.dir/exp_eid_scaling.cpp.o"
  "CMakeFiles/exp_eid_scaling.dir/exp_eid_scaling.cpp.o.d"
  "exp_eid_scaling"
  "exp_eid_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_eid_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
