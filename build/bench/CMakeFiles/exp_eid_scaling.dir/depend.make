# Empty dependencies file for exp_eid_scaling.
# This may be replaced when dependencies are built.
