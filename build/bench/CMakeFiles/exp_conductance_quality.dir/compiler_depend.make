# Empty compiler generated dependencies file for exp_conductance_quality.
# This may be replaced when dependencies are built.
