file(REMOVE_RECURSE
  "CMakeFiles/exp_conductance_quality.dir/exp_conductance_quality.cpp.o"
  "CMakeFiles/exp_conductance_quality.dir/exp_conductance_quality.cpp.o.d"
  "exp_conductance_quality"
  "exp_conductance_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_conductance_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
