file(REMOVE_RECURSE
  "CMakeFiles/exp_thm6_delta.dir/exp_thm6_delta.cpp.o"
  "CMakeFiles/exp_thm6_delta.dir/exp_thm6_delta.cpp.o.d"
  "exp_thm6_delta"
  "exp_thm6_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm6_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
