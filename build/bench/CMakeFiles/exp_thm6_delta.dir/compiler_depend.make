# Empty compiler generated dependencies file for exp_thm6_delta.
# This may be replaced when dependencies are built.
