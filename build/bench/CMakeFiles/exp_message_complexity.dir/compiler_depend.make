# Empty compiler generated dependencies file for exp_message_complexity.
# This may be replaced when dependencies are built.
