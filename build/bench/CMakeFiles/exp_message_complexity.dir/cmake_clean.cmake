file(REMOVE_RECURSE
  "CMakeFiles/exp_message_complexity.dir/exp_message_complexity.cpp.o"
  "CMakeFiles/exp_message_complexity.dir/exp_message_complexity.cpp.o.d"
  "exp_message_complexity"
  "exp_message_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_message_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
