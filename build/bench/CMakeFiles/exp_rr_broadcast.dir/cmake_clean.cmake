file(REMOVE_RECURSE
  "CMakeFiles/exp_rr_broadcast.dir/exp_rr_broadcast.cpp.o"
  "CMakeFiles/exp_rr_broadcast.dir/exp_rr_broadcast.cpp.o.d"
  "exp_rr_broadcast"
  "exp_rr_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rr_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
