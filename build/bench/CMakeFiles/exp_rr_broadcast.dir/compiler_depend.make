# Empty compiler generated dependencies file for exp_rr_broadcast.
# This may be replaced when dependencies are built.
