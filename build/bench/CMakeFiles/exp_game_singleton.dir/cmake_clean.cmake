file(REMOVE_RECURSE
  "CMakeFiles/exp_game_singleton.dir/exp_game_singleton.cpp.o"
  "CMakeFiles/exp_game_singleton.dir/exp_game_singleton.cpp.o.d"
  "exp_game_singleton"
  "exp_game_singleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_game_singleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
