# Empty compiler generated dependencies file for exp_game_singleton.
# This may be replaced when dependencies are built.
