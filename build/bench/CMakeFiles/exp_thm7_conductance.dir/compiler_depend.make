# Empty compiler generated dependencies file for exp_thm7_conductance.
# This may be replaced when dependencies are built.
