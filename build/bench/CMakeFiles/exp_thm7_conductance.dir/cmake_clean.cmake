file(REMOVE_RECURSE
  "CMakeFiles/exp_thm7_conductance.dir/exp_thm7_conductance.cpp.o"
  "CMakeFiles/exp_thm7_conductance.dir/exp_thm7_conductance.cpp.o.d"
  "exp_thm7_conductance"
  "exp_thm7_conductance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm7_conductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
