file(REMOVE_RECURSE
  "CMakeFiles/exp_tk_schedule.dir/exp_tk_schedule.cpp.o"
  "CMakeFiles/exp_tk_schedule.dir/exp_tk_schedule.cpp.o.d"
  "exp_tk_schedule"
  "exp_tk_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tk_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
