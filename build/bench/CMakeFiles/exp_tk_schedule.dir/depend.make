# Empty dependencies file for exp_tk_schedule.
# This may be replaced when dependencies are built.
