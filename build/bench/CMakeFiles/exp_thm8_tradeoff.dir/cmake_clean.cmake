file(REMOVE_RECURSE
  "CMakeFiles/exp_thm8_tradeoff.dir/exp_thm8_tradeoff.cpp.o"
  "CMakeFiles/exp_thm8_tradeoff.dir/exp_thm8_tradeoff.cpp.o.d"
  "exp_thm8_tradeoff"
  "exp_thm8_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_thm8_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
