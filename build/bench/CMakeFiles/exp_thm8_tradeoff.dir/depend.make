# Empty dependencies file for exp_thm8_tradeoff.
# This may be replaced when dependencies are built.
