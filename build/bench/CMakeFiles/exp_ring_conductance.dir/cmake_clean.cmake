file(REMOVE_RECURSE
  "CMakeFiles/exp_ring_conductance.dir/exp_ring_conductance.cpp.o"
  "CMakeFiles/exp_ring_conductance.dir/exp_ring_conductance.cpp.o.d"
  "exp_ring_conductance"
  "exp_ring_conductance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ring_conductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
