# Empty dependencies file for exp_ring_conductance.
# This may be replaced when dependencies are built.
