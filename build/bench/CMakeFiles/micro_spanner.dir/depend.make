# Empty dependencies file for micro_spanner.
# This may be replaced when dependencies are built.
