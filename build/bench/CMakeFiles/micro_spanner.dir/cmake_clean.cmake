file(REMOVE_RECURSE
  "CMakeFiles/micro_spanner.dir/micro_spanner.cpp.o"
  "CMakeFiles/micro_spanner.dir/micro_spanner.cpp.o.d"
  "micro_spanner"
  "micro_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
