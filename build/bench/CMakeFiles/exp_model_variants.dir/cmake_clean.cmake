file(REMOVE_RECURSE
  "CMakeFiles/exp_model_variants.dir/exp_model_variants.cpp.o"
  "CMakeFiles/exp_model_variants.dir/exp_model_variants.cpp.o.d"
  "exp_model_variants"
  "exp_model_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_model_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
