# Empty dependencies file for exp_model_variants.
# This may be replaced when dependencies are built.
