file(REMOVE_RECURSE
  "CMakeFiles/exp_latency_discovery.dir/exp_latency_discovery.cpp.o"
  "CMakeFiles/exp_latency_discovery.dir/exp_latency_discovery.cpp.o.d"
  "exp_latency_discovery"
  "exp_latency_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_latency_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
