# Empty compiler generated dependencies file for exp_latency_discovery.
# This may be replaced when dependencies are built.
