file(REMOVE_RECURSE
  "CMakeFiles/exp_game_randomp.dir/exp_game_randomp.cpp.o"
  "CMakeFiles/exp_game_randomp.dir/exp_game_randomp.cpp.o.d"
  "exp_game_randomp"
  "exp_game_randomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_game_randomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
