# Empty compiler generated dependencies file for exp_game_randomp.
# This may be replaced when dependencies are built.
