file(REMOVE_RECURSE
  "CMakeFiles/exp_spanner_quality.dir/exp_spanner_quality.cpp.o"
  "CMakeFiles/exp_spanner_quality.dir/exp_spanner_quality.cpp.o.d"
  "exp_spanner_quality"
  "exp_spanner_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_spanner_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
