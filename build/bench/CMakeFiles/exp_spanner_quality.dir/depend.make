# Empty dependencies file for exp_spanner_quality.
# This may be replaced when dependencies are built.
