# Empty dependencies file for exp_unified.
# This may be replaced when dependencies are built.
