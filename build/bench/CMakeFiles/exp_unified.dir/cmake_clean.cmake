file(REMOVE_RECURSE
  "CMakeFiles/exp_unified.dir/exp_unified.cpp.o"
  "CMakeFiles/exp_unified.dir/exp_unified.cpp.o.d"
  "exp_unified"
  "exp_unified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_unified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
