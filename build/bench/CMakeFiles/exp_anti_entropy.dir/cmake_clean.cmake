file(REMOVE_RECURSE
  "CMakeFiles/exp_anti_entropy.dir/exp_anti_entropy.cpp.o"
  "CMakeFiles/exp_anti_entropy.dir/exp_anti_entropy.cpp.o.d"
  "exp_anti_entropy"
  "exp_anti_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_anti_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
