# Empty compiler generated dependencies file for exp_anti_entropy.
# This may be replaced when dependencies are built.
