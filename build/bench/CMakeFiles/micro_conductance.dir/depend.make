# Empty dependencies file for micro_conductance.
# This may be replaced when dependencies are built.
