file(REMOVE_RECURSE
  "CMakeFiles/micro_conductance.dir/micro_conductance.cpp.o"
  "CMakeFiles/micro_conductance.dir/micro_conductance.cpp.o.d"
  "micro_conductance"
  "micro_conductance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_conductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
