file(REMOVE_RECURSE
  "CMakeFiles/exp_pushpull_upper.dir/exp_pushpull_upper.cpp.o"
  "CMakeFiles/exp_pushpull_upper.dir/exp_pushpull_upper.cpp.o.d"
  "exp_pushpull_upper"
  "exp_pushpull_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pushpull_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
