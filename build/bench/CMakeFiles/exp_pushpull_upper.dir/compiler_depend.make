# Empty compiler generated dependencies file for exp_pushpull_upper.
# This may be replaced when dependencies are built.
