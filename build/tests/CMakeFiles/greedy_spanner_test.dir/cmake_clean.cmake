file(REMOVE_RECURSE
  "CMakeFiles/greedy_spanner_test.dir/greedy_spanner_test.cpp.o"
  "CMakeFiles/greedy_spanner_test.dir/greedy_spanner_test.cpp.o.d"
  "greedy_spanner_test"
  "greedy_spanner_test.pdb"
  "greedy_spanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_spanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
