file(REMOVE_RECURSE
  "CMakeFiles/latency_discovery_test.dir/latency_discovery_test.cpp.o"
  "CMakeFiles/latency_discovery_test.dir/latency_discovery_test.cpp.o.d"
  "latency_discovery_test"
  "latency_discovery_test.pdb"
  "latency_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
