file(REMOVE_RECURSE
  "CMakeFiles/model_variants_test.dir/model_variants_test.cpp.o"
  "CMakeFiles/model_variants_test.dir/model_variants_test.cpp.o.d"
  "model_variants_test"
  "model_variants_test.pdb"
  "model_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
