file(REMOVE_RECURSE
  "CMakeFiles/biased_push_pull_test.dir/biased_push_pull_test.cpp.o"
  "CMakeFiles/biased_push_pull_test.dir/biased_push_pull_test.cpp.o.d"
  "biased_push_pull_test"
  "biased_push_pull_test.pdb"
  "biased_push_pull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_push_pull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
