# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for biased_push_pull_test.
