# Empty dependencies file for biased_push_pull_test.
# This may be replaced when dependencies are built.
