# Empty dependencies file for push_pull_test.
# This may be replaced when dependencies are built.
