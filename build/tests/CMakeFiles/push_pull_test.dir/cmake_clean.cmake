file(REMOVE_RECURSE
  "CMakeFiles/push_pull_test.dir/push_pull_test.cpp.o"
  "CMakeFiles/push_pull_test.dir/push_pull_test.cpp.o.d"
  "push_pull_test"
  "push_pull_test.pdb"
  "push_pull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_pull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
