file(REMOVE_RECURSE
  "CMakeFiles/dtg_test.dir/dtg_test.cpp.o"
  "CMakeFiles/dtg_test.dir/dtg_test.cpp.o.d"
  "dtg_test"
  "dtg_test.pdb"
  "dtg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
