# Empty compiler generated dependencies file for dtg_test.
# This may be replaced when dependencies are built.
