file(REMOVE_RECURSE
  "CMakeFiles/random_lb_test.dir/random_lb_test.cpp.o"
  "CMakeFiles/random_lb_test.dir/random_lb_test.cpp.o.d"
  "random_lb_test"
  "random_lb_test.pdb"
  "random_lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
