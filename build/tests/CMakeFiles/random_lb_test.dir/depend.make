# Empty dependencies file for random_lb_test.
# This may be replaced when dependencies are built.
