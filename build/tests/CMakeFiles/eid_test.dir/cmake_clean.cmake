file(REMOVE_RECURSE
  "CMakeFiles/eid_test.dir/eid_test.cpp.o"
  "CMakeFiles/eid_test.dir/eid_test.cpp.o.d"
  "eid_test"
  "eid_test.pdb"
  "eid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
