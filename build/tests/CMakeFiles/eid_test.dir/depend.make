# Empty dependencies file for eid_test.
# This may be replaced when dependencies are built.
