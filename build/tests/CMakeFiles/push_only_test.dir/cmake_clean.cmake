file(REMOVE_RECURSE
  "CMakeFiles/push_only_test.dir/push_only_test.cpp.o"
  "CMakeFiles/push_only_test.dir/push_only_test.cpp.o.d"
  "push_only_test"
  "push_only_test.pdb"
  "push_only_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_only_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
