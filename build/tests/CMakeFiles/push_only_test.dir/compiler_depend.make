# Empty compiler generated dependencies file for push_only_test.
# This may be replaced when dependencies are built.
