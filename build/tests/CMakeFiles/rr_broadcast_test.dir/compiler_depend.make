# Empty compiler generated dependencies file for rr_broadcast_test.
# This may be replaced when dependencies are built.
