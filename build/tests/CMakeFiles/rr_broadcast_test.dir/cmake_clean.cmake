file(REMOVE_RECURSE
  "CMakeFiles/rr_broadcast_test.dir/rr_broadcast_test.cpp.o"
  "CMakeFiles/rr_broadcast_test.dir/rr_broadcast_test.cpp.o.d"
  "rr_broadcast_test"
  "rr_broadcast_test.pdb"
  "rr_broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
