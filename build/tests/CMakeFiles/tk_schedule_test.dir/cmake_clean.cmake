file(REMOVE_RECURSE
  "CMakeFiles/tk_schedule_test.dir/tk_schedule_test.cpp.o"
  "CMakeFiles/tk_schedule_test.dir/tk_schedule_test.cpp.o.d"
  "tk_schedule_test"
  "tk_schedule_test.pdb"
  "tk_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tk_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
