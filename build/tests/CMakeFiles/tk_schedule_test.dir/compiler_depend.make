# Empty compiler generated dependencies file for tk_schedule_test.
# This may be replaced when dependencies are built.
