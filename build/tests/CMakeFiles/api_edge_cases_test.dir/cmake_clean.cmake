file(REMOVE_RECURSE
  "CMakeFiles/api_edge_cases_test.dir/api_edge_cases_test.cpp.o"
  "CMakeFiles/api_edge_cases_test.dir/api_edge_cases_test.cpp.o.d"
  "api_edge_cases_test"
  "api_edge_cases_test.pdb"
  "api_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
