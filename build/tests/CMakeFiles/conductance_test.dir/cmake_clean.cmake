file(REMOVE_RECURSE
  "CMakeFiles/conductance_test.dir/conductance_test.cpp.o"
  "CMakeFiles/conductance_test.dir/conductance_test.cpp.o.d"
  "conductance_test"
  "conductance_test.pdb"
  "conductance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conductance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
