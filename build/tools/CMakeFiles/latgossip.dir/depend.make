# Empty dependencies file for latgossip.
# This may be replaced when dependencies are built.
