file(REMOVE_RECURSE
  "CMakeFiles/latgossip.dir/latgossip_cli.cpp.o"
  "CMakeFiles/latgossip.dir/latgossip_cli.cpp.o.d"
  "latgossip"
  "latgossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
