# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_gen "/root/repo/build/tools/latgossip" "gen" "--family=ring_cliques" "--cliques=4" "--size=4" "--bridge=8" "--out=/root/repo/build/tools/cli_test.graph")
set_tests_properties(cli_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/latgossip" "analyze" "--in=/root/repo/build/tools/cli_test.graph")
set_tests_properties(cli_analyze PROPERTIES  DEPENDS "cli_gen" PASS_REGULAR_EXPRESSION "connected      yes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_pushpull "/root/repo/build/tools/latgossip" "run" "--in=/root/repo/build/tools/cli_test.graph" "--proto=pushpull" "--seed=3")
set_tests_properties(cli_run_pushpull PROPERTIES  DEPENDS "cli_gen" PASS_REGULAR_EXPRESSION "complete       yes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_eid "/root/repo/build/tools/latgossip" "run" "--in=/root/repo/build/tools/cli_test.graph" "--proto=eid")
set_tests_properties(cli_run_eid PROPERTIES  DEPENDS "cli_gen" PASS_REGULAR_EXPRESSION "complete       yes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_tk "/root/repo/build/tools/latgossip" "run" "--in=/root/repo/build/tools/cli_test.graph" "--proto=tk")
set_tests_properties(cli_run_tk PROPERTIES  DEPENDS "cli_gen" PASS_REGULAR_EXPRESSION "complete       yes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_unified "/root/repo/build/tools/latgossip" "run" "--in=/root/repo/build/tools/cli_test.graph" "--proto=unified" "--known-latencies")
set_tests_properties(cli_run_unified PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_game "/root/repo/build/tools/latgossip" "game" "--m=32" "--p=0.1" "--strategy=adaptive")
set_tests_properties(cli_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_family "/root/repo/build/tools/latgossip" "gen" "--family=nonsense")
set_tests_properties(cli_rejects_bad_family PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_input "/root/repo/build/tools/latgossip" "analyze")
set_tests_properties(cli_rejects_missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
