# Empty compiler generated dependencies file for latgossip_core.
# This may be replaced when dependencies are built.
