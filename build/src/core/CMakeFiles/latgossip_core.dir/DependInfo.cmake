
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dtg.cpp" "src/core/CMakeFiles/latgossip_core.dir/dtg.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/dtg.cpp.o.d"
  "/root/repo/src/core/eid.cpp" "src/core/CMakeFiles/latgossip_core.dir/eid.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/eid.cpp.o.d"
  "/root/repo/src/core/flooding.cpp" "src/core/CMakeFiles/latgossip_core.dir/flooding.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/flooding.cpp.o.d"
  "/root/repo/src/core/latency_discovery.cpp" "src/core/CMakeFiles/latgossip_core.dir/latency_discovery.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/latency_discovery.cpp.o.d"
  "/root/repo/src/core/push_only.cpp" "src/core/CMakeFiles/latgossip_core.dir/push_only.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/push_only.cpp.o.d"
  "/root/repo/src/core/push_pull.cpp" "src/core/CMakeFiles/latgossip_core.dir/push_pull.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/push_pull.cpp.o.d"
  "/root/repo/src/core/random_local_broadcast.cpp" "src/core/CMakeFiles/latgossip_core.dir/random_local_broadcast.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/random_local_broadcast.cpp.o.d"
  "/root/repo/src/core/rr_broadcast.cpp" "src/core/CMakeFiles/latgossip_core.dir/rr_broadcast.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/rr_broadcast.cpp.o.d"
  "/root/repo/src/core/spanner.cpp" "src/core/CMakeFiles/latgossip_core.dir/spanner.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/spanner.cpp.o.d"
  "/root/repo/src/core/termination.cpp" "src/core/CMakeFiles/latgossip_core.dir/termination.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/termination.cpp.o.d"
  "/root/repo/src/core/tk_schedule.cpp" "src/core/CMakeFiles/latgossip_core.dir/tk_schedule.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/tk_schedule.cpp.o.d"
  "/root/repo/src/core/unified.cpp" "src/core/CMakeFiles/latgossip_core.dir/unified.cpp.o" "gcc" "src/core/CMakeFiles/latgossip_core.dir/unified.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/latgossip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latgossip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
