file(REMOVE_RECURSE
  "liblatgossip_core.a"
)
