file(REMOVE_RECURSE
  "CMakeFiles/latgossip_core.dir/dtg.cpp.o"
  "CMakeFiles/latgossip_core.dir/dtg.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/eid.cpp.o"
  "CMakeFiles/latgossip_core.dir/eid.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/flooding.cpp.o"
  "CMakeFiles/latgossip_core.dir/flooding.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/latency_discovery.cpp.o"
  "CMakeFiles/latgossip_core.dir/latency_discovery.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/push_only.cpp.o"
  "CMakeFiles/latgossip_core.dir/push_only.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/push_pull.cpp.o"
  "CMakeFiles/latgossip_core.dir/push_pull.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/random_local_broadcast.cpp.o"
  "CMakeFiles/latgossip_core.dir/random_local_broadcast.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/rr_broadcast.cpp.o"
  "CMakeFiles/latgossip_core.dir/rr_broadcast.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/spanner.cpp.o"
  "CMakeFiles/latgossip_core.dir/spanner.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/termination.cpp.o"
  "CMakeFiles/latgossip_core.dir/termination.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/tk_schedule.cpp.o"
  "CMakeFiles/latgossip_core.dir/tk_schedule.cpp.o.d"
  "CMakeFiles/latgossip_core.dir/unified.cpp.o"
  "CMakeFiles/latgossip_core.dir/unified.cpp.o.d"
  "liblatgossip_core.a"
  "liblatgossip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
