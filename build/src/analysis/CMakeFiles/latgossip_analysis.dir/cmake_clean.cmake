file(REMOVE_RECURSE
  "CMakeFiles/latgossip_analysis.dir/conductance.cpp.o"
  "CMakeFiles/latgossip_analysis.dir/conductance.cpp.o.d"
  "CMakeFiles/latgossip_analysis.dir/distance.cpp.o"
  "CMakeFiles/latgossip_analysis.dir/distance.cpp.o.d"
  "CMakeFiles/latgossip_analysis.dir/spanner_check.cpp.o"
  "CMakeFiles/latgossip_analysis.dir/spanner_check.cpp.o.d"
  "CMakeFiles/latgossip_analysis.dir/spectral.cpp.o"
  "CMakeFiles/latgossip_analysis.dir/spectral.cpp.o.d"
  "liblatgossip_analysis.a"
  "liblatgossip_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
