
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/conductance.cpp" "src/analysis/CMakeFiles/latgossip_analysis.dir/conductance.cpp.o" "gcc" "src/analysis/CMakeFiles/latgossip_analysis.dir/conductance.cpp.o.d"
  "/root/repo/src/analysis/distance.cpp" "src/analysis/CMakeFiles/latgossip_analysis.dir/distance.cpp.o" "gcc" "src/analysis/CMakeFiles/latgossip_analysis.dir/distance.cpp.o.d"
  "/root/repo/src/analysis/spanner_check.cpp" "src/analysis/CMakeFiles/latgossip_analysis.dir/spanner_check.cpp.o" "gcc" "src/analysis/CMakeFiles/latgossip_analysis.dir/spanner_check.cpp.o.d"
  "/root/repo/src/analysis/spectral.cpp" "src/analysis/CMakeFiles/latgossip_analysis.dir/spectral.cpp.o" "gcc" "src/analysis/CMakeFiles/latgossip_analysis.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/latgossip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latgossip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
