# Empty dependencies file for latgossip_analysis.
# This may be replaced when dependencies are built.
