file(REMOVE_RECURSE
  "liblatgossip_analysis.a"
)
