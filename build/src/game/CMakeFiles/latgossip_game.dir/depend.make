# Empty dependencies file for latgossip_game.
# This may be replaced when dependencies are built.
