file(REMOVE_RECURSE
  "liblatgossip_game.a"
)
