file(REMOVE_RECURSE
  "CMakeFiles/latgossip_game.dir/game.cpp.o"
  "CMakeFiles/latgossip_game.dir/game.cpp.o.d"
  "CMakeFiles/latgossip_game.dir/reduction.cpp.o"
  "CMakeFiles/latgossip_game.dir/reduction.cpp.o.d"
  "CMakeFiles/latgossip_game.dir/strategies.cpp.o"
  "CMakeFiles/latgossip_game.dir/strategies.cpp.o.d"
  "liblatgossip_game.a"
  "liblatgossip_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
