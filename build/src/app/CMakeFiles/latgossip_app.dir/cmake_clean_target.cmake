file(REMOVE_RECURSE
  "liblatgossip_app.a"
)
