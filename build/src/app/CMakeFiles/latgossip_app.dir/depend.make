# Empty dependencies file for latgossip_app.
# This may be replaced when dependencies are built.
