
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/aggregate.cpp" "src/app/CMakeFiles/latgossip_app.dir/aggregate.cpp.o" "gcc" "src/app/CMakeFiles/latgossip_app.dir/aggregate.cpp.o.d"
  "/root/repo/src/app/anti_entropy.cpp" "src/app/CMakeFiles/latgossip_app.dir/anti_entropy.cpp.o" "gcc" "src/app/CMakeFiles/latgossip_app.dir/anti_entropy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/latgossip_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latgossip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
