file(REMOVE_RECURSE
  "CMakeFiles/latgossip_app.dir/aggregate.cpp.o"
  "CMakeFiles/latgossip_app.dir/aggregate.cpp.o.d"
  "CMakeFiles/latgossip_app.dir/anti_entropy.cpp.o"
  "CMakeFiles/latgossip_app.dir/anti_entropy.cpp.o.d"
  "liblatgossip_app.a"
  "liblatgossip_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
