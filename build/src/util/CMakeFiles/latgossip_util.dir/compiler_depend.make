# Empty compiler generated dependencies file for latgossip_util.
# This may be replaced when dependencies are built.
