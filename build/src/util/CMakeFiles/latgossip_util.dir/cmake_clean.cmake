file(REMOVE_RECURSE
  "CMakeFiles/latgossip_util.dir/args.cpp.o"
  "CMakeFiles/latgossip_util.dir/args.cpp.o.d"
  "CMakeFiles/latgossip_util.dir/fit.cpp.o"
  "CMakeFiles/latgossip_util.dir/fit.cpp.o.d"
  "CMakeFiles/latgossip_util.dir/rng.cpp.o"
  "CMakeFiles/latgossip_util.dir/rng.cpp.o.d"
  "CMakeFiles/latgossip_util.dir/stats.cpp.o"
  "CMakeFiles/latgossip_util.dir/stats.cpp.o.d"
  "CMakeFiles/latgossip_util.dir/table.cpp.o"
  "CMakeFiles/latgossip_util.dir/table.cpp.o.d"
  "liblatgossip_util.a"
  "liblatgossip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
