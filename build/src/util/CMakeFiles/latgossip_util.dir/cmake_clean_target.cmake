file(REMOVE_RECURSE
  "liblatgossip_util.a"
)
