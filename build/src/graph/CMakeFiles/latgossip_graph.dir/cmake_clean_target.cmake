file(REMOVE_RECURSE
  "liblatgossip_graph.a"
)
