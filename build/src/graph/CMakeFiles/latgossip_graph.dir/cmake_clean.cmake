file(REMOVE_RECURSE
  "CMakeFiles/latgossip_graph.dir/digraph.cpp.o"
  "CMakeFiles/latgossip_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/latgossip_graph.dir/gadgets.cpp.o"
  "CMakeFiles/latgossip_graph.dir/gadgets.cpp.o.d"
  "CMakeFiles/latgossip_graph.dir/generators.cpp.o"
  "CMakeFiles/latgossip_graph.dir/generators.cpp.o.d"
  "CMakeFiles/latgossip_graph.dir/graph.cpp.o"
  "CMakeFiles/latgossip_graph.dir/graph.cpp.o.d"
  "CMakeFiles/latgossip_graph.dir/io.cpp.o"
  "CMakeFiles/latgossip_graph.dir/io.cpp.o.d"
  "CMakeFiles/latgossip_graph.dir/latency_models.cpp.o"
  "CMakeFiles/latgossip_graph.dir/latency_models.cpp.o.d"
  "liblatgossip_graph.a"
  "liblatgossip_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latgossip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
