# Empty compiler generated dependencies file for latgossip_graph.
# This may be replaced when dependencies are built.
