file(REMOVE_RECURSE
  "CMakeFiles/db_replication.dir/db_replication.cpp.o"
  "CMakeFiles/db_replication.dir/db_replication.cpp.o.d"
  "db_replication"
  "db_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
