# Empty compiler generated dependencies file for db_replication.
# This may be replaced when dependencies are built.
