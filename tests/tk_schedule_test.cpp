// Tests for the T(k) schedule and Path Discovery (Appendix E).

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/rr_broadcast.h"
#include "core/tk_schedule.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(TkPattern, BaseAndRecursion) {
  EXPECT_EQ(tk_pattern(1), (std::vector<Latency>{1}));
  EXPECT_EQ(tk_pattern(2), (std::vector<Latency>{1, 2, 1}));
  EXPECT_EQ(tk_pattern(4), (std::vector<Latency>{1, 2, 1, 4, 1, 2, 1}));
  EXPECT_EQ(tk_pattern(8),
            (std::vector<Latency>{1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2,
                                  1}));
}

TEST(TkPattern, LengthIs2kMinus1) {
  for (Latency k : {1, 2, 4, 8, 16, 32})
    EXPECT_EQ(tk_pattern(k).size(), static_cast<std::size_t>(2 * k - 1));
}

TEST(TkPattern, RejectsNonPowerOfTwo) {
  EXPECT_THROW(tk_pattern(3), std::invalid_argument);
  EXPECT_THROW(tk_pattern(0), std::invalid_argument);
}

TEST(TkPattern, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1);
  EXPECT_EQ(next_power_of_two(3), 4);
  EXPECT_EQ(next_power_of_two(4), 4);
  EXPECT_EQ(next_power_of_two(9), 16);
  EXPECT_THROW(next_power_of_two(0), std::invalid_argument);
}

TEST(TkSchedule, Lemma24DistanceKPairsExchange) {
  // After T(k), every pair at weighted distance <= k has exchanged.
  Rng gen(3);
  auto g = make_erdos_renyi(14, 0.3, gen);
  assign_random_uniform_latency(g, 1, 6, gen);
  const Latency k = 8;
  const TkOutcome out = run_tk_schedule(g, k, own_id_rumors(14));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = dijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] == kUnreachable || dist[v] > k) continue;
      EXPECT_TRUE(out.rumors[u].test(v)) << u << " missing " << v;
      EXPECT_TRUE(out.rumors[v].test(u)) << v << " missing " << u;
    }
  }
}

TEST(TkSchedule, SolvesAllToAllWithKAtLeastDiameter) {
  auto g = make_ring_of_cliques(4, 3, 4);
  const Latency d = weighted_diameter(g);
  const TkOutcome out = run_tk_schedule(g, d, own_id_rumors(g.num_nodes()));
  EXPECT_TRUE(out.all_to_all);
}

TEST(TkSchedule, HeavyMiddleEdgePath) {
  // Case 2a/2b of Lemma 24: a single edge of latency in (k/2, k].
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 7}, {2, 3, 1}});
  const TkOutcome out = run_tk_schedule(g, 16, own_id_rumors(4));
  EXPECT_TRUE(out.all_to_all);
}

TEST(TkSchedule, SmallKStoppedByHeavyBridge) {
  // Lemma 24 guarantees distance <= k pairs exchange; beyond that DTG
  // may relay transitively on fast edges, so the only hard barrier for
  // a small k is an edge slower than k.
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 9}, {2, 3, 1}});
  const TkOutcome out = run_tk_schedule(g, 4, own_id_rumors(4));
  EXPECT_FALSE(out.all_to_all);
  EXPECT_FALSE(out.rumors[0].test(2));  // behind the bridge
  EXPECT_TRUE(out.rumors[0].test(1));   // distance 1 pair exchanged
}

TEST(TkSchedule, RoundsGrowWithK) {
  const auto g = make_path(8);
  const TkOutcome small = run_tk_schedule(g, 2, own_id_rumors(8));
  const TkOutcome large = run_tk_schedule(g, 8, own_id_rumors(8));
  EXPECT_GT(large.sim.rounds, small.sim.rounds);
}

TEST(PathDiscovery, ConvergesOnUnitGraphs) {
  Rng gen(7);
  auto g = make_erdos_renyi(12, 0.35, gen);
  const PathDiscoveryOutcome out = run_path_discovery(g);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_TRUE(out.checks_unanimous);
}

TEST(PathDiscovery, ConvergesOnWeightedGraphs) {
  auto g = make_ring_of_cliques(3, 3, 5);
  const PathDiscoveryOutcome out = run_path_discovery(g);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  // Needs k >= D; D here is >= 5 (a bridge), so at least 3 doublings.
  EXPECT_GE(out.attempts, 3u);
}

TEST(PathDiscovery, HeavyBridgeForcesEstimateUpToLatency) {
  // Transitive DTG relays can finish unit graphs at tiny estimates, but
  // an edge of latency 12 is a hard barrier until k >= 12.
  const auto g = build_graph(4, {{0, 1, 1}, {1, 2, 12}, {2, 3, 1}});
  const PathDiscoveryOutcome out = run_path_discovery(g);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_GE(out.final_estimate, 12);
}

TEST(TkSchedule, ValidatesInput) {
  const auto g = make_path(3);
  EXPECT_THROW(run_tk_schedule(g, 2, own_id_rumors(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
