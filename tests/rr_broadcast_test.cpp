// Tests for RR Broadcast on an oriented overlay (Algorithm 2, Lemma 15).

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

/// Orient every edge of g in both directions (the trivial overlay).
DirectedGraph full_overlay(const WeightedGraph& g) {
  DirectedGraph d(g.num_nodes());
  for (const Edge& e : g.edges()) {
    d.add_arc(e.u, e.v, e.latency);
    d.add_arc(e.v, e.u, e.latency);
  }
  return d;
}

struct RrRun {
  SimResult sim;
  std::vector<Bitset> rumors;
  Round budget = 0;
};

RrRun run_rr(const WeightedGraph& g, const DirectedGraph& overlay, Latency k,
             Round budget_override = 0) {
  NetworkView view(g, true);
  RRBroadcast proto(view, overlay, k, own_id_rumors(g.num_nodes()),
                    budget_override);
  SimOptions opts;
  opts.max_rounds = proto.budget() + k + 4;
  RrRun run;
  run.budget = proto.budget();
  run.sim = run_gossip(g, proto, opts);
  run.rumors = proto.take_rumors();
  return run;
}

TEST(RRBroadcast, Lemma15DistanceKPairsExchange) {
  // After RR Broadcast with parameter k, any two nodes at weighted
  // distance <= k have exchanged rumors.
  Rng rng(3);
  auto g = make_erdos_renyi(18, 0.25, rng);
  assign_random_uniform_latency(g, 1, 6, rng);
  const Latency k = 9;
  const RrRun run = run_rr(g, full_overlay(g), k);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = dijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] == kUnreachable || dist[v] > k) continue;
      EXPECT_TRUE(run.rumors[u].test(v)) << u << " <- " << v;
      EXPECT_TRUE(run.rumors[v].test(u)) << v << " <- " << u;
    }
  }
}

TEST(RRBroadcast, BudgetMatchesLemma15Formula) {
  const auto g = make_cycle(8);
  const auto overlay = full_overlay(g);  // out-degree 2 everywhere
  NetworkView view(g, true);
  RRBroadcast proto(view, overlay, 5, own_id_rumors(8));
  EXPECT_EQ(proto.budget(), 5 * 2 + 5);
}

TEST(RRBroadcast, ArcsAboveKIgnored) {
  // A latency-10 edge must not be used at k = 2.
  const auto g = build_graph(3, {{0, 1, 1}, {1, 2, 10}});
  const RrRun run = run_rr(g, full_overlay(g), 2);
  EXPECT_TRUE(run.rumors[0].test(1));
  EXPECT_FALSE(run.rumors[2].test(0));
  EXPECT_FALSE(run.rumors[0].test(2));
}

TEST(RRBroadcast, WorksOnSpannerOverlay) {
  Rng rng(7);
  auto g = make_clique(24);
  assign_random_uniform_latency(g, 1, 4, rng);
  Rng spanner_rng(11);
  const auto spanner = build_baswana_sen_spanner(g, {0, 0}, spanner_rng);
  // Spanner stretch (2 log n - 1) times diameter (<= 4) bounds distances.
  const Latency k = 4 * (2 * 5 - 1);
  const RrRun run = run_rr(g, spanner, k);
  EXPECT_TRUE(all_sets_full(run.rumors));
}

TEST(RRBroadcast, BudgetOverrideRespected) {
  const auto g = make_cycle(6);
  const RrRun run = run_rr(g, full_overlay(g), 3, /*budget_override=*/2);
  EXPECT_EQ(run.budget, 2);
  EXPECT_LE(run.sim.activations, 2u * 6u);
}

TEST(RRBroadcast, NodeWithNoOutArcsStaysQuietButReceives) {
  // Orient a path 0->1->2 one way only; node 2 initiates nothing but
  // still learns everything through incoming exchanges.
  const auto g = make_path(3);
  DirectedGraph overlay(3);
  overlay.add_arc(0, 1, 1);
  overlay.add_arc(1, 2, 1);
  const RrRun run = run_rr(g, overlay, 3);
  EXPECT_TRUE(run.rumors[2].test(0));
  EXPECT_TRUE(run.rumors[2].test(1));
  // And symmetrically the exchange is bidirectional:
  EXPECT_TRUE(run.rumors[0].test(1));
}

TEST(RRBroadcast, ValidatesInput) {
  const auto g = make_path(3);
  NetworkView view(g, true);
  const auto overlay = full_overlay(g);
  EXPECT_THROW(RRBroadcast(view, overlay, 0, own_id_rumors(3)),
               std::invalid_argument);
  EXPECT_THROW(RRBroadcast(view, overlay, 1, own_id_rumors(2)),
               std::invalid_argument);
  EXPECT_THROW(RRBroadcast(view, DirectedGraph(2), 1, own_id_rumors(3)),
               std::invalid_argument);
}

TEST(RRBroadcastHelpers, AllSetsFullAndLocalBroadcastComplete) {
  const auto g = make_path(3);
  auto rumors = own_id_rumors(3);
  EXPECT_FALSE(all_sets_full(rumors));
  EXPECT_FALSE(local_broadcast_complete(g, rumors));
  for (auto& b : rumors) b.set_all();
  EXPECT_TRUE(all_sets_full(rumors));
  EXPECT_TRUE(local_broadcast_complete(g, rumors));
}

}  // namespace
}  // namespace latgossip
