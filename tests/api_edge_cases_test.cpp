// Edge-case coverage across API seams: degenerate sizes, option
// validation, and metric accounting details not covered elsewhere.

#include <gtest/gtest.h>

#include "latgossip.h"

namespace latgossip {
namespace {

TEST(Metrics, AccumulateSumsAndTracksPeak) {
  SimResult a, b;
  a.rounds = 10;
  a.activations = 5;
  a.messages_delivered = 8;
  a.messages_dropped = 1;
  a.payload_bits = 100;
  a.max_inflight = 4;
  b.rounds = 7;
  b.activations = 2;
  b.messages_delivered = 4;
  b.exchanges_rejected = 3;
  b.payload_bits = 50;
  b.max_inflight = 9;
  b.completed = true;
  a.accumulate(b);
  EXPECT_EQ(a.rounds, 17);
  EXPECT_EQ(a.activations, 7u);
  EXPECT_EQ(a.messages_delivered, 12u);
  EXPECT_EQ(a.messages_dropped, 1u);
  EXPECT_EQ(a.exchanges_rejected, 3u);
  EXPECT_EQ(a.payload_bits, 150u);
  EXPECT_EQ(a.max_inflight, 9u);
  EXPECT_TRUE(a.completed);  // takes the latest phase's flag
}

TEST(Engine, TwoNodeGraphSmallestNontrivialCase) {
  const auto g = build_graph(2, {{0, 1, 1}});
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(1));
  const SimResult r = run_gossip(g, proto, {});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1);  // one unit-latency exchange
}

TEST(Engine, SingleNodeGraphIsTriviallyDone) {
  WeightedGraph g(1);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(1));
  const SimResult r = run_gossip(g, proto, {});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 0);
}

TEST(TerminationCheck, SingleNodeNeverFails) {
  const WeightedGraph g(1);
  std::vector<Bitset> rumors(1, Bitset(1));
  rumors[0].set(0);
  auto broadcast = [&]() {
    return std::make_pair(std::vector<Bitset>{rumors[0]}, SimResult{});
  };
  const CheckOutcome out = run_termination_check(g, rumors, broadcast);
  EXPECT_FALSE(out.failed);
  EXPECT_TRUE(out.unanimous);
}

TEST(TerminationCheck, ValidatesRumorSize) {
  const auto g = make_path(3);
  auto broadcast = [&]() {
    return std::make_pair(own_id_rumors(3), SimResult{});
  };
  EXPECT_THROW(run_termination_check(g, own_id_rumors(2), broadcast),
               std::invalid_argument);
}

TEST(Eid, SingleNodeAndTwoNodeGraphs) {
  Rng rng(3);
  {
    const WeightedGraph g(1);
    const GeneralEidOutcome out = run_general_eid(g, 0, rng);
    EXPECT_TRUE(out.success);
  }
  {
    const auto g = build_graph(2, {{0, 1, 4}});
    const GeneralEidOutcome out = run_general_eid(g, 0, rng);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(all_sets_full(out.rumors));
    EXPECT_GE(out.final_estimate, 4);  // must grow to the edge latency
  }
}

TEST(Unified, TwoNodeGraph) {
  const auto g = build_graph(2, {{0, 1, 3}});
  Rng rng(5);
  UnifiedOptions opts;
  opts.latencies_known = true;
  const UnifiedOutcome out = run_unified(g, opts, rng);
  EXPECT_TRUE(out.completed);
  EXPECT_GE(out.unified_rounds, 3);
}

TEST(Spanner, SingleEdgeGraph) {
  const auto g = build_graph(2, {{0, 1, 7}});
  Rng rng(7);
  const auto spanner = build_baswana_sen_spanner(g, {2, 0}, rng);
  const auto undirected = spanner.to_undirected();
  EXPECT_TRUE(undirected.is_connected());
  EXPECT_EQ(undirected.num_edges(), 1u);
}

TEST(Gadget, MinimumSizeM2) {
  Rng rng(9);
  const auto gg = make_guessing_gadget(2, make_singleton_target(2, rng), 1,
                                       10, true);
  EXPECT_EQ(gg.graph.num_nodes(), 4u);
  EXPECT_TRUE(gg.graph.is_connected());
}

TEST(Discovery, BudgetOneStillLearnsUnitEdges) {
  const auto g = make_clique(5);  // all unit latencies
  const DiscoveryOutcome out = discover_latencies(g, 1);
  EXPECT_EQ(out.edges_discovered, g.num_edges());
}

TEST(TkSchedule, SingleNodeGraph) {
  const WeightedGraph g(1);
  const TkOutcome out = run_tk_schedule(g, 1, own_id_rumors(1));
  EXPECT_TRUE(out.all_to_all);
}

TEST(Game, SingleElementUniverse) {
  GuessingGame game(1, {{0, 0}});
  const auto hits = game.submit_round({{0, 0}});
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_TRUE(game.solved());
}

TEST(LayeredRing, SmallestValidRing) {
  Rng rng(11);
  const auto ring = make_layered_ring(3, 2, 2, rng);
  EXPECT_EQ(ring.graph.num_nodes(), 6u);
  EXPECT_TRUE(ring.graph.is_connected());
  // (3s-1)-regularity holds even at the minimum size.
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(ring.graph.degree(v), 5u);
}

TEST(KvStore, EmptyStoreDigestsEqual) {
  KvStore a(0), b(1);
  EXPECT_EQ(a.digest(), b.digest());  // digest covers content, not owner
  EXPECT_EQ(a.get("missing"), nullptr);
  EXPECT_TRUE(a.snapshot().empty());
}

TEST(AntiEntropy, AlreadyConvergedFinishesImmediately) {
  const auto g = make_clique(4);
  std::vector<KvStore> stores;
  for (NodeId v = 0; v < 4; ++v) stores.emplace_back(v);  // all empty
  NetworkView view(g, false);
  AntiEntropy proto(view, std::move(stores), Rng(13));
  const SimResult r = run_gossip(g, proto, {});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 0);
}

}  // namespace
}  // namespace latgossip
