// Tests for failure injection (sim/faults.h) and the robustness claims
// of the paper's conclusion: push-pull tolerates crashes and lossy
// links; the spanner route is brittle once its overlay loses nodes.

#include <gtest/gtest.h>

#include "core/push_pull.h"
#include "core/rr_broadcast.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace latgossip {
namespace {

TEST(FaultPlan, CrashScheduling) {
  FaultPlan plan(4, 1);
  plan.crash_node(2, 10);
  EXPECT_FALSE(plan.crashed(2, 9));
  EXPECT_TRUE(plan.crashed(2, 10));
  EXPECT_TRUE(plan.crashed(2, 999));
  EXPECT_FALSE(plan.crashed(1, 999));
  EXPECT_EQ(plan.num_crashed_by(10), 1u);
  EXPECT_THROW(plan.crash_node(7, 0), std::out_of_range);
  EXPECT_THROW(plan.crash_node(0, -1), std::invalid_argument);
}

TEST(FaultPlan, RandomCrashesSpareTheSource) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FaultPlan plan(10, seed);
    plan.crash_random_nodes(5, 0, /*spare=*/3);
    EXPECT_FALSE(plan.crashed(3, 100));
    EXPECT_EQ(plan.num_crashed_by(0), 5u);
  }
}

TEST(FaultPlan, ValidatesDropProbability) {
  FaultPlan plan(3, 1);
  EXPECT_THROW(plan.set_link_drop_probability(1.5), std::invalid_argument);
  EXPECT_THROW(plan.crash_random_nodes(3, 0, 0), std::invalid_argument);
}

TEST(Faults, CrashedNodeNeverInitiatesOrReceives) {
  // Path 0-1-2 with node 1 crashed from the start: the rumor is stuck.
  const auto g = make_path(3);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(3));
  FaultPlan plan(3, 5);
  plan.crash_node(1, 0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 500;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(proto.informed(1));
  EXPECT_FALSE(proto.informed(2));
  EXPECT_GT(r.messages_dropped, 0u);
}

TEST(Faults, LateCrashAfterInformDoesNotUndo) {
  const auto g = make_clique(8);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(7));
  FaultPlan plan(8, 9);
  plan.crash_node(3, 100);  // long after completion
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 90;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
}

TEST(Faults, PushPullSurvivesHeavyLinkLoss) {
  // 30% delivery loss on a clique: push-pull still completes, just
  // slower — the conclusion's robustness claim.
  const auto g = make_clique(24);
  Round lossless = 0, lossy = 0;
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(11));
    SimOptions opts;
    opts.max_rounds = 100'000;
    const SimResult r = run_gossip(g, proto, opts);
    ASSERT_TRUE(r.completed);
    lossless = r.rounds;
  }
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(11));
    FaultPlan plan(24, 13);
    plan.set_link_drop_probability(0.3);
    SimOptions opts;
    plan.apply(opts);
    opts.max_rounds = 100'000;
    const SimResult r = run_gossip(g, proto, opts);
    EXPECT_TRUE(r.completed);
    lossy = r.rounds;
    EXPECT_GT(r.messages_dropped, 0u);
  }
  EXPECT_GE(lossy, lossless);
}

TEST(Faults, PushPullSurvivesCrashesOfNonCutNodes) {
  // Crash a quarter of a clique mid-run; the survivors still finish.
  const auto g = make_clique(16);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(17));
  FaultPlan plan(16, 19);
  plan.crash_random_nodes(4, 2, /*spare=*/0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 100'000;
  run_gossip(g, proto, opts);
  // Completion flag can't fire (crashed nodes never inform), so check
  // the survivors directly.
  for (NodeId v = 0; v < 16; ++v) {
    if (!plan.crashed(v, 1'000'000)) {
      EXPECT_TRUE(proto.informed(v));
    }
  }
}

TEST(Faults, SpannerOverlayBrittleUnderCrash) {
  // RR broadcast over a sparse spanner: crash one spanner-internal node
  // and rumors relying on it stall — unlike push-pull on the full graph.
  Rng gen(23);
  auto g = make_erdos_renyi(24, 0.3, gen);
  Rng srng(29);
  const auto spanner = build_baswana_sen_spanner(g, {2, 0}, srng);
  // Find a node with positive out-degree to crash (overlay-relevant).
  NodeId victim = 1;
  for (NodeId v = 1; v < 24; ++v)
    if (spanner.out_degree(v) > 0) {
      victim = v;
      break;
    }
  NetworkView view(g, true);
  RRBroadcast proto(view, spanner, g.max_latency() * 10, own_id_rumors(24));
  FaultPlan plan(24, 31);
  plan.crash_node(victim, 0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = proto.budget() * 2;
  run_gossip(g, proto, opts);
  // The crashed node's rumor cannot have reached anyone.
  for (NodeId v = 0; v < 24; ++v) {
    if (v != victim) {
      EXPECT_FALSE(proto.rumors()[v].test(victim));
    }
  }
}

TEST(Faults, RecorderCountsMatchSimResultUnderLinkLoss) {
  // Recorder event counts and the engine's aggregate counters are two
  // independent tallies of the same stream; under a seeded lossy run
  // they must agree exactly, and every initiated exchange must be fully
  // accounted for as deliveries + drops.
  const auto g = make_clique(24);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(11));
  FaultPlan plan(24, 13);
  plan.set_link_drop_probability(0.3);
  EventRecorder rec;
  SimOptions opts;
  plan.apply(opts);
  opts.recorder = &rec;
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_EQ(rec.activations(), r.activations);
  EXPECT_EQ(rec.deliveries(), r.messages_delivered);
  EXPECT_EQ(rec.drops(), r.messages_dropped);
  // Each accepted exchange produces exactly two deliveries-or-drops.
  EXPECT_EQ(2 * (r.activations - r.exchanges_rejected),
            r.messages_delivered + r.messages_dropped);
}

TEST(Faults, RecorderSeparatesCrashDropsFromLinkDrops) {
  // Node 1 on a path is crashed from round 0: every loss is a crash
  // drop, none a link drop, and the totals still match SimResult.
  const auto g = make_path(3);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(3));
  FaultPlan plan(3, 5);
  plan.crash_node(1, 0);
  EventRecorder rec;
  SimOptions opts;
  plan.apply(opts);
  opts.recorder = &rec;
  opts.max_rounds = 500;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(rec.count(EventKind::kDrop), 0u);
  EXPECT_EQ(rec.count(EventKind::kCrashDrop), r.messages_dropped);
  EXPECT_GT(r.messages_dropped, 0u);
}

TEST(FaultPlan, CrashAllButOneLeavesOnlyTheSpare) {
  // count = n - 1 is the extreme the sampler allows: every node except
  // the spare ends up crashed, and the loop still terminates.
  const std::size_t n = 10;
  FaultPlan plan(n, 17);
  plan.crash_random_nodes(n - 1, 0, /*spare=*/4);
  EXPECT_EQ(plan.num_crashed_by(0), n - 1);
  EXPECT_FALSE(plan.crashed(4, 1'000'000));
  for (NodeId u = 0; u < n; ++u)
    if (u != 4) EXPECT_TRUE(plan.crashed(u, 0));
  // One more than n - 1 must throw, not spin forever.
  FaultPlan over(n, 17);
  EXPECT_THROW(over.crash_random_nodes(n, 0, 4), std::invalid_argument);
}

TEST(FaultPlan, CrashEveryoneButSourceAtRoundZeroStallsTheRun) {
  // The run degenerates to the source alone: no deliveries can land,
  // the engine stops idle and incomplete rather than spinning.
  const auto g = make_clique(8);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(21));
  FaultPlan plan(8, 9);
  plan.crash_random_nodes(7, 0, /*spare=*/0);
  SimOptions opts;
  plan.apply(opts);
  opts.max_rounds = 2000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_FALSE(r.completed);
  for (NodeId u = 1; u < 8; ++u) EXPECT_FALSE(proto.informed(u));
}

TEST(FaultPlan, DropProbabilityExtremes) {
  // p = 0.0 installs no drop hook at all: the run is loss-free and
  // bit-identical to a run without the plan.
  const auto g = make_clique(12);
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(31));
    FaultPlan plan(12, 7);
    plan.set_link_drop_probability(0.0);
    SimOptions opts;
    plan.apply(opts);
    EXPECT_FALSE(static_cast<bool>(opts.drop_delivery));
    opts.max_rounds = 2000;
    const SimResult r = run_gossip(g, proto, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.messages_dropped, 0u);
  }
  // p = 1.0 loses every payload: nothing is ever delivered, the source
  // stays alone, and every initiated exchange turns into drops.
  {
    NetworkView view(g, false);
    PushPullBroadcast proto(view, 0, Rng(31));
    FaultPlan plan(12, 7);
    plan.set_link_drop_probability(1.0);
    SimOptions opts;
    plan.apply(opts);
    opts.max_rounds = 2000;
    const SimResult r = run_gossip(g, proto, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.messages_delivered, 0u);
    EXPECT_GT(r.messages_dropped, 0u);
    for (NodeId u = 1; u < 12; ++u) EXPECT_FALSE(proto.informed(u));
  }
}

TEST(FaultPlan, DetachReArmsApplyAndClearsHooks) {
  FaultPlan plan(6, 3);
  plan.set_link_drop_probability(0.5);
  SimOptions opts;
  plan.apply(opts);
  EXPECT_TRUE(static_cast<bool>(opts.is_crashed));
  EXPECT_TRUE(static_cast<bool>(opts.drop_delivery));
  plan.detach(opts);
  EXPECT_FALSE(static_cast<bool>(opts.is_crashed));
  EXPECT_FALSE(static_cast<bool>(opts.drop_delivery));
  // detach() re-arms apply(): a second cycle works (the assert inside
  // apply() would abort a debug build if the flag were stuck).
  plan.apply(opts);
  EXPECT_TRUE(static_cast<bool>(opts.is_crashed));
  plan.detach(opts);
}

TEST(Jitter, UniformJitterStaysPositiveAndBounded) {
  auto jitter = make_uniform_jitter(3, 41);
  for (int i = 0; i < 1000; ++i) {
    const Latency l = jitter(0, 5);
    EXPECT_GE(l, 2);
    EXPECT_LE(l, 8);
  }
  auto tight = make_uniform_jitter(10, 43);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(tight(0, 2), 1);
  EXPECT_THROW(make_uniform_jitter(-1, 1), std::invalid_argument);
}

TEST(Jitter, PushPullCompletesUnderJitter) {
  auto g = make_clique(16);
  assign_uniform_latency(g, 6);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(47));
  SimOptions opts;
  opts.latency_jitter = make_uniform_jitter(4, 53);
  opts.max_rounds = 100'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace latgossip
