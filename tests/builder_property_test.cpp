// Property tests for the GraphBuilder -> CSR WeightedGraph pipeline:
// the finished graph is checked against a brute-force edge-list
// reference on random inputs, and the simulator is checked to be
// insensitive to the order edges were inserted (sorted adjacency makes
// the finished graph a pure function of the edge *set*).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/push_pull.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {
namespace {

/// Brute-force reference: answers every query by a linear scan over the
/// flat edge list, with none of the CSR machinery under test.
class ReferenceGraph {
 public:
  ReferenceGraph(std::size_t n, std::vector<Edge> edges)
      : n_(n), edges_(std::move(edges)) {}

  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const {
    for (EdgeId e = 0; e < edges_.size(); ++e)
      if ((edges_[e].u == u && edges_[e].v == v) ||
          (edges_[e].u == v && edges_[e].v == u))
        return e;
    return std::nullopt;
  }

  std::size_t degree(NodeId u) const {
    std::size_t d = 0;
    for (const Edge& e : edges_)
      if (e.u == u || e.v == u) ++d;
    return d;
  }

  std::vector<NodeId> sorted_neighbors(NodeId u) const {
    std::vector<NodeId> out;
    for (const Edge& e : edges_) {
      if (e.u == u) out.push_back(e.v);
      if (e.v == u) out.push_back(e.u);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::size_t num_nodes() const { return n_; }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

/// Random edge set on n nodes: each pair kept with probability p,
/// latencies uniform in [1, 9].
std::vector<Edge> random_edge_set(std::size_t n, double p, Rng& rng) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.uniform_double() < p)
        edges.push_back({u, v, static_cast<Latency>(1 + rng.uniform(9))});
  return edges;
}

TEST(BuilderProperty, MatchesBruteForceReference) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform(30);
    const double p = 0.05 + 0.4 * rng.uniform_double();
    ReferenceGraph ref(n, random_edge_set(n, p, rng));

    GraphBuilder b(n);
    for (const Edge& e : ref.edges()) b.add_edge(e.u, e.v, e.latency);
    const WeightedGraph g = b.build();

    ASSERT_EQ(g.num_nodes(), n);
    ASSERT_EQ(g.num_edges(), ref.edges().size());
    std::size_t max_deg = 0;
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(g.degree(u), ref.degree(u)) << "node " << u;
      max_deg = std::max(max_deg, ref.degree(u));
      // Adjacency comes back sorted by neighbor id, and every half-edge
      // round-trips through other_endpoint.
      const auto neigh = g.neighbors(u);
      const auto expect = ref.sorted_neighbors(u);
      ASSERT_EQ(neigh.size(), expect.size()) << "node " << u;
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        EXPECT_EQ(neigh[i].to, expect[i]) << "node " << u << " slot " << i;
        EXPECT_EQ(g.other_endpoint(neigh[i].edge, u), neigh[i].to);
      }
    }
    EXPECT_EQ(g.max_degree(), max_deg);
    // find_edge agrees with the linear scan on every pair, present or
    // absent, in both orientations.
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;
        const auto got = g.find_edge(u, v);
        const auto want = ref.find_edge(u, v);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "pair " << u << "," << v;
        if (got) {
          EXPECT_EQ(*got, *want);
          EXPECT_EQ(g.latency(*got), ref.edges()[*want].latency);
        }
      }
    // Edge ids are the insertion order.
    for (EdgeId e = 0; e < ref.edges().size(); ++e) {
      EXPECT_EQ(g.edge(e).u, ref.edges()[e].u);
      EXPECT_EQ(g.edge(e).v, ref.edges()[e].v);
      EXPECT_EQ(g.edge(e).latency, ref.edges()[e].latency);
    }
  }
}

/// Seeded push-pull on the built graph must not depend on the order in
/// which edges were fed to the builder: the CSR layout sorts adjacency,
/// so the neighbor a node draws for a given rng state is a function of
/// the edge set alone.
TEST(BuilderProperty, SimResultInvariantUnderInsertionOrder) {
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Edge> edges;
    WeightedGraph base;
    do {
      edges = random_edge_set(12, 0.3, rng);
      GraphBuilder b(12);
      for (const Edge& e : edges) b.add_edge(e.u, e.v, e.latency);
      base = b.build();
    } while (!base.is_connected());

    auto run = [](const WeightedGraph& g, std::uint64_t seed) {
      NetworkView view(g, false);
      PushPullBroadcast proto(view, 0, Rng(seed));
      SimOptions opts;
      opts.max_rounds = 1'000'000;
      return run_gossip(g, proto, opts);
    };
    const SimResult want = run(base, trial + 1);
    ASSERT_TRUE(want.completed);

    for (int perm = 0; perm < 4; ++perm) {
      std::vector<Edge> shuffled = edges;
      for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1], shuffled[rng.uniform(i)]);
      GraphBuilder b(12);
      for (const Edge& e : shuffled) b.add_edge(e.u, e.v, e.latency);
      const WeightedGraph g = b.build();
      const SimResult got = run(g, trial + 1);
      EXPECT_EQ(got.rounds, want.rounds);
      EXPECT_EQ(got.activations, want.activations);
      EXPECT_EQ(got.messages_delivered, want.messages_delivered);
      EXPECT_EQ(got.completed, want.completed);
    }
  }
}

}  // namespace
}  // namespace latgossip
