// Differential conformance: the optimized engine (sim/engine.h) vs the
// naive reference oracle (sim/oracle.h) over thousands of random cases
// spanning every protocol, graph family, latency model, and fault/model
// knob the case generator knows. Any divergence in SimResult counters,
// event-stream fingerprints, or composite outcomes fails with a full
// reproducible case dump. The model invariants (check/invariants.h) run
// on both sides of every case.

#include <array>
#include <sstream>

#include <gtest/gtest.h>

#include "check/case_gen.h"
#include "check/differential.h"

namespace latgossip {
namespace {

std::string failure_dump(const TestCase& tc, const DiffReport& rep) {
  std::ostringstream os;
  os << "case: " << describe(tc) << "\n";
  for (const std::string& f : rep.failures) os << "  " << f << "\n";
  write_case(os, tc);
  return os.str();
}

/// Coverage counters a sweep accumulates, so tests can assert the case
/// generator actually visited the advertised space instead of silently
/// degenerating (e.g. a probability knob regressing to zero).
struct Coverage {
  std::array<int, static_cast<std::size_t>(CheckProto::kCount)> per_proto{};
  int faulted = 0;
  int fault_free = 0;
  int drifting = 0;
  int churning = 0;
  int adversarial = 0;
};

void sweep(Rng& rng, const CaseProfile& profile, int cases,
           Coverage* cov = nullptr) {
  for (int i = 0; i < cases; ++i) {
    const TestCase tc = random_case(rng, profile);
    ASSERT_TRUE(case_valid(tc)) << describe(tc);
    const DiffReport rep = run_differential(tc);
    ASSERT_TRUE(rep.ok) << failure_dump(tc, rep);
    if (!cov) continue;
    ++cov->per_proto[static_cast<std::size_t>(tc.proto)];
    if (tc.faults.any())
      ++cov->faulted;
    else
      ++cov->fault_free;
    if (tc.dynamics.drift_active()) ++cov->drifting;
    if (tc.dynamics.churn_active()) ++cov->churning;
    if (tc.dynamics.adv_active()) ++cov->adversarial;
  }
}

// The quick-profile sweep: >= 2000 random cases across all eight
// protocols (including the rumor-set goals that exercise the
// copy-on-write snapshot payloads), with and without faults, plus the
// dynamic families (drift / churn / adversary); zero divergence
// tolerated.
TEST(Differential, QuickProfileSweep) {
  Rng rng(0x20260806);
  Coverage cov;
  sweep(rng, CaseProfile{}, 2000, &cov);

  // The sweep must actually have covered the advertised space.
  for (std::size_t p = 0; p < cov.per_proto.size(); ++p)
    EXPECT_GT(cov.per_proto[p], 0)
        << "protocol " << check_proto_name(static_cast<CheckProto>(p))
        << " never generated";
  EXPECT_GT(cov.faulted, 50);
  EXPECT_GT(cov.fault_free, 50);
  EXPECT_GT(cov.drifting, 10);
  EXPECT_GT(cov.churning, 10);
  EXPECT_GT(cov.adversarial, 10);
}

// Model-variant stress: every case runs blocking or in-degree-capped or
// jittered (knob probabilities cranked via a biased profile is not
// supported, so force the knobs directly on generated topologies).
TEST(Differential, ForcedModelKnobs) {
  Rng rng(7);
  CaseProfile profile;
  profile.composites = false;
  for (int i = 0; i < 150; ++i) {
    TestCase tc = random_case(rng, profile);
    tc.blocking = (i % 3) == 0;
    tc.max_incoming_per_round = (i % 3) == 1 ? 1 : 0;
    tc.jitter_spread = (i % 3) == 2 ? 2 : 0;
    const DiffReport rep = run_differential(tc);
    ASSERT_TRUE(rep.ok) << failure_dump(tc, rep);
  }
}

// Dynamic-scenario stress: force each family (drift, churn in every
// mode, adversary, and all three combined) onto random simple-protocol
// topologies instead of waiting for the generator's 25% roll.
TEST(Differential, ForcedDynamics) {
  Rng rng(0xd15c0);
  CaseProfile profile;
  profile.composites = false;
  profile.allow_dynamics = false;  // scenarios are forced below
  for (int i = 0; i < 120; ++i) {
    TestCase tc = random_case(rng, profile);
    tc.dynamics.seed = 0x51u + static_cast<std::uint64_t>(i) * 2;
    switch (i % 4) {
      case 0:
        tc.dynamics.drift_step = 16u << (i % 5);
        tc.dynamics.drift_bound = (i % 2) != 0 ? 2048 : 4096;
        break;
      case 1:
        tc.dynamics.churn_prob = 0.3 + 0.05 * static_cast<double>(i % 10);
        tc.dynamics.churn_window = 4 + (i % 12);
        tc.dynamics.churn_absence = 2 + (i % 7);
        tc.dynamics.churn_mode = i % 3;
        tc.dynamics.churn_spare = tc.source;
        break;
      case 2:
        tc.dynamics.adv_slow = 1536 + 64u * static_cast<std::uint64_t>(i);
        tc.dynamics.adv_source = tc.source;
        break;
      default:
        tc.dynamics.drift_step = 64;
        tc.dynamics.churn_prob = 0.4;
        tc.dynamics.churn_window = 8;
        tc.dynamics.churn_absence = 4;
        tc.dynamics.churn_mode = 2;
        tc.dynamics.churn_spare = tc.source;
        tc.dynamics.adv_slow = 2048;
        tc.dynamics.adv_source = tc.source;
        break;
    }
    ASSERT_TRUE(case_valid(tc)) << describe(tc);
    const DiffReport rep = run_differential(tc);
    ASSERT_TRUE(rep.ok) << failure_dump(tc, rep);
  }
}

// Composite protocols own their SimOptions internally, so random cases
// must keep every engine-model knob off for them — and case_valid must
// reject a hand-built composite case that smuggles one in (this used to
// be convention only; now it is an enforced contract).
TEST(Differential, CompositeCasesKeepKnobsOff) {
  Rng rng(0xc0de);
  CaseProfile profile;
  int composites_seen = 0;
  for (int i = 0; i < 400; ++i) {
    const TestCase tc = random_case(rng, profile);
    if (!check_proto_is_composite(tc.proto)) continue;
    ++composites_seen;
    EXPECT_FALSE(tc.blocking) << describe(tc);
    EXPECT_EQ(tc.max_incoming_per_round, 0u) << describe(tc);
    EXPECT_EQ(tc.jitter_spread, 0) << describe(tc);
    EXPECT_FALSE(tc.faults.any()) << describe(tc);
    EXPECT_FALSE(tc.dynamics.any()) << describe(tc);
  }
  EXPECT_GT(composites_seen, 30);

  // Hand-built violations are rejected outright.
  TestCase tc;
  tc.proto = CheckProto::kUnified;
  tc.num_nodes = 4;
  tc.edges = {Edge{0, 1, 1}, Edge{1, 2, 1}, Edge{2, 3, 1}, Edge{0, 3, 1}};
  ASSERT_TRUE(case_valid(tc));
  TestCase with_dynamics = tc;
  with_dynamics.dynamics.drift_step = 64;
  EXPECT_FALSE(case_valid(with_dynamics));
  TestCase with_faults = tc;
  with_faults.faults.drop_probability = 0.5;
  EXPECT_FALSE(case_valid(with_faults));
  TestCase with_jitter = tc;
  with_jitter.jitter_spread = 2;
  EXPECT_FALSE(case_valid(with_jitter));
}

// The harness has teeth: an injected off-by-one latency bias in the
// oracle must be flagged on any case that exchanges at least once.
TEST(Differential, InjectedBugIsDetected) {
  Rng rng(99);
  CaseProfile profile;
  profile.composites = false;
  profile.allow_faults = false;
  profile.allow_model_variants = false;
  oracle_detail::ModelBug bug;
  bug.latency_bias = 1;
  int detected = 0;
  for (int i = 0; i < 20; ++i) {
    const TestCase tc = random_case(rng, profile);
    const DiffReport rep = run_differential(tc, bug);
    if (rep.engine_result.activations > 0) {
      EXPECT_FALSE(rep.ok) << describe(tc);
      if (!rep.ok) ++detected;
    }
  }
  EXPECT_GT(detected, 10);
}

// Dropping the initiator-bound leg is the other injectable bug; it must
// diverge on delivery counts, not crash.
TEST(Differential, InjectedLegDropIsDetected) {
  Rng rng(123);
  CaseProfile profile;
  profile.composites = false;
  profile.allow_faults = false;
  profile.allow_model_variants = false;
  oracle_detail::ModelBug bug;
  bug.drop_initiator_leg = true;
  int detected = 0;
  for (int i = 0; i < 20; ++i) {
    const TestCase tc = random_case(rng, profile);
    const DiffReport rep = run_differential(tc, bug);
    if (rep.engine_result.messages_delivered > 0 && !rep.ok) ++detected;
  }
  EXPECT_GT(detected, 10);
}

}  // namespace
}  // namespace latgossip
