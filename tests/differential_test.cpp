// Differential conformance: the optimized engine (sim/engine.h) vs the
// naive reference oracle (sim/oracle.h) over thousands of random cases
// spanning every protocol, graph family, latency model, and fault/model
// knob the case generator knows. Any divergence in SimResult counters,
// event-stream fingerprints, or composite outcomes fails with a full
// reproducible case dump. The model invariants (check/invariants.h) run
// on both sides of every case.

#include <array>
#include <sstream>

#include <gtest/gtest.h>

#include "check/case_gen.h"
#include "check/differential.h"

namespace latgossip {
namespace {

std::string failure_dump(const TestCase& tc, const DiffReport& rep) {
  std::ostringstream os;
  os << "case: " << describe(tc) << "\n";
  for (const std::string& f : rep.failures) os << "  " << f << "\n";
  write_case(os, tc);
  return os.str();
}

void sweep(Rng& rng, const CaseProfile& profile, int cases,
           std::array<int, static_cast<std::size_t>(CheckProto::kCount)>*
               per_proto = nullptr,
           int* faulted = nullptr, int* fault_free = nullptr) {
  for (int i = 0; i < cases; ++i) {
    const TestCase tc = random_case(rng, profile);
    ASSERT_TRUE(case_valid(tc)) << describe(tc);
    const DiffReport rep = run_differential(tc);
    ASSERT_TRUE(rep.ok) << failure_dump(tc, rep);
    if (per_proto) ++(*per_proto)[static_cast<std::size_t>(tc.proto)];
    if (faulted && tc.faults.any()) ++*faulted;
    if (fault_free && !tc.faults.any()) ++*fault_free;
  }
}

// The quick-profile sweep: >= 2000 random cases across all eight
// protocols (including the rumor-set goals that exercise the
// copy-on-write snapshot payloads), with and without faults, zero
// divergence tolerated.
TEST(Differential, QuickProfileSweep) {
  Rng rng(0x20260806);
  std::array<int, static_cast<std::size_t>(CheckProto::kCount)> per_proto{};
  int faulted = 0;
  int fault_free = 0;
  sweep(rng, CaseProfile{}, 2000, &per_proto, &faulted, &fault_free);

  // The sweep must actually have covered the advertised space.
  for (std::size_t p = 0; p < per_proto.size(); ++p)
    EXPECT_GT(per_proto[p], 0)
        << "protocol " << check_proto_name(static_cast<CheckProto>(p))
        << " never generated";
  EXPECT_GT(faulted, 50);
  EXPECT_GT(fault_free, 50);
}

// Model-variant stress: every case runs blocking or in-degree-capped or
// jittered (knob probabilities cranked via a biased profile is not
// supported, so force the knobs directly on generated topologies).
TEST(Differential, ForcedModelKnobs) {
  Rng rng(7);
  CaseProfile profile;
  profile.composites = false;
  for (int i = 0; i < 150; ++i) {
    TestCase tc = random_case(rng, profile);
    tc.blocking = (i % 3) == 0;
    tc.max_incoming_per_round = (i % 3) == 1 ? 1 : 0;
    tc.jitter_spread = (i % 3) == 2 ? 2 : 0;
    const DiffReport rep = run_differential(tc);
    ASSERT_TRUE(rep.ok) << failure_dump(tc, rep);
  }
}

// The harness has teeth: an injected off-by-one latency bias in the
// oracle must be flagged on any case that exchanges at least once.
TEST(Differential, InjectedBugIsDetected) {
  Rng rng(99);
  CaseProfile profile;
  profile.composites = false;
  profile.allow_faults = false;
  profile.allow_model_variants = false;
  oracle_detail::ModelBug bug;
  bug.latency_bias = 1;
  int detected = 0;
  for (int i = 0; i < 20; ++i) {
    const TestCase tc = random_case(rng, profile);
    const DiffReport rep = run_differential(tc, bug);
    if (rep.engine_result.activations > 0) {
      EXPECT_FALSE(rep.ok) << describe(tc);
      if (!rep.ok) ++detected;
    }
  }
  EXPECT_GT(detected, 10);
}

// Dropping the initiator-bound leg is the other injectable bug; it must
// diverge on delivery counts, not crash.
TEST(Differential, InjectedLegDropIsDetected) {
  Rng rng(123);
  CaseProfile profile;
  profile.composites = false;
  profile.allow_faults = false;
  profile.allow_model_variants = false;
  oracle_detail::ModelBug bug;
  bug.drop_initiator_leg = true;
  int detected = 0;
  for (int i = 0; i < 20; ++i) {
    const TestCase tc = random_case(rng, profile);
    const DiffReport rep = run_differential(tc, bug);
    if (rep.engine_result.messages_delivered > 0 && !rep.ok) ++detected;
  }
  EXPECT_GT(detected, 10);
}

}  // namespace
}  // namespace latgossip
