// Tests for the paper's lower-bound constructions (Section 3).

#include <gtest/gtest.h>

#include <set>

#include "analysis/distance.h"
#include "graph/gadgets.h"

namespace latgossip {
namespace {

TEST(Targets, SingletonInRange) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto t = make_singleton_target(8, rng);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_LT(t[0].first, 8u);
    EXPECT_LT(t[0].second, 8u);
  }
}

TEST(Targets, RandomPDensity) {
  Rng rng(2);
  const auto t = make_random_p_target(40, 0.25, rng);
  // 1600 pairs, expect ~400; allow generous slack.
  EXPECT_GT(t.size(), 300u);
  EXPECT_LT(t.size(), 520u);
}

TEST(Gadget, StructureAsymmetric) {
  Rng rng(3);
  const std::size_t m = 5;
  const auto gg = make_guessing_gadget(m, {{1, 2}}, 1, 100, false);
  // 2m nodes; m^2 cross + C(m,2) clique-on-L edges.
  EXPECT_EQ(gg.graph.num_nodes(), 2 * m);
  EXPECT_EQ(gg.graph.num_edges(), m * m + m * (m - 1) / 2);
  // Left node degree: m cross + (m-1) clique; right: m cross.
  EXPECT_EQ(gg.graph.degree(gg.left(0)), m + m - 1);
  EXPECT_EQ(gg.graph.degree(gg.right(0)), m);
}

TEST(Gadget, StructureSymmetric) {
  const std::size_t m = 4;
  const auto gg = make_guessing_gadget(m, {}, 1, 100, true);
  EXPECT_EQ(gg.graph.num_edges(), m * m + 2 * (m * (m - 1) / 2));
  EXPECT_EQ(gg.graph.degree(gg.right(1)), m + m - 1);
}

TEST(Gadget, CrossEdgeIdsAndLatencies) {
  const std::size_t m = 4;
  const TargetSet target{{0, 0}, {2, 3}};
  const auto gg = make_guessing_gadget(m, target, 1, 99, false);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      const EdgeId e = gg.cross_edge(i, j);
      EXPECT_TRUE(gg.is_cross_edge(e));
      EXPECT_EQ(gg.cross_pair(e), (std::pair<std::size_t, std::size_t>{i, j}));
      const Edge& ed = gg.graph.edge(e);
      EXPECT_EQ(ed.u, gg.left(i));
      EXPECT_EQ(ed.v, gg.right(j));
      const bool fast = (i == 0 && j == 0) || (i == 2 && j == 3);
      EXPECT_EQ(ed.latency, fast ? 1 : 99);
    }
  // Clique edges are not cross edges and have latency 1.
  const EdgeId clique_edge = *gg.graph.find_edge(gg.left(0), gg.left(1));
  EXPECT_FALSE(gg.is_cross_edge(clique_edge));
  EXPECT_EQ(gg.graph.latency(clique_edge), 1);
}

TEST(Gadget, ValidatesInput) {
  EXPECT_THROW(make_guessing_gadget(1, {}, 1, 5, false),
               std::invalid_argument);
  EXPECT_THROW(make_guessing_gadget(3, {{3, 0}}, 1, 5, false),
               std::invalid_argument);
  EXPECT_THROW(make_guessing_gadget(3, {}, 5, 1, false),
               std::invalid_argument);
}

TEST(Theorem6, StructureAndDiameter) {
  Rng rng(5);
  const std::size_t n = 30, delta = 6;
  const auto net = make_theorem6_network(n, delta, rng);
  EXPECT_EQ(net.graph.num_nodes(), n);
  EXPECT_TRUE(net.graph.is_connected());
  // Max degree Θ(Δ): left gadget nodes have 2Δ-1 neighbors; the clique
  // nodes have n - 2Δ - 1 (+1 for the attachment).
  EXPECT_GE(net.graph.max_degree(), 2 * delta - 1);
  // Hop diameter is O(1); the weighted diameter is Θ(n) because right
  // nodes without the fast target edge hang off latency-n cross edges
  // (a right-right path crosses two of them).
  EXPECT_LE(hop_diameter(net.graph), 5);
  const Latency d = weighted_diameter(net.graph);
  EXPECT_LE(d, 2 * static_cast<Latency>(n) + 4);
  EXPECT_GE(d, 2);
}

TEST(Theorem7, FastEdgesMatchTarget) {
  Rng rng(7);
  const auto net = make_theorem7_network(20, 3, 0.3, rng);
  const auto& gg = net.gadget;
  EXPECT_EQ(gg.graph.num_nodes(), 40u);
  std::set<std::pair<std::size_t, std::size_t>> target(gg.target.begin(),
                                                       gg.target.end());
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j) {
      const Latency lat = gg.graph.latency(gg.cross_edge(i, j));
      EXPECT_EQ(lat, target.count({i, j}) != 0 ? 3 : 20);
    }
}

TEST(Theorem7, DiameterOrderEll) {
  Rng rng(11);
  // phi = 0.4 with n = 32: whp every right node has a fast edge.
  const auto net = make_theorem7_network(32, 4, 0.4, rng);
  const Latency d = weighted_diameter(net.gadget.graph);
  // D = O(ell): clique hop (1) + fast cross (4) + ... <= ~3*ell.
  EXPECT_LE(d, 3 * 4 + 2);
}

TEST(LayeredRing, Structure) {
  Rng rng(13);
  const auto ring = make_layered_ring(6, 4, 10, rng);
  const std::size_t s = 4, k = 6;
  EXPECT_EQ(ring.graph.num_nodes(), k * s);
  // Observation 23: (3s-1)-regular.
  for (NodeId v = 0; v < ring.graph.num_nodes(); ++v)
    EXPECT_EQ(ring.graph.degree(v), 3 * s - 1);
  ASSERT_EQ(ring.fast_cross_edges.size(), k);
  for (EdgeId e : ring.fast_cross_edges)
    EXPECT_EQ(ring.graph.latency(e), 1);
  // Exactly one fast cross edge per layer pair.
  std::size_t fast_cross = 0;
  for (const Edge& e : ring.graph.edges())
    if (ring.layer_of(e.u) != ring.layer_of(e.v) && e.latency == 1)
      ++fast_cross;
  EXPECT_EQ(fast_cross, k);
}

TEST(LayeredRing, LayerIndexing) {
  Rng rng(17);
  const auto ring = make_layered_ring(4, 3, 5, rng);
  EXPECT_EQ(ring.node(0, 0), 0u);
  EXPECT_EQ(ring.node(2, 1), 7u);
  EXPECT_EQ(ring.layer_of(7), 2u);
}

TEST(LayeredRing, AnalyticCutConductance) {
  Rng rng(19);
  const auto ring = make_layered_ring(8, 5, 7, rng);
  // Verify the closed form against a hand count: halving cut crosses two
  // layer boundaries: 2 * s^2 cross edges; volume = (N/2)(3s-1).
  const double expected =
      2.0 * 25.0 / ((40.0 / 2.0) * (3.0 * 5.0 - 1.0));
  EXPECT_DOUBLE_EQ(ring.analytic_phi_ell_cut(), expected);
}

TEST(Theorem8, PaperParameterization) {
  Rng rng(23);
  const auto ring = make_theorem8_network(64, 0.25, 16, rng);
  EXPECT_GE(ring.num_layers, 4u);
  EXPECT_EQ(ring.num_layers % 2, 0u);
  EXPECT_TRUE(ring.graph.is_connected());
  EXPECT_EQ(ring.cross_latency, 16);
  // s = c*n*alpha with c in [1, 1.5): between 16 and 24.
  EXPECT_GE(ring.layer_size, 16u);
  EXPECT_LE(ring.layer_size, 24u);
}

TEST(Theorem8, ValidatesInput) {
  Rng rng(29);
  EXPECT_THROW(make_theorem8_network(64, 0.0, 4, rng), std::invalid_argument);
  EXPECT_THROW(make_theorem8_network(4, 0.5, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace latgossip
