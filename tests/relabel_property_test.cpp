// Symmetry properties (check/relabel.h):
//
//  * node-relabel invariance — SymmetricPushPull, whose contact choice
//    is a pure function of (seed, round, original labels), must produce
//    the identical SimResult on a randomly relabeled graph, and the
//    identical event-stream fingerprint once node ids are mapped back;
//  * edge-id permutation invariance — the PRODUCTION protocols (seeded
//    uniform push–pull, the full general-EID pipeline) never read edge
//    ids, only sorted adjacency slices, so re-inserting the same edges
//    in a different order must change nothing but the EdgeId labels in
//    the event stream (fingerprint equal modulo an edge-id remap).

#include <gtest/gtest.h>

#include "check/relabel.h"
#include "core/eid.h"
#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace latgossip {
namespace {

WeightedGraph random_test_graph(Rng& rng, std::size_t n) {
  WeightedGraph g = make_erdos_renyi(n, 0.4, rng, 256);
  assign_random_uniform_latency(g, 1, 6, rng);
  return g;
}

TEST(Relabel, SymmetricPushPullIsNodeRelabelInvariant) {
  Rng rng(0xabcd);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.uniform(10);
    const WeightedGraph g = random_test_graph(rng, n);
    const auto source = static_cast<NodeId>(rng.uniform(n));
    const std::uint64_t seed = rng();

    const std::vector<NodeId> perm = random_permutation(n, rng);
    const std::vector<NodeId> inv = inverse_permutation(perm);
    const WeightedGraph relabeled = relabel_nodes(g, perm);

    EventRecorder base_rec;
    SimOptions base_opts;
    base_opts.recorder = &base_rec;
    NetworkView base_view(g, false);
    SymmetricPushPull base(base_view, source, seed, identity_permutation(n));
    const SimResult base_result = run_gossip(g, base, base_opts);

    // In the relabeled run node perm[u] carries u's original label, so
    // every node makes exactly the choice its pre-image made.
    EventRecorder rel_rec;
    SimOptions rel_opts;
    rel_opts.recorder = &rel_rec;
    NetworkView rel_view(relabeled, false);
    SymmetricPushPull rel(rel_view, perm[source], seed, inv);
    const SimResult rel_result = run_gossip(relabeled, rel, rel_opts);

    EXPECT_EQ(base_result, rel_result) << "trial " << trial;
    // relabel_nodes preserves edge insertion order => EdgeIds match;
    // only node fields need mapping back.
    EXPECT_EQ(base_rec.fingerprint(),
              remapped_fingerprint(rel_rec, &inv, nullptr))
        << "trial " << trial;
    for (NodeId u = 0; u < n; ++u)
      EXPECT_EQ(base.informed(u), rel.informed(perm[u]));
  }
}

TEST(Relabel, ProductionPushPullIsEdgeIdPermutationInvariant) {
  Rng rng(0x1234);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.uniform(10);
    const WeightedGraph g = random_test_graph(rng, n);
    const auto source = static_cast<NodeId>(rng.uniform(n));
    const std::uint64_t seed = rng();

    std::vector<EdgeId> perm(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) perm[e] = e;
    rng.shuffle(perm);
    const WeightedGraph permuted = permute_edge_ids(g, perm);

    EventRecorder base_rec;
    SimOptions base_opts;
    base_opts.recorder = &base_rec;
    NetworkView base_view(g, false);
    PushPullBroadcast base(base_view, source, Rng(seed));
    const SimResult base_result = run_gossip(g, base, base_opts);

    EventRecorder perm_rec;
    SimOptions perm_opts;
    perm_opts.recorder = &perm_rec;
    NetworkView perm_view(permuted, false);
    PushPullBroadcast shuffled(perm_view, source, Rng(seed));
    const SimResult perm_result = run_gossip(permuted, shuffled, perm_opts);

    EXPECT_EQ(base_result, perm_result) << "trial " << trial;
    // New EdgeId i is old EdgeId perm[i]; map the permuted stream back.
    EXPECT_EQ(base_rec.fingerprint(),
              remapped_fingerprint(perm_rec, nullptr, &perm))
        << "trial " << trial;
  }
}

TEST(Relabel, GeneralEidIsEdgeIdPermutationInvariant) {
  Rng rng(0x77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.uniform(8);
    const WeightedGraph g = random_test_graph(rng, n);
    const std::uint64_t seed = rng();

    std::vector<EdgeId> perm(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) perm[e] = e;
    rng.shuffle(perm);
    const WeightedGraph permuted = permute_edge_ids(g, perm);

    EventRecorder base_rec;
    ObsContext base_obs{&base_rec, nullptr};
    Rng base_rng(seed);
    const GeneralEidOutcome base =
        run_general_eid(g, 0, base_rng, 1, &base_obs);

    EventRecorder perm_rec;
    ObsContext perm_obs{&perm_rec, nullptr};
    Rng perm_rng(seed);
    const GeneralEidOutcome shuffled =
        run_general_eid(permuted, 0, perm_rng, 1, &perm_obs);

    EXPECT_EQ(base.sim, shuffled.sim) << "trial " << trial;
    EXPECT_EQ(base.final_estimate, shuffled.final_estimate);
    EXPECT_EQ(base.attempts, shuffled.attempts);
    EXPECT_EQ(base.success, shuffled.success);
    EXPECT_EQ(base.rumors, shuffled.rumors);
    EXPECT_EQ(base_rec.fingerprint(),
              remapped_fingerprint(perm_rec, nullptr, &perm))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace latgossip
