// Unit tests for src/util: RNG, Bitset, statistics, tables, fitting, args.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/args.h"
#include "util/bitset.h"
#include "util/fit.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace latgossip {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, GoldenReferenceStream) {
  // Pinned output of xoshiro256** seeded via splitmix64(12345): any
  // change here silently breaks reproducibility of every recorded
  // experiment, so it must be deliberate.
  Rng r(12345);
  const std::uint64_t expected[] = {
      0xbe6a36374160d49bULL, 0x214aaa0637a688c6ULL, 0xf69d16de9954d388ULL,
      0x0c60048c4e96e033ULL, 0x8e2076aeed51c648ULL,
  };
  for (std::uint64_t want : expected) EXPECT_EQ(r(), want);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliMeanRoughlyP) {
  Rng rng(17);
  int hits = 0;
  const int trials = 50'000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, GeometricMeanRoughlyInverseP) {
  Rng rng(19);
  double total = 0.0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i)
    total += static_cast<double>(rng.geometric(0.25));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(total / trials, 3.0, 0.15);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleRejectsOversizedK) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(37);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

// ------------------------------------------------------------- Bitset

TEST(Bitset, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.all());
}

TEST(Bitset, SetTestReset) {
  Bitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, OutOfRangeThrows) {
  Bitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW((void)b.test(10), std::out_of_range);
}

TEST(Bitset, SetAllRespectsSize) {
  Bitset b(67);
  b.set_all();
  EXPECT_TRUE(b.all());
  EXPECT_EQ(b.count(), 67u);
}

TEST(Bitset, AllSetWordLevelFastPath) {
  // Sizes straddling word boundaries: empty, sub-word, exact word,
  // word + tail.
  EXPECT_TRUE(Bitset(0).all_set());
  for (std::size_t n : {1u, 63u, 64u, 65u, 128u, 130u}) {
    Bitset b(n);
    EXPECT_FALSE(b.all_set());
    b.set_all();
    EXPECT_TRUE(b.all_set());
    EXPECT_EQ(b.all_set(), b.all());
    b.reset(n - 1);  // missing bit in the tail word
    EXPECT_FALSE(b.all_set());
    b.set(n - 1);
    if (n > 64) {
      b.reset(0);  // missing bit in a full word
      EXPECT_FALSE(b.all_set());
    }
  }
}

TEST(Bitset, UnionIntersectionDifference) {
  Bitset a(130), b(130);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(129);
  Bitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  Bitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(100));
  Bitset d = a;
  d -= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, SizeMismatchThrows) {
  Bitset a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a.or_assign_changed(b), std::invalid_argument);
  EXPECT_THROW(a.assign_and_count(b), std::invalid_argument);
}

TEST(Bitset, OrAssignChangedReportsAddedBits) {
  Bitset a(130), b(130);
  a.set(1);
  a.set(100);
  b.set(100);  // overlap: not newly added
  b.set(64);
  b.set(129);
  const Bitset::OrDelta d = a.or_assign_changed(b);
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.added, 2u);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_TRUE(a.test(64));
  EXPECT_TRUE(a.test(129));
}

TEST(Bitset, OrAssignChangedNoopOnSubset) {
  Bitset a(130), b(130);
  a.set(7);
  a.set(128);
  b.set(7);
  const Bitset before = a;
  const Bitset::OrDelta d = a.or_assign_changed(b);
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(d.added, 0u);
  EXPECT_TRUE(a == before);
  // Empty other is always a no-op.
  EXPECT_FALSE(a.or_assign_changed(Bitset(130)).changed);
}

TEST(Bitset, OrAssignChangedMatchesOrEquals) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Bitset a(200), b(200);
    for (int i = 0; i < 40; ++i) {
      a.set(rng.uniform(200));
      b.set(rng.uniform(200));
    }
    Bitset expect = a;
    expect |= b;
    const std::size_t before = a.count();
    const Bitset::OrDelta d = a.or_assign_changed(b);
    EXPECT_TRUE(a == expect);
    EXPECT_EQ(d.added, expect.count() - before);
    EXPECT_EQ(d.changed, expect.count() != before);
  }
}

TEST(Bitset, AssignAndCountCopiesAndCounts) {
  Bitset src(130);
  src.set(0);
  src.set(64);
  src.set(129);
  Bitset dst(130);
  dst.set(3);  // stale contents must be fully overwritten
  EXPECT_EQ(dst.assign_and_count(src), 3u);
  EXPECT_TRUE(dst == src);
  EXPECT_EQ(dst.assign_and_count(Bitset(130)), 0u);
  EXPECT_EQ(dst.count(), 0u);
}

TEST(Bitset, SubsetTest) {
  Bitset a(64), b(64);
  a.set(3);
  b.set(3);
  b.set(5);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
}

TEST(Bitset, FindNextIteration) {
  Bitset b(200);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(6), 64u);
  EXPECT_EQ(b.find_next(65), 199u);
  EXPECT_EQ(b.find_next(200), 200u);
  EXPECT_EQ(b.to_indices(), (std::vector<std::size_t>{5, 64, 199}));
}

TEST(Bitset, HashDistinguishesContents) {
  Bitset a(64), b(64);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  b.reset(2);
  b.set(1);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Bitset, EqualityComparesSizeAndBits) {
  Bitset a(10), b(10), c(11);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// -------------------------------------------------------------- stats

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, PercentileOfEmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, SummaryOfEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// --------------------------------------------------------------- fit

TEST(Fit, ExactLine) {
  const LinearFit f = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(Fit, LogLogRecoverExponent) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const LinearFit f = loglog_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(Fit, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1}, {2}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1, 1}, {2, 3}), std::invalid_argument);
  EXPECT_THROW(loglog_fit({1, -2}, {2, 3}), std::invalid_argument);
}

// -------------------------------------------------------------- table

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("b", std::size_t{42});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("1.500"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

// --------------------------------------------------------------- args

TEST(Args, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--n=10", "--name=x", "--flag", "pos"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 10);
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_TRUE(args.get_bool("flag"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("flag"));
}

TEST(Args, AllowOnlyCatchesTypos) {
  const char* argv[] = {"prog", "--typo=1"};
  Args args(2, argv);
  EXPECT_THROW(args.allow_only({"n", "seed"}), std::invalid_argument);
  EXPECT_NO_THROW(args.allow_only({"typo"}));
}

}  // namespace
}  // namespace latgossip
