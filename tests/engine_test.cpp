// Tests for the simulation engine: latency semantics, payload snapshot
// rule, non-blocking pipelining, termination and observers.

#include <gtest/gtest.h>

#include <vector>

#include "core/push_pull.h"
#include "graph/generators.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

/// Scripted test protocol: per-node list of (round, target); payload is
/// the sender's id and the initiation round so tests can check snapshot
/// timing. Records every delivery.
class ScriptedProtocol {
 public:
  using Payload = std::pair<NodeId, Round>;

  struct DeliveryRecord {
    NodeId to;
    NodeId from;
    Round start;
    Round now;
  };

  explicit ScriptedProtocol(std::size_t n) : script_(n) {}

  void schedule(NodeId u, Round r, NodeId target) {
    script_[u].emplace_back(r, target);
  }

  std::optional<NodeId> select_contact(NodeId u, Round r) {
    for (const auto& [round, target] : script_[u])
      if (round == r) return target;
    return std::nullopt;
  }

  Payload capture_payload(NodeId u, Round r) const { return {u, r}; }

  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId, Round start,
               Round now) {
    EXPECT_EQ(payload.first, peer);
    EXPECT_EQ(payload.second, start);
    deliveries.push_back(DeliveryRecord{u, peer, start, now});
  }

  bool done(Round) const { return false; }

  std::vector<DeliveryRecord> deliveries;

 private:
  std::vector<std::vector<std::pair<Round, NodeId>>> script_;
};

TEST(Engine, ExchangeTakesEdgeLatencyAndIsBidirectional) {
  const auto g = build_graph(2, {{0, 1, 3}});
  ScriptedProtocol proto(2);
  proto.schedule(0, 0, 1);
  SimOptions opts;
  const SimResult result = run_gossip(g, proto, opts);
  ASSERT_EQ(proto.deliveries.size(), 2u);
  // Both endpoints receive at round 0 + latency 3.
  for (const auto& d : proto.deliveries) {
    EXPECT_EQ(d.start, 0);
    EXPECT_EQ(d.now, 3);
  }
  EXPECT_EQ(proto.deliveries[0].to, 1u);  // responder gets initiator's payload
  EXPECT_EQ(proto.deliveries[1].to, 0u);
  EXPECT_EQ(result.activations, 1u);
  EXPECT_EQ(result.messages_delivered, 2u);
}

TEST(Engine, NonBlockingPipelining) {
  // Node 0 initiates on a latency-5 edge in rounds 0,1,2; all three
  // exchanges are in flight simultaneously.
  const auto g = build_graph(2, {{0, 1, 5}});
  ScriptedProtocol proto(2);
  for (Round r = 0; r < 3; ++r) proto.schedule(0, r, 1);
  const SimResult result = run_gossip(g, proto, {});
  EXPECT_EQ(result.activations, 3u);
  EXPECT_EQ(result.messages_delivered, 6u);
  EXPECT_EQ(result.max_inflight, 6u);
  // Deliveries at rounds 5, 6, 7.
  std::vector<Round> arrival;
  for (const auto& d : proto.deliveries)
    if (d.to == 1) arrival.push_back(d.now);
  EXPECT_EQ(arrival, (std::vector<Round>{5, 6, 7}));
}

TEST(Engine, SelectingNonNeighborThrows) {
  const auto g = build_graph(3, {{0, 1, 1}});
  ScriptedProtocol proto(3);
  proto.schedule(0, 0, 2);  // not a neighbor
  EXPECT_THROW(run_gossip(g, proto, {}), std::logic_error);
}

TEST(Engine, StopsWhenIdle) {
  const auto g = build_graph(2, {{0, 1, 4}});
  ScriptedProtocol proto(2);
  proto.schedule(0, 0, 1);
  SimOptions opts;
  opts.max_rounds = 1000;
  const SimResult result = run_gossip(g, proto, opts);
  // Delivery at round 4; engine notices idleness right after.
  EXPECT_LE(result.rounds, 6);
  EXPECT_GE(result.rounds, 4);
}

TEST(Engine, MaxRoundsTimeout) {
  const auto g = build_graph(2, {{0, 1, 1}});

  struct Chatty {
    using Payload = int;
    std::optional<NodeId> select_contact(NodeId u, Round) {
      return u == 0 ? std::optional<NodeId>(1) : std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 0; }
    void deliver(NodeId, NodeId, Payload, EdgeId, Round, Round) {}
    bool done(Round) const { return false; }
  } proto;

  SimOptions opts;
  opts.max_rounds = 37;
  const SimResult result = run_gossip(g, proto, opts);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 37);
}

TEST(Engine, DoneCheckedAfterDeliveries) {
  const auto g = build_graph(2, {{0, 1, 2}});

  // Protocol completes once node 1 received anything.
  struct OneShot {
    using Payload = int;
    bool received = false;
    std::optional<NodeId> select_contact(NodeId u, Round r) {
      return (u == 0 && r == 0) ? std::optional<NodeId>(1) : std::nullopt;
    }
    Payload capture_payload(NodeId, Round) const { return 7; }
    void deliver(NodeId u, NodeId, Payload, EdgeId, Round, Round) {
      if (u == 1) received = true;
    }
    bool done(Round) const { return received; }
  } proto;

  const SimResult result = run_gossip(g, proto, {});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 2);  // delivery lands at round 2
}

TEST(Engine, ActivationObserverSeesEveryInitiation) {
  const auto g = build_graph(3, {{0, 1, 1}, {1, 2, 2}});
  ScriptedProtocol proto(3);
  proto.schedule(0, 0, 1);
  proto.schedule(1, 1, 2);
  std::vector<std::tuple<NodeId, NodeId, Round>> seen;
  SimOptions opts;
  opts.on_activation = [&](NodeId u, NodeId v, EdgeId, Round r) {
    seen.emplace_back(u, v, r);
  };
  run_gossip(g, proto, opts);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_tuple(NodeId{0}, NodeId{1}, Round{0}));
  EXPECT_EQ(seen[1], std::make_tuple(NodeId{1}, NodeId{2}, Round{1}));
}

TEST(Engine, EmptyGraphCompletesImmediately) {
  WeightedGraph g(0);
  ScriptedProtocol proto(0);
  const SimResult result = run_gossip(g, proto, {});
  EXPECT_EQ(result.rounds, 0);
}

TEST(NetworkView, LatencyAccessGuarded) {
  GraphBuilder b(2);
  const EdgeId e = b.add_edge(0, 1, 6);
  const WeightedGraph g = b.build();
  const NetworkView unknown(g, false);
  EXPECT_THROW((void)unknown.latency(e), std::logic_error);
  const NetworkView known(g, true);
  EXPECT_EQ(known.latency(e), 6);
  EXPECT_EQ(known.num_nodes(), 2u);
  EXPECT_EQ(known.degree(0), 1u);
}

/// Scripted protocol using the Contact fast path: the engine must not
/// need find_edge() to resolve the exchange.
class ContactScriptedProtocol {
 public:
  using Payload = std::pair<NodeId, Round>;

  explicit ContactScriptedProtocol(std::size_t n) : script_(n) {}

  void schedule(NodeId u, Round r, Contact c) {
    script_[u].emplace_back(r, c);
  }

  std::optional<Contact> select_contact(NodeId u, Round r) {
    for (const auto& [round, contact] : script_[u])
      if (round == r) return contact;
    return std::nullopt;
  }

  Payload capture_payload(NodeId u, Round r) const { return {u, r}; }

  void deliver(NodeId u, NodeId peer, Payload payload, EdgeId, Round start,
               Round now) {
    EXPECT_EQ(payload.first, peer);
    EXPECT_EQ(payload.second, start);
    deliveries.push_back(
        ScriptedProtocol::DeliveryRecord{u, peer, start, now});
  }

  bool done(Round) const { return false; }

  std::vector<ScriptedProtocol::DeliveryRecord> deliveries;

 private:
  std::vector<std::vector<std::pair<Round, Contact>>> script_;
};

TEST(Engine, ContactApiResolvesEdgeWithoutLookup) {
  const auto g = build_graph(3, {{0, 1, 3}, {1, 2, 2}});
  ContactScriptedProtocol proto(3);
  const HalfEdge& h01 = g.edge_at(0, 0);
  proto.schedule(0, 0, Contact{h01.to, h01.edge});
  const SimResult result = run_gossip(g, proto, {});
  ASSERT_EQ(proto.deliveries.size(), 2u);
  for (const auto& d : proto.deliveries) {
    EXPECT_EQ(d.start, 0);
    EXPECT_EQ(d.now, 3);
  }
  EXPECT_EQ(result.activations, 1u);
}

TEST(Engine, MismatchedContactEdgeThrows) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  const EdgeId far = b.add_edge(1, 2, 1);
  const WeightedGraph g = b.build();
  // Edge {1,2} does not join {0,1}: the engine's validation must catch
  // a protocol lying about its contact edge.
  ContactScriptedProtocol lying(3);
  lying.schedule(0, 0, Contact{1, far});
  EXPECT_THROW(run_gossip(g, lying, {}), std::logic_error);
  // Out-of-range edge ids are caught by the bounds check.
  ContactScriptedProtocol bogus(3);
  bogus.schedule(0, 0, Contact{1, 99});
  EXPECT_THROW(run_gossip(g, bogus, {}), std::logic_error);
}

TEST(Engine, HookedAndFastPathsProduceIdenticalResults) {
  // A no-op observer forces the dynamic-hook instantiation; with the
  // same protocol seed it must match the NoHooks fast path exactly.
  Rng grng(11);
  auto g = make_erdos_renyi(96, 0.1, grng);
  assign_random_uniform_latency(g, 1, 7, grng);

  NetworkView view(g, false);
  PushPullBroadcast fast(view, 0, Rng(5));
  SimOptions plain;
  const SimResult fast_result = run_gossip(g, fast, plain);

  PushPullBroadcast hooked(view, 0, Rng(5));
  SimOptions with_hook;
  std::size_t observed = 0;
  with_hook.on_activation = [&](NodeId, NodeId, EdgeId, Round) {
    ++observed;
  };
  const SimResult hooked_result = run_gossip(g, hooked, with_hook);

  EXPECT_EQ(fast_result, hooked_result);
  EXPECT_EQ(observed, hooked_result.activations);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    EXPECT_EQ(fast.inform_round(u), hooked.inform_round(u));
}

TEST(Engine, JitterBeyondLatencyHorizonGrowsCalendarQueue) {
  // Nominal max latency is 2, so the calendar ring starts tiny; a
  // jitter hook stretching one exchange to 1000 rounds must trigger the
  // re-bucketing growth path and still deliver at the right round.
  const auto g = build_graph(2, {{0, 1, 2}});
  ScriptedProtocol proto(2);
  proto.schedule(0, 0, 1);
  proto.schedule(0, 1, 1);
  SimOptions opts;
  opts.max_rounds = 5000;
  opts.latency_jitter = [first = true](EdgeId, Latency nominal) mutable
      -> Latency {
    if (first) {
      first = false;
      return 1000;
    }
    return nominal;
  };
  const SimResult result = run_gossip(g, proto, opts);
  ASSERT_EQ(proto.deliveries.size(), 4u);
  std::vector<Round> arrivals;
  for (const auto& d : proto.deliveries) arrivals.push_back(d.now);
  std::sort(arrivals.begin(), arrivals.end());
  EXPECT_EQ(arrivals, (std::vector<Round>{3, 3, 1000, 1000}));
  EXPECT_EQ(result.messages_delivered, 4u);
}

TEST(Engine, BothEndpointsSnapshotAtInitiationRound) {
  // Node 1 also initiates at round 1; node 0's exchange from round 0
  // must still carry round-0 snapshots (checked inside deliver()).
  const auto g = build_graph(2, {{0, 1, 4}});
  ScriptedProtocol proto(2);
  proto.schedule(0, 0, 1);
  proto.schedule(1, 1, 0);
  run_gossip(g, proto, {});
  ASSERT_EQ(proto.deliveries.size(), 4u);
}

}  // namespace
}  // namespace latgossip
