// Tests for the Baswana-Sen oriented spanner (Lemma 13 / Theorem 14).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/distance.h"
#include "analysis/spanner_check.h"
#include "core/spanner.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < x) ++k;
  return std::max<std::size_t>(k, 1);
}

TEST(Spanner, KEqualsOneKeepsAllEdges) {
  // A (2*1-1)=1-spanner must preserve exact distances, which forces
  // every edge of a clique with distinct weights to stay.
  auto g = make_clique(8);
  Rng latr(1);
  assign_random_uniform_latency(g, 1, 20, latr);
  Rng rng(2);
  const auto spanner = build_baswana_sen_spanner(g, {1, 0}, rng);
  const auto stats = check_spanner_exact(g, spanner);
  EXPECT_LE(stats.max_stretch, 1.0 + 1e-9);
}

TEST(Spanner, StretchWithinTwoKMinusOne) {
  Rng seed(3);
  for (int trial = 0; trial < 4; ++trial) {
    auto g = make_erdos_renyi(40, 0.2, seed);
    assign_random_uniform_latency(g, 1, 30, seed);
    for (std::size_t k : {2u, 3u}) {
      Rng rng(50 + trial);
      const auto spanner = build_baswana_sen_spanner(g, {k, 0}, rng);
      const auto stats = check_spanner_exact(g, spanner);
      EXPECT_TRUE(stats.connected);
      EXPECT_LE(stats.max_stretch, static_cast<double>(2 * k - 1) + 1e-9)
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(Spanner, SparsifiesDenseGraphs) {
  auto g = make_clique(60);
  Rng latr(5);
  assign_random_uniform_latency(g, 1, 50, latr);
  Rng rng(7);
  const std::size_t k = 3;
  const auto spanner = build_baswana_sen_spanner(g, {k, 0}, rng);
  // K60 has 1770 edges; a k=3 spanner should be much sparser.
  EXPECT_LT(spanner.num_arcs(), 900u);
}

TEST(Spanner, OutDegreeSmallWithLogNK) {
  // With k = log2(n), out-degree should be O(log n)-ish (Lemma 13).
  auto g = make_clique(64);
  Rng latr(9);
  assign_random_uniform_latency(g, 1, 100, latr);
  Rng rng(11);
  const auto spanner = build_baswana_sen_spanner(g, {0, 0}, rng);  // defaults
  const std::size_t logn = ceil_log2(64);
  EXPECT_LE(spanner.max_out_degree(), 8 * logn);
}

TEST(Spanner, OverestimatedNHatStillWorks) {
  // Lemma 13: only an estimate n <= n_hat <= n^c is available.
  Rng gen(12);
  auto g = make_erdos_renyi(30, 0.25, gen);
  assign_random_uniform_latency(g, 1, 10, gen);
  Rng rng(13);
  const std::size_t n = g.num_nodes();
  const auto spanner =
      build_baswana_sen_spanner(g, {3, n * n}, rng);  // n_hat = n^2
  const auto stats = check_spanner_exact(g, spanner);
  EXPECT_TRUE(stats.connected);
  EXPECT_LE(stats.max_stretch, 5.0 + 1e-9);

  EXPECT_THROW(build_baswana_sen_spanner(g, {3, 2}, rng),
               std::invalid_argument);  // n_hat < n rejected
}

TEST(Spanner, CappedVariantIgnoresSlowEdges) {
  // Two triangles joined by a slow bridge: the capped spanner of G_1
  // must contain no bridge arc and must keep each triangle connected.
  const auto g = make_dumbbell(3, 1, 50);
  Rng rng(17);
  const auto spanner = build_baswana_sen_spanner_capped(g, 1, {2, 0}, rng);
  for (NodeId u = 0; u < spanner.num_nodes(); ++u)
    for (const Arc& a : spanner.out_arcs(u)) EXPECT_LE(a.latency, 1);
  const auto undirected = spanner.to_undirected();
  // Both triangle sides internally connected.
  const auto d0 = dijkstra(undirected, 0);
  EXPECT_NE(d0[1], kUnreachable);
  EXPECT_NE(d0[2], kUnreachable);
}

TEST(Spanner, TreeInputKeepsAllTreeEdges) {
  // A spanner of a tree must contain every edge (removing any edge
  // disconnects it, contradicting finite stretch).
  auto g = make_binary_tree(31);
  Rng latr(19);
  assign_random_uniform_latency(g, 1, 9, latr);
  Rng rng(23);
  const auto spanner = build_baswana_sen_spanner(g, {3, 0}, rng);
  const auto undirected = spanner.to_undirected();
  EXPECT_EQ(undirected.num_edges(), g.num_edges());
  EXPECT_TRUE(undirected.is_connected());
}

TEST(SpannerCheck, SampledAgreesWithExactOnSmallGraph) {
  auto g = make_grid(4, 4);
  Rng latr(29);
  assign_random_uniform_latency(g, 1, 5, latr);
  Rng rng(31);
  const auto spanner = build_baswana_sen_spanner(g, {2, 0}, rng);
  const auto exact = check_spanner_exact(g, spanner);
  Rng sample_rng(37);
  const auto sampled = check_spanner_sampled(g, spanner, 16, sample_rng);
  EXPECT_DOUBLE_EQ(exact.max_stretch, sampled.max_stretch);
  EXPECT_EQ(exact.num_arcs, sampled.num_arcs);
}

TEST(Spanner, DeterministicGivenSeed) {
  auto g = make_clique(20);
  Rng latr(41);
  assign_random_uniform_latency(g, 1, 9, latr);
  Rng r1(43), r2(43);
  const auto a = build_baswana_sen_spanner(g, {3, 0}, r1);
  const auto b = build_baswana_sen_spanner(g, {3, 0}, r2);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.max_out_degree(), b.max_out_degree());
}

}  // namespace
}  // namespace latgossip
