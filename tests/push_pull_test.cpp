// Tests for push-pull gossip (Theorem 12's protocol).

#include <gtest/gtest.h>

#include <cmath>

#include "core/push_pull.h"
#include "graph/gadgets.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

SimResult run_broadcast(const WeightedGraph& g, NodeId source,
                        std::uint64_t seed, Round max_rounds = 100'000) {
  NetworkView view(g, false);
  PushPullBroadcast proto(view, source, Rng(seed));
  SimOptions opts;
  opts.max_rounds = max_rounds;
  return run_gossip(g, proto, opts);
}

TEST(PushPullBroadcast, CompletesOnClique) {
  const auto g = make_clique(32);
  const SimResult r = run_broadcast(g, 0, 1);
  EXPECT_TRUE(r.completed);
  // O(log n) on a clique; be generous.
  EXPECT_LE(r.rounds, 40);
}

TEST(PushPullBroadcast, CompletesOnPath) {
  const auto g = make_path(20);
  const SimResult r = run_broadcast(g, 0, 2);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.rounds, 19);  // at least the hop distance
}

TEST(PushPullBroadcast, LatencyScalesRounds) {
  auto fast = make_clique(16);
  auto slow = make_clique(16);
  assign_uniform_latency(slow, 10);
  const SimResult rf = run_broadcast(fast, 0, 3);
  const SimResult rs = run_broadcast(slow, 0, 3);
  EXPECT_TRUE(rs.completed);
  // Nothing can arrive before one latency period...
  EXPECT_GE(rs.rounds, 10);
  // ...and the total grows with the latency, though non-blocking
  // pipelining (a node keeps initiating while exchanges are in flight)
  // compresses the naive 10x to a smaller factor.
  EXPECT_GE(rs.rounds, 3 * rf.rounds);
}

TEST(PushPullBroadcast, InformRoundsMonotoneFromSource) {
  const auto g = make_path(6);
  NetworkView view(g, false);
  PushPullBroadcast proto(view, 0, Rng(5));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const auto r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(proto.inform_round(0), 0);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_TRUE(proto.informed(v));
    // On a path, node v can't learn before v rounds have passed.
    EXPECT_GE(proto.inform_round(v), static_cast<Round>(v));
  }
}

TEST(PushPullBroadcast, BadSourceThrows) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(PushPullBroadcast(view, 5, Rng(1)), std::invalid_argument);
}

TEST(PushPullGossip, AllToAllOnSmallClique) {
  const auto g = make_clique(12);
  NetworkView view(g, false);
  PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                       PushPullGossip::own_id_rumors(12), Rng(7));
  SimOptions opts;
  opts.max_rounds = 10'000;
  const SimResult r = run_gossip(g, proto, opts);
  EXPECT_TRUE(r.completed);
  for (const Bitset& b : proto.rumors()) EXPECT_TRUE(b.all());
}

TEST(PushPullGossip, LocalBroadcastGoal) {
  Rng rng(9);
  auto g = make_erdos_renyi(20, 0.3, rng);
  NetworkView view(g, false);
  PushPullGossip proto(view, GossipGoal::kLocalBroadcast, 0,
                       PushPullGossip::own_id_rumors(20), Rng(11));
  SimOptions opts;
  opts.max_rounds = 50'000;
  const SimResult r = run_gossip(g, proto, opts);
  ASSERT_TRUE(r.completed);
  for (NodeId v = 0; v < 20; ++v)
    for (const HalfEdge& h : g.neighbors(v))
      EXPECT_TRUE(proto.rumors()[v].test(h.to));
}

TEST(PushPullGossip, SingleSourceGoalStopsEarly) {
  // Single-source completes as soon as everyone has rumor of node 0 —
  // strictly no later than all-to-all.
  const auto g = make_cycle(16);
  NetworkView view(g, false);
  PushPullGossip ss(view, GossipGoal::kSingleSource, 0,
                    PushPullGossip::own_id_rumors(16), Rng(13));
  PushPullGossip ata(view, GossipGoal::kAllToAll, 0,
                     PushPullGossip::own_id_rumors(16), Rng(13));
  SimOptions opts;
  opts.max_rounds = 50'000;
  const SimResult rs = run_gossip(g, ss, opts);
  const SimResult ra = run_gossip(g, ata, opts);
  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(ra.completed);
  EXPECT_LE(rs.rounds, ra.rounds);
}

TEST(PushPullGossip, CapturesShareSnapshotsUntilStateChanges) {
  const auto g = make_clique(8);
  NetworkView view(g, false);
  PushPullGossip proto(view, GossipGoal::kAllToAll, 0,
                       PushPullGossip::own_id_rumors(8), Rng(5));

  // Unchanged state: repeated captures hand out the same block.
  const PushPullGossip::Payload a = proto.capture_payload(3, 0);
  const PushPullGossip::Payload b = proto.capture_payload(3, 1);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.count(), 1u);

  // A delivery that adds rumors invalidates node 3's cached snapshot;
  // the old snapshot stays immutable.
  proto.deliver(3, 5, proto.capture_payload(5, 1), 0, 1, 2);
  const PushPullGossip::Payload c = proto.capture_payload(3, 2);
  EXPECT_NE(c.id(), a.id());
  EXPECT_EQ(c.count(), 2u);
  EXPECT_TRUE(c.bits().test(5));
  EXPECT_FALSE(a.bits().test(5));

  // A delivery that adds nothing new keeps the cached snapshot.
  proto.deliver(3, 5, proto.capture_payload(5, 2), 0, 2, 3);
  const PushPullGossip::Payload d = proto.capture_payload(3, 3);
  EXPECT_EQ(d.id(), c.id());

  // The oracle's naive path always deep-copies, same contents.
  const PushPullGossip::Payload e = proto.capture_payload_copy(3, 3);
  EXPECT_NE(e.id(), d.id());
  EXPECT_TRUE(e.bits() == d.bits());
}

TEST(PushPullGossip, ValidatesInput) {
  const auto g = make_path(4);
  NetworkView view(g, false);
  EXPECT_THROW(PushPullGossip(view, GossipGoal::kAllToAll, 0,
                              PushPullGossip::own_id_rumors(3), Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(PushPullGossip(view, GossipGoal::kSingleSource, 9,
                              PushPullGossip::own_id_rumors(4), Rng(1)),
               std::invalid_argument);
}

TEST(PushPullBroadcast, DeterministicGivenSeed) {
  const auto g = make_clique(24);
  const SimResult a = run_broadcast(g, 0, 42);
  const SimResult b = run_broadcast(g, 0, 42);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.activations, b.activations);
}

TEST(PushPullBroadcast, TwoLevelLatencyUsesFastSubgraph) {
  // Clique with a dense fast subgraph (p=0.5 fast at latency 1, slow at
  // 200): push-pull should finish far sooner than the slow latency.
  auto g = make_clique(48);
  Rng rng(15);
  assign_two_level_latency(g, 1, 200, 0.5, rng);
  const SimResult r = run_broadcast(g, 0, 17);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.rounds, 100);
}

}  // namespace
}  // namespace latgossip
