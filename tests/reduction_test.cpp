// Tests for the gossip -> guessing-game reduction (Lemma 3).
//
// The testable content of Lemma 3 in the simulator: a right-side node
// whose incident cross edges are all slow cannot receive anything before
// the slow latency elapses, so if local broadcast completes BEFORE the
// slow latency, every b in T^B must have been hit through a fast edge —
// i.e. the induced guessing game was solved no later than the broadcast.

#include <gtest/gtest.h>

#include "game/reduction.h"
#include "graph/gadgets.h"

namespace latgossip {
namespace {

GuessingGadget singleton_gadget(std::size_t m, std::uint64_t seed,
                                bool symmetric = false) {
  Rng rng(seed);
  return make_guessing_gadget(m, make_singleton_target(m, rng), 1,
                              static_cast<Latency>(4 * m), symmetric);
}

TEST(Reduction, SlowLatencyFloorsBroadcastTime) {
  // With a singleton target, all right nodes but one have only slow
  // cross edges: local broadcast cannot complete before the slow
  // latency (the Ω(ℓ) term of Theorem 7).
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto gadget = singleton_gadget(12, seed);
    const ReductionResult r = run_gadget_reduction(
        gadget, ReductionProtocol::kPushPull, Rng(seed * 7 + 1), 500'000);
    ASSERT_TRUE(r.broadcast_completed);
    EXPECT_GE(r.sim.rounds, gadget.slow_latency);
  }
}

TEST(Reduction, FastCompletionImpliesGameSolved) {
  // Dense Random_p target: every right node has fast edges whp, so
  // broadcast finishes long before the slow latency — which forces the
  // game to have been solved by then (Lemma 3).
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    Rng trng(seed);
    const std::size_t m = 16;
    auto target = make_random_p_target(m, 0.4, trng);
    const auto gadget =
        make_guessing_gadget(m, std::move(target), 1,
                             /*slow=*/1000, false);
    const ReductionResult r = run_gadget_reduction(
        gadget, ReductionProtocol::kPushPull, Rng(seed + 100), 500'000);
    ASSERT_TRUE(r.broadcast_completed);
    ASSERT_LT(r.sim.rounds, 1000);
    ASSERT_TRUE(r.game_solved_round.has_value());
    EXPECT_LE(*r.game_solved_round, r.sim.rounds);
  }
}

TEST(Reduction, CrossActivationsBoundedByGuessBudget) {
  // Each simulation round activates at most 2m cross edges (one
  // initiation per node), matching the game's 2m-guess budget.
  const auto gadget = singleton_gadget(8, 5);
  const ReductionResult r = run_gadget_reduction(
      gadget, ReductionProtocol::kPushPull, Rng(11), 500'000);
  EXPECT_LE(r.cross_activations,
            static_cast<std::size_t>(r.sim.rounds + 1) * 2 * 8);
}

TEST(Reduction, FloodingAlsoReduces) {
  const auto gadget = singleton_gadget(8, 9);
  const ReductionResult r = run_gadget_reduction(
      gadget, ReductionProtocol::kFlooding, Rng(13), 500'000);
  ASSERT_TRUE(r.broadcast_completed);
  EXPECT_GE(r.sim.rounds, gadget.slow_latency);
}

TEST(Reduction, SymmetricGadgetWorks) {
  const auto gadget = singleton_gadget(10, 17, /*symmetric=*/true);
  const ReductionResult r = run_gadget_reduction(
      gadget, ReductionProtocol::kPushPull, Rng(19), 500'000);
  EXPECT_TRUE(r.broadcast_completed);
}

TEST(Reduction, GameTimeGrowsWithGadgetSize) {
  // The Ω(Δ) shape (Lemma 4 via the reduction): the round in which the
  // hidden fast edge is found grows with m. Compare means at m=8 vs
  // m=32, skipping the rare runs where the slow latency elapsed first.
  double small_mean = 0, large_mean = 0;
  int small_cnt = 0, large_cnt = 0;
  for (int t = 0; t < 10; ++t) {
    for (std::size_t m : {8u, 32u}) {
      const auto gadget = singleton_gadget(m, 100 + t);
      const ReductionResult r = run_gadget_reduction(
          gadget, ReductionProtocol::kPushPull, Rng(200 + t), 500'000);
      EXPECT_TRUE(r.broadcast_completed);
      if (!r.game_solved_round.has_value()) continue;
      if (m == 8) {
        small_mean += static_cast<double>(*r.game_solved_round);
        ++small_cnt;
      } else {
        large_mean += static_cast<double>(*r.game_solved_round);
        ++large_cnt;
      }
    }
  }
  ASSERT_GT(small_cnt, 5);
  ASSERT_GT(large_cnt, 5);
  EXPECT_GT(large_mean / large_cnt, 1.8 * (small_mean / small_cnt));
}

}  // namespace
}  // namespace latgossip
