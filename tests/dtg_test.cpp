// Tests for ℓ-DTG deterministic local broadcast (Appendix C).

#include <gtest/gtest.h>

#include "core/dtg.h"
#include "core/rr_broadcast.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"
#include "sim/engine.h"

namespace latgossip {
namespace {

struct DtgRun {
  SimResult sim;
  std::vector<Bitset> rumors;
  std::size_t max_iteration = 0;
};

DtgRun run_dtg(const WeightedGraph& g, Latency ell,
               std::vector<Bitset> initial = {}) {
  NetworkView view(g, true);
  if (initial.empty()) initial = DtgLocalBroadcast::own_id_rumors(g.num_nodes());
  DtgLocalBroadcast proto(view, ell, std::move(initial));
  SimOptions opts;
  opts.stop_when_idle = false;
  opts.max_rounds = 1'000'000;
  DtgRun run;
  run.sim = run_gossip(g, proto, opts);
  run.max_iteration = proto.max_iteration();
  run.rumors = proto.take_rumors();
  return run;
}

void expect_local_broadcast(const WeightedGraph& g, Latency ell,
                            const std::vector<Bitset>& rumors) {
  for (const Edge& e : g.edges()) {
    if (e.latency > ell) continue;
    EXPECT_TRUE(rumors[e.u].test(e.v))
        << e.u << " missing rumor of neighbor " << e.v;
    EXPECT_TRUE(rumors[e.v].test(e.u))
        << e.v << " missing rumor of neighbor " << e.u;
  }
}

TEST(Dtg, LocalBroadcastOnClique) {
  const auto g = make_clique(16);
  const DtgRun run = run_dtg(g, 1);
  EXPECT_TRUE(run.sim.completed);
  expect_local_broadcast(g, 1, run.rumors);
}

TEST(Dtg, LocalBroadcastOnPath) {
  const auto g = make_path(12);
  const DtgRun run = run_dtg(g, 1);
  EXPECT_TRUE(run.sim.completed);
  expect_local_broadcast(g, 1, run.rumors);
}

TEST(Dtg, LocalBroadcastOnStar) {
  // The hub has n-1 neighbors; DTG must still finish in polylog
  // iterations because leaf rumors are relayed through the hub's trees.
  const auto g = make_star(32);
  const DtgRun run = run_dtg(g, 1);
  EXPECT_TRUE(run.sim.completed);
  expect_local_broadcast(g, 1, run.rumors);
}

TEST(Dtg, IterationCountLogarithmic) {
  // A node active in iteration i has a 2^i-node witness tree, so
  // iterations never exceed log2(n) (Appendix C).
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto g = make_clique(n);
    const DtgRun run = run_dtg(g, 1);
    EXPECT_TRUE(run.sim.completed);
    std::size_t log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    EXPECT_LE(run.max_iteration, log2n + 1) << "n=" << n;
  }
}

TEST(Dtg, EllCapRestrictsToGell) {
  // Triangle with one slow edge: at ell = 1 the slow pair need not
  // exchange directly, but the two fast pairs must.
  const auto g = build_graph(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 10}});
  const DtgRun run = run_dtg(g, 1);
  EXPECT_TRUE(run.sim.completed);
  expect_local_broadcast(g, 1, run.rumors);
}

TEST(Dtg, SuperroundsScaleWithEll) {
  // Same topology, ell = 1 vs ell = 4 (with all latencies <= ell): the
  // schedule runs in superrounds of ell, so time scales ~linearly.
  auto g1 = make_cycle(12);
  auto g4 = make_cycle(12);
  assign_uniform_latency(g4, 4);
  const DtgRun r1 = run_dtg(g1, 1);
  const DtgRun r4 = run_dtg(g4, 4);
  ASSERT_TRUE(r1.sim.completed);
  ASSERT_TRUE(r4.sim.completed);
  EXPECT_GE(r4.sim.rounds, 3 * r1.sim.rounds);
  EXPECT_LE(r4.sim.rounds, 5 * r1.sim.rounds + 8);
}

TEST(Dtg, NodeWithoutFastNeighborsIdles) {
  // Node 2 is attached only via a slow edge; at ell = 1 it terminates
  // immediately and the rest complete among themselves.
  const auto g = build_graph(3, {{0, 1, 1}, {1, 2, 8}});
  const DtgRun run = run_dtg(g, 1);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.rumors[0].test(1));
  EXPECT_TRUE(run.rumors[1].test(0));
  EXPECT_FALSE(run.rumors[2].test(0));
}

TEST(Dtg, SeededRumorsAreRelayed) {
  // Seed node 0 with an extra rumor (id 3, a non-neighbor): after DTG,
  // 0's neighbors must have received it.
  const auto g = make_path(4);
  auto initial = DtgLocalBroadcast::own_id_rumors(4);
  initial[0].set(3);
  const DtgRun run = run_dtg(g, 1, std::move(initial));
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.rumors[1].test(3));
}

TEST(Dtg, RequiresKnownLatencies) {
  const auto g = make_path(3);
  NetworkView view(g, false);
  EXPECT_THROW(
      DtgLocalBroadcast(view, 1, DtgLocalBroadcast::own_id_rumors(3)),
      std::invalid_argument);
}

TEST(Dtg, ValidatesParameters) {
  const auto g = make_path(3);
  NetworkView view(g, true);
  EXPECT_THROW(
      DtgLocalBroadcast(view, 0, DtgLocalBroadcast::own_id_rumors(3)),
      std::invalid_argument);
  EXPECT_THROW(
      DtgLocalBroadcast(view, 1, DtgLocalBroadcast::own_id_rumors(2)),
      std::invalid_argument);
}

TEST(Dtg, MixedLatenciesWithinCap) {
  // Latencies 1..3 under cap 4: all pairs are G_ell neighbors; the
  // superround structure (one step per 4 rounds) must still deliver
  // everything in time.
  auto g = make_clique(10);
  Rng rng(3);
  assign_random_uniform_latency(g, 1, 3, rng);
  const DtgRun run = run_dtg(g, 4);
  EXPECT_TRUE(run.sim.completed);
  expect_local_broadcast(g, 4, run.rumors);
}

TEST(Dtg, DeterministicAcrossRuns) {
  const auto g = make_clique(12);
  const DtgRun a = run_dtg(g, 1);
  const DtgRun b = run_dtg(g, 1);
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.sim.activations, b.sim.activations);
}

}  // namespace
}  // namespace latgossip
