// Tests for latency discovery (Section 4.2) and the unknown-latency EID
// branch of Theorem 20.

#include <gtest/gtest.h>

#include "analysis/distance.h"
#include "core/latency_discovery.h"
#include "core/rr_broadcast.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/latency_models.h"

namespace latgossip {
namespace {

TEST(Discovery, FindsAllLatenciesWithinBudget) {
  auto g = make_clique(8);
  Rng rng(1);
  assign_random_uniform_latency(g, 1, 5, rng);
  const DiscoveryOutcome out = discover_latencies(g, 5);
  EXPECT_EQ(out.edges_discovered, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_TRUE(out.edge_latencies[e].has_value());
    EXPECT_EQ(*out.edge_latencies[e], g.latency(e));
  }
}

TEST(Discovery, SlowEdgesRemainUnknown) {
  const auto g = build_graph(3, {{0, 1, 2}, {1, 2, 50}});
  const DiscoveryOutcome out = discover_latencies(g, 10);
  EXPECT_EQ(out.edges_discovered, 1u);
  EXPECT_TRUE(out.edge_latencies[0].has_value());
  EXPECT_FALSE(out.edge_latencies[1].has_value());
}

TEST(Discovery, RoundsAreDeltaPlusBudget) {
  const auto g = make_star(10);  // Δ = 9
  const DiscoveryOutcome out = discover_latencies(g, 7);
  EXPECT_EQ(out.sim.rounds, 9 + 7);
}

TEST(Discovery, EveryNodeProbesEveryNeighborOnce) {
  const auto g = make_clique(6);
  const DiscoveryOutcome out = discover_latencies(g, 3);
  // Each of the 6 nodes initiates 5 probes.
  EXPECT_EQ(out.sim.activations, 30u);
}

TEST(Discovery, ValidatesBudget) {
  const auto g = make_path(3);
  EXPECT_THROW(discover_latencies(g, 0), std::invalid_argument);
}

TEST(UnknownLatencyEid, ConvergesOnUnitGraphs) {
  Rng gen(3);
  auto g = make_erdos_renyi(12, 0.35, gen);
  Rng rng(5);
  const UnknownLatencyEidOutcome out = run_unknown_latency_eid(g, 0, rng);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
}

TEST(UnknownLatencyEid, ConvergesOnWeightedGraphs) {
  auto g = make_ring_of_cliques(3, 4, 6);
  Rng rng(7);
  const UnknownLatencyEidOutcome out = run_unknown_latency_eid(g, 0, rng);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(all_sets_full(out.rumors));
  EXPECT_GE(out.final_estimate, weighted_diameter(g) / 2);
}

TEST(UnknownLatencyEid, ChargesProbeRounds) {
  // Total rounds must exceed the final probe phase alone (Δ + k).
  const auto g = make_clique(8);
  Rng rng(9);
  const UnknownLatencyEidOutcome out = run_unknown_latency_eid(g, 0, rng);
  ASSERT_TRUE(out.success);
  EXPECT_GT(out.sim.rounds,
            static_cast<Round>(g.max_degree()) + out.final_estimate);
}

}  // namespace
}  // namespace latgossip
