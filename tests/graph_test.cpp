// Unit tests for the CSR WeightedGraph, GraphBuilder, and DirectedGraph.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/digraph.h"
#include "graph/graph.h"

namespace latgossip {
namespace {

TEST(WeightedGraph, EmptyGraph) {
  WeightedGraph g(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(WeightedGraph().is_connected());
  EXPECT_EQ(GraphBuilder(0).build().num_nodes(), 0u);
}

TEST(GraphBuilder, AddEdgeBasics) {
  GraphBuilder b(3);
  const EdgeId e = b.add_edge(0, 1, 5);
  EXPECT_EQ(b.num_edges(), 1u);
  const WeightedGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.latency(e), 5);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.other_endpoint(e, 0), 1u);
  EXPECT_EQ(g.other_endpoint(e, 1), 0u);
  EXPECT_THROW(g.other_endpoint(e, 2), std::invalid_argument);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsDuplicateEitherOrientation) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(1, 0), std::invalid_argument);
}

TEST(GraphBuilder, RejectsBadLatency) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -3), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

TEST(GraphBuilder, HasEdgeMidBuildAndSetLatency) {
  GraphBuilder b(3);
  const EdgeId e = b.add_edge(0, 1, 4);
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_TRUE(b.has_edge(1, 0));
  EXPECT_FALSE(b.has_edge(0, 2));
  EXPECT_EQ(b.find_edge(1, 0), e);
  b.set_latency(e, 9);
  EXPECT_THROW(b.set_latency(e, 0), std::invalid_argument);
  EXPECT_THROW(b.set_latency(5, 1), std::out_of_range);
  EXPECT_EQ(b.build().latency(e), 9);
}

TEST(GraphBuilder, AddNodeGrowsGraph) {
  GraphBuilder b(1);
  const NodeId v = b.add_node();
  EXPECT_EQ(v, 1u);
  b.add_edge(0, v);
  const WeightedGraph g = b.build();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphBuilder, BuildResetsBuilderForReuse) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const WeightedGraph first = b.build();
  EXPECT_EQ(first.num_edges(), 1u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_EQ(b.num_edges(), 0u);
  // Reusable: start over with fresh ids.
  b.add_node();
  b.add_node();
  b.add_edge(0, 1, 3);
  EXPECT_EQ(b.build().latency(0), 3);
}

TEST(GraphBuilder, BuildGraphHelper) {
  const auto g = build_graph(3, {{0, 1}, {1, 2, 7}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 7);
  EXPECT_EQ(g.latency(*g.find_edge(0, 1)), 1);
}

TEST(WeightedGraph, FindEdgeBothDirections) {
  GraphBuilder b(4);
  const EdgeId e = b.add_edge(2, 3, 7);
  const WeightedGraph g = b.build();
  EXPECT_EQ(g.find_edge(2, 3), e);
  EXPECT_EQ(g.find_edge(3, 2), e);
  EXPECT_FALSE(g.find_edge(0, 1).has_value());
  EXPECT_FALSE(g.find_edge(2, 2).has_value());
  EXPECT_THROW((void)g.find_edge(0, 4), std::out_of_range);
}

TEST(WeightedGraph, SetLatencyMutates) {
  GraphBuilder b(2);
  const EdgeId e = b.add_edge(0, 1, 1);
  WeightedGraph g = b.build();
  g.set_latency(e, 9);
  EXPECT_EQ(g.latency(e), 9);
  EXPECT_THROW(g.set_latency(e, 0), std::invalid_argument);
}

TEST(WeightedGraph, DegreeAndLatencyExtremes) {
  const auto g = build_graph(4, {{0, 1, 2}, {0, 2, 8}, {0, 3, 5}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.max_latency(), 8);
  EXPECT_EQ(g.min_latency(), 2);
}

TEST(WeightedGraph, ConnectivityDetection) {
  EXPECT_FALSE(build_graph(4, {{0, 1}, {2, 3}}).is_connected());
  EXPECT_TRUE(build_graph(4, {{0, 1}, {2, 3}, {1, 2}}).is_connected());
}

TEST(WeightedGraph, VolumeMatchesDefinition) {
  // Path 0-1-2: deg = 1,2,1.
  const auto g = build_graph(3, {{0, 1}, {1, 2}});
  Bitset s(3);
  s.set(0);
  EXPECT_EQ(g.volume(s), 1u);
  s.set(1);
  EXPECT_EQ(g.volume(s), 3u);
  s.set(2);
  EXPECT_EQ(g.volume(s), 4u);  // = 2|E|
  EXPECT_THROW(g.volume(Bitset(1)), std::invalid_argument);
}

TEST(WeightedGraph, AdjacencySortedByNeighborId) {
  // Insert edges in scrambled order; neighbors() must come back sorted
  // by neighbor id regardless.
  GraphBuilder b(5);
  b.add_edge(0, 3, 2);
  b.add_edge(0, 1, 4);
  b.add_edge(0, 4, 9);
  b.add_edge(0, 2, 6);
  const WeightedGraph g = b.build();
  const auto neigh = g.neighbors(0);
  ASSERT_EQ(neigh.size(), 4u);
  for (std::size_t i = 0; i < neigh.size(); ++i) {
    EXPECT_EQ(neigh[i].to, i + 1);
    EXPECT_EQ(g.edge_at(0, i).to, i + 1);
  }
  EXPECT_EQ(g.latency(neigh[1].edge), 6);  // edge {0,2}
  EXPECT_THROW(g.edge_at(0, 4), std::out_of_range);
}

TEST(WeightedGraph, EdgeIdsPreserveInsertionOrder) {
  GraphBuilder b(4);
  const EdgeId e0 = b.add_edge(2, 3, 5);
  const EdgeId e1 = b.add_edge(0, 1, 6);
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  const WeightedGraph g = b.build();
  EXPECT_EQ(g.edge(0).u, 2u);
  EXPECT_EQ(g.edge(0).v, 3u);
  EXPECT_EQ(g.edge(1).u, 0u);
  EXPECT_EQ(g.edge(1).v, 1u);
}

TEST(DirectedGraph, ArcBasics) {
  DirectedGraph d(3);
  d.add_arc(0, 1, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 0, 1);
  EXPECT_EQ(d.num_arcs(), 3u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.out_degree(1), 0u);
  EXPECT_EQ(d.max_out_degree(), 2u);
  EXPECT_THROW(d.add_arc(1, 1, 1), std::invalid_argument);
  EXPECT_THROW(d.add_arc(0, 1, 0), std::invalid_argument);
}

TEST(DirectedGraph, ToUndirectedCollapsesOppositeArcs) {
  DirectedGraph d(3);
  d.add_arc(0, 1, 5);
  d.add_arc(1, 0, 3);  // opposite direction, smaller latency wins
  d.add_arc(1, 2, 7);
  const WeightedGraph g = d.to_undirected();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.latency(*g.find_edge(0, 1)), 3);
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 7);
}

TEST(DirectedGraph, ToUndirectedCollapsesParallelArcs) {
  DirectedGraph d(4);
  d.add_arc(2, 1, 9);
  d.add_arc(2, 1, 4);  // same direction, duplicate arc
  d.add_arc(1, 2, 6);
  d.add_arc(3, 0, 2);
  const WeightedGraph g = d.to_undirected();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 4);
  EXPECT_EQ(g.latency(*g.find_edge(0, 3)), 2);
}

}  // namespace
}  // namespace latgossip
