// Unit tests for WeightedGraph and DirectedGraph.

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/graph.h"

namespace latgossip {
namespace {

TEST(WeightedGraph, EmptyGraph) {
  WeightedGraph g(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(WeightedGraph, AddEdgeBasics) {
  WeightedGraph g(3);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.latency(e), 5);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.other_endpoint(e, 0), 1u);
  EXPECT_EQ(g.other_endpoint(e, 1), 0u);
  EXPECT_THROW(g.other_endpoint(e, 2), std::invalid_argument);
}

TEST(WeightedGraph, RejectsSelfLoop) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(WeightedGraph, RejectsDuplicateEitherOrientation) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(WeightedGraph, RejectsBadLatency) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -3), std::invalid_argument);
}

TEST(WeightedGraph, RejectsOutOfRangeEndpoint) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
}

TEST(WeightedGraph, FindEdgeBothDirections) {
  WeightedGraph g(4);
  const EdgeId e = g.add_edge(2, 3, 7);
  EXPECT_EQ(g.find_edge(2, 3), e);
  EXPECT_EQ(g.find_edge(3, 2), e);
  EXPECT_FALSE(g.find_edge(0, 1).has_value());
  EXPECT_FALSE(g.find_edge(2, 2).has_value());
}

TEST(WeightedGraph, SetLatencyMutates) {
  WeightedGraph g(2);
  const EdgeId e = g.add_edge(0, 1, 1);
  g.set_latency(e, 9);
  EXPECT_EQ(g.latency(e), 9);
  EXPECT_THROW(g.set_latency(e, 0), std::invalid_argument);
}

TEST(WeightedGraph, DegreeAndLatencyExtremes) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 8);
  g.add_edge(0, 3, 5);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.max_latency(), 8);
  EXPECT_EQ(g.min_latency(), 2);
}

TEST(WeightedGraph, ConnectivityDetection) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(WeightedGraph, VolumeMatchesDefinition) {
  // Path 0-1-2: deg = 1,2,1.
  WeightedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.volume({true, false, false}), 1u);
  EXPECT_EQ(g.volume({true, true, false}), 3u);
  EXPECT_EQ(g.volume({true, true, true}), 4u);  // = 2|E|
  EXPECT_THROW(g.volume({true}), std::invalid_argument);
}

TEST(WeightedGraph, NeighborsSpan) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 4);
  g.add_edge(0, 2, 6);
  const auto neigh = g.neighbors(0);
  ASSERT_EQ(neigh.size(), 2u);
  EXPECT_EQ(neigh[0].to, 1u);
  EXPECT_EQ(neigh[1].to, 2u);
  EXPECT_EQ(g.latency(neigh[1].edge), 6);
}

TEST(DirectedGraph, ArcBasics) {
  DirectedGraph d(3);
  d.add_arc(0, 1, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 0, 1);
  EXPECT_EQ(d.num_arcs(), 3u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.out_degree(1), 0u);
  EXPECT_EQ(d.max_out_degree(), 2u);
  EXPECT_THROW(d.add_arc(1, 1, 1), std::invalid_argument);
  EXPECT_THROW(d.add_arc(0, 1, 0), std::invalid_argument);
}

TEST(DirectedGraph, ToUndirectedCollapsesOppositeArcs) {
  DirectedGraph d(3);
  d.add_arc(0, 1, 5);
  d.add_arc(1, 0, 3);  // opposite direction, smaller latency wins
  d.add_arc(1, 2, 7);
  const WeightedGraph g = d.to_undirected();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.latency(*g.find_edge(0, 1)), 3);
  EXPECT_EQ(g.latency(*g.find_edge(1, 2)), 7);
}

}  // namespace
}  // namespace latgossip
